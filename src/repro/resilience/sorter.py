"""Self-healing wrapper around :class:`~repro.core.array_sort.GpuArraySort`.

The paper pitches GPU-ArraySort as a drop-in "GPU boost" inside
long-running acquisition software (Section 8).  In that setting the
sorter must *degrade gracefully*: a transient kernel fault, a brief OOM
pressure window, or an ECC bit flip in an output buffer is routine over
hours of operation, and poisoned inputs (NaN spectra) are a matter of
when, not if.  :class:`ResilientSorter` layers the standard reliability
loop over the batch sorter:

1. **verify-after-sort** — every attempt's output is checked row by row
   with :func:`~repro.core.validation.is_sorted_rows` and
   :func:`~repro.core.validation.rows_are_permutations`; silent
   corruption becomes a detected, retryable event;
2. **bounded retries** with capped exponential backoff on an injectable
   clock (:class:`~repro.resilience.retry.RetryPolicy`) — only the rows
   that failed are re-sorted;
3. **engine fallback chain** — when an engine exhausts its retries the
   remaining rows fall back down the chain (default ``sim →
   vectorized → numpy`` when starting from the sim engine), ending at a
   per-row ``np.sort`` last resort;
4. **degeneracy re-sampling** — skewed or duplicate-heavy inputs that
   collapse phase 1's splitters (the failure mode GPU Sample Sort and
   Multisplit both warn about) trigger automatic re-sampling at doubled
   rates before any fallback;
5. **quarantine** — rows that still fail after the whole chain, and
   poisoned (NaN) rows under ``nan_policy="raise"``, are reported on
   ``result.quarantined`` instead of aborting; the streaming layer
   diverts them to a dead-letter queue.

Fault injection for tests and benchmarks comes from a seeded
:class:`~repro.gpusim.faults.FaultPlan`: one sort *attempt* consumes one
launch index, so a given ``(plan seed, input)`` pair replays the exact
same fault/retry/fallback trajectory — and therefore identical
:class:`~repro.resilience.stats.ResilienceStats`.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.array_sort import GpuArraySort, validate_batch
from ..core.config import DEFAULT_CONFIG, SortConfig
from ..core.splitters import select_splitters
from ..core.validation import is_sorted_rows, rows_are_permutations
from ..gpusim.errors import DeviceOutOfMemoryError, GpuSimError
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy
from .stats import ResilienceStats

__all__ = ["ResilientSorter", "ResilientSortResult", "sort_arrays_resilient"]

#: Engine fallback chains by primary engine; "numpy" is the per-row
#: ``np.sort`` last resort that needs no device at all.
_DEFAULT_CHAINS = {
    "sim": ("sim", "vectorized", "numpy"),
    "vectorized": ("vectorized", "numpy"),
    "model": ("model", "vectorized", "numpy"),
}
_KNOWN_ENGINES = ("vectorized", "sim", "model", "numpy")


@dataclasses.dataclass
class ResilientSortResult:
    """Outcome of one resilient sort call.

    ``batch`` holds every verified row sorted; quarantined rows keep
    their *original* (unsorted) content so nothing fabricated can leak
    downstream.  ``stats`` is the delta recorded during this call (the
    sorter's session-level ``stats`` accumulates across calls).
    """

    batch: np.ndarray
    stats: ResilienceStats
    #: Sorted indices of rows that could not be delivered.
    quarantined: np.ndarray
    #: Reason per quarantined row index.
    quarantine_reasons: Dict[int, str]

    @property
    def ok(self) -> bool:
        return self.quarantined.size == 0


class ResilientSorter:
    """Sorter with retry, fallback, re-sampling, and quarantine.

    Parameters
    ----------
    config:
        Base :class:`SortConfig`; its ``nan_policy`` governs poisoned
        rows (``"raise"`` quarantines them here instead of raising,
        ``"sort_to_end"`` sorts them on the host path).
    engine:
        Primary engine; determines the default fallback chain.
    device:
        Passed through to :class:`GpuArraySort` for sim/model engines.
    fault_plan:
        Optional seeded :class:`~repro.gpusim.faults.FaultPlan`; each
        attempt consumes one launch index (may fault before, may corrupt
        the output after).  Do not also attach the same plan to a
        ``GpuDevice`` — each consultation advances the schedule.
    retry_policy:
        Bounded-retry/backoff schedule per engine.
    fallback_chain:
        Explicit engine sequence overriding the default for ``engine``.
    sleep:
        Injectable clock used for backoff waiting; defaults to
        ``time.sleep``.  Pass ``lambda _: None`` in tests/benchmarks —
        ``stats.backoff_seconds`` records the schedule either way.
    max_resample_boosts:
        How many times phase-1 sampling may be doubled on degenerate
        splitters before proceeding anyway (degeneracy hurts balance,
        not correctness).
    degeneracy_threshold:
        Fraction of duplicated splitters in a row that counts as
        degenerate.
    parallel / workers:
        Sharded multicore execution (see :mod:`repro.parallel`), applied
        whenever the ``"vectorized"`` engine runs — as the primary or as
        a fallback link.  Sharding is deterministic, so retries and
        verification behave identically to serial execution.
    planner:
        Adaptive per-batch engine choice for the ``"vectorized"`` link
        (see :class:`~repro.planner.ExecutionPlanner`); mutually
        exclusive with ``parallel``.  The planner-backed sorter is
        cached across attempts and calls, so its scratch arena and
        learned timings persist for the session.
    """

    def __init__(
        self,
        config: SortConfig = DEFAULT_CONFIG,
        *,
        engine: str = "vectorized",
        device=None,
        fault_plan=None,
        retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        fallback_chain: Optional[Sequence[str]] = None,
        sleep: Optional[Callable[[float], None]] = time.sleep,
        max_resample_boosts: int = 2,
        degeneracy_threshold: float = 0.5,
        parallel=None,
        workers: Optional[int] = None,
        planner=None,
    ) -> None:
        if engine not in _DEFAULT_CHAINS:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {tuple(_DEFAULT_CHAINS)}"
            )
        chain = tuple(fallback_chain) if fallback_chain is not None else _DEFAULT_CHAINS[engine]
        if not chain:
            raise ValueError("fallback_chain must name at least one engine")
        for item in chain:
            if item not in _KNOWN_ENGINES:
                raise ValueError(
                    f"unknown engine {item!r} in fallback_chain; "
                    f"choose from {_KNOWN_ENGINES}"
                )
        if not 0.0 < degeneracy_threshold <= 1.0:
            raise ValueError("degeneracy_threshold must be in (0, 1]")
        if max_resample_boosts < 0:
            raise ValueError("max_resample_boosts must be >= 0")
        self.config = config
        self.engine = engine
        self.device = device
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self.fallback_chain: Tuple[str, ...] = chain
        self.max_resample_boosts = int(max_resample_boosts)
        self.degeneracy_threshold = float(degeneracy_threshold)
        if planner is not None and parallel is not None:
            raise ValueError(
                "planner and parallel are mutually exclusive (the planner "
                "chooses the execution engine per batch)"
            )
        self.parallel = parallel
        self.workers = workers
        self.planner = planner
        #: Sorter instances cached per (engine, config): retries and the
        #: degeneracy re-sampling escalation revisit the same few keys,
        #: and a cached sorter keeps its scratch arena (and planner
        #: state) warm across attempts and across calls.
        self._sorters: Dict[Tuple[str, SortConfig], GpuArraySort] = {}
        self._sleep = sleep
        #: Session-level roll-up across every :meth:`sort` call.
        self.stats = ResilienceStats()

    # -- public API --------------------------------------------------------
    def sort(self, batch: np.ndarray) -> ResilientSortResult:
        """Sort every row of ``batch``, healing around faults.

        Never raises for transient device faults, output corruption, or
        poisoned rows — those become retries, fallbacks, and quarantine
        entries.  Malformed *batches* (wrong shape/dtype) still raise
        ``ValueError`` at the boundary: they are caller bugs, not faults.
        """
        batch = validate_batch(batch)
        stats = ResilienceStats()
        reasons: Dict[int, str] = {}
        n_rows = batch.shape[0]
        if n_rows == 0:
            self.stats.merge(stats)
            return ResilientSortResult(
                batch=np.array(batch, copy=True),
                stats=stats,
                quarantined=np.empty(0, dtype=np.int64),
                quarantine_reasons=reasons,
            )

        reference = np.array(batch, copy=True)
        out = np.array(batch, copy=True)
        pending = np.arange(n_rows, dtype=np.int64)

        # Poisoned-input routing: under nan_policy="raise" the engines
        # would reject the whole batch because of a few bad rows; divert
        # those rows to quarantine instead.  Under "sort_to_end" the
        # engines handle NaN rows themselves (host path).
        if reference.dtype.kind == "f" and self.config.nan_policy == "raise":
            nan_rows = np.flatnonzero(np.isnan(reference).any(axis=1))
            if nan_rows.size:
                for row in nan_rows:
                    reasons[int(row)] = "nan-input"
                stats.quarantined_rows += int(nan_rows.size)
                keep = np.ones(n_rows, dtype=bool)
                keep[nan_rows] = False
                pending = pending[keep[pending]]

        config = self._resample_if_degenerate(reference, pending, stats)

        ever_failed = np.zeros(n_rows, dtype=bool)
        for chain_pos, engine in enumerate(self.fallback_chain):
            if pending.size == 0:
                break
            if chain_pos > 0:
                stats.record_fallback(engine)
            pending = self._run_engine_with_retries(
                engine, config, reference, out, pending, ever_failed, stats
            )

        if pending.size:
            for row in pending:
                reasons.setdefault(int(row), "validation-failed")
            stats.quarantined_rows += int(pending.size)
            # Quarantined rows keep their original content in `batch`.
            out[pending] = reference[pending]

        quarantined = np.array(sorted(reasons), dtype=np.int64)
        self.stats.merge(stats)
        return ResilientSortResult(
            batch=out,
            stats=stats,
            quarantined=quarantined,
            quarantine_reasons=reasons,
        )

    # -- internals ---------------------------------------------------------
    def _run_engine_with_retries(
        self,
        engine: str,
        config: SortConfig,
        reference: np.ndarray,
        out: np.ndarray,
        pending: np.ndarray,
        ever_failed: np.ndarray,
        stats: ResilienceStats,
    ) -> np.ndarray:
        """Attempt + retries of one engine over the pending rows.

        Verified rows are committed into ``out``; returns the row
        indices still unverified when this engine's budget is spent.
        """
        for attempt in range(self.retry_policy.max_retries + 1):
            if pending.size == 0:
                return pending
            if attempt > 0:
                wait = self.retry_policy.backoff_for(attempt - 1)
                stats.retries += 1
                stats.backoff_seconds += wait
                if self._sleep is not None:
                    self._sleep(wait)
            stats.attempts += 1
            rows = np.ascontiguousarray(reference[pending])
            try:
                launch_index = None
                if self.fault_plan is not None:
                    if engine == "numpy":
                        # The host last resort cannot suffer device-side
                        # transient faults or OOM, only buffer corruption.
                        launch_index = self.fault_plan.begin_trusted_launch(engine)
                    else:
                        launch_index = self.fault_plan.begin_launch(engine)
                sorted_rows = self._run_engine(engine, rows, config)
                if self.fault_plan is not None:
                    self.fault_plan.corrupt_rows(sorted_rows, launch_index)
            except DeviceOutOfMemoryError:
                stats.faults_seen += 1
                stats.oom_seen += 1
                ever_failed[pending] = True
                continue
            except GpuSimError:
                stats.faults_seen += 1
                ever_failed[pending] = True
                continue

            verified = is_sorted_rows(sorted_rows) & rows_are_permutations(
                sorted_rows, rows
            )
            good = np.flatnonzero(verified)
            bad = np.flatnonzero(~verified)
            if good.size:
                out[pending[good]] = sorted_rows[good]
                stats.rows_recovered += int(ever_failed[pending[good]].sum())
            if bad.size:
                stats.corrupt_rows_detected += int(bad.size)
                ever_failed[pending[bad]] = True
            pending = pending[bad]
        return pending

    def _run_engine(self, engine: str, rows: np.ndarray, config: SortConfig) -> np.ndarray:
        if engine == "numpy":
            # Host-side last resort: per-row np.sort, no device involved.
            return np.sort(rows, axis=1)
        key = (engine, config)
        sorter = self._sorters.get(key)
        if sorter is None:
            sorter = GpuArraySort(
                config,
                engine=engine,
                device=self.device,
                # Sharding/planning only exist for the vectorized engine.
                parallel=self.parallel if engine == "vectorized" else None,
                workers=self.workers,
                planner=self.planner if engine == "vectorized" else None,
            )
            self._sorters[key] = sorter
        return sorter.sort(rows).batch

    def _resample_if_degenerate(
        self, reference: np.ndarray, pending: np.ndarray, stats: ResilienceStats
    ) -> SortConfig:
        """Escalate phase-1 sampling while the splitters look degenerate.

        Skewed/duplicate-heavy data collapses many splitters onto the
        same value, leaving one giant bucket for phase 3 — the classic
        sample-sort failure mode.  Doubling the sampling rate tightens
        the quantile estimates; after ``max_resample_boosts`` doublings
        we proceed regardless (imbalance costs time, not correctness).
        """
        config = self.config
        if pending.size == 0:
            return config
        rows = reference[pending]
        for _ in range(self.max_resample_boosts):
            if config.sampling_rate >= 1.0:
                break
            if not self._splitters_degenerate(rows, config):
                break
            config = config.with_(
                sampling_rate=min(1.0, config.sampling_rate * 2.0)
            )
            stats.resamples += 1
        return config

    def _splitters_degenerate(self, rows: np.ndarray, config: SortConfig) -> bool:
        if rows.dtype.kind == "f" and np.isnan(rows).any():
            # Degeneracy probing must not choke on rows the engines will
            # route through the NaN host path anyway.
            clean = rows[~np.isnan(rows).any(axis=1)]
            if clean.shape[0] == 0:
                return False
            rows = clean
        splitters = select_splitters(rows, config).splitters
        q = splitters.shape[1]
        if q < 4:
            return False
        # Splitters are non-decreasing per row, so counting strict
        # increases counts distinct values.
        distinct = 1 + (splitters[:, 1:] > splitters[:, :-1]).sum(axis=1)
        duplicate_fraction = 1.0 - distinct / q
        return bool((duplicate_fraction >= self.degeneracy_threshold).any())


def sort_arrays_resilient(
    batch: np.ndarray,
    *,
    config: SortConfig = DEFAULT_CONFIG,
    engine: str = "vectorized",
    fault_plan=None,
    **kwargs,
) -> ResilientSortResult:
    """One-shot convenience wrapper around :class:`ResilientSorter`."""
    sorter = ResilientSorter(
        config, engine=engine, fault_plan=fault_plan, **kwargs
    )
    return sorter.sort(batch)
