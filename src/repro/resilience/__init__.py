"""``repro.resilience`` — the self-healing sort pipeline.

Graceful degradation for long-running deployments: deterministic fault
injection lives in :mod:`repro.gpusim.faults`; this package supplies the
recovery side —

* :class:`~repro.resilience.sorter.ResilientSorter` — verify-after-sort,
  bounded retries with capped exponential backoff, an engine fallback
  chain ending in per-row ``np.sort``, degeneracy re-sampling, and
  quarantine of unsortable rows;
* :class:`~repro.resilience.retry.RetryPolicy` — the backoff schedule on
  an injectable clock;
* :class:`~repro.resilience.quarantine.DeadLetterQueue` — where
  quarantined rows go instead of killing a streaming session;
* :class:`~repro.resilience.stats.ResilienceStats` — the observability
  record the CLI and benchmarks surface.

See docs/resilience.md for the fault model and semantics.
"""

from .quarantine import (
    DEFAULT_DEAD_LETTER_CAPACITY,
    DeadLetter,
    DeadLetterQueue,
)
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy
from .sorter import ResilientSorter, ResilientSortResult, sort_arrays_resilient
from .stats import ResilienceStats

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "DEFAULT_DEAD_LETTER_CAPACITY",
    "DeadLetter",
    "DeadLetterQueue",
    "ResilienceStats",
    "ResilientSorter",
    "ResilientSortResult",
    "RetryPolicy",
    "sort_arrays_resilient",
]
