"""Load-balance and hardware-behaviour metrics.

The paper's core engineering argument is *uniform distribution of data
chunks for better load balancing across threads*.  These metrics quantify
it:

* bucket-balance statistics over a phase-2 result (max/mean bucket size —
  the phase-3 straggler factor),
* sampling quality across rates/distributions (for the ablation bench),
* roll-ups of gpusim launch reports into comparable scalar metrics.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

__all__ = ["BucketBalance", "bucket_balance", "sampling_quality", "report_metrics"]


@dataclasses.dataclass(frozen=True)
class BucketBalance:
    """Distribution statistics of bucket sizes across a whole batch."""

    mean: float
    std: float
    max: int
    min: int
    #: max / mean — 1.0 is perfect balance; phase 3's wall time scales
    #: with the square of the largest bucket an SM must sort.
    straggler_factor: float
    #: Fraction of buckets with zero elements (wasted threads).
    empty_fraction: float

    def as_dict(self) -> Dict[str, float]:
        return dataclasses.asdict(self)


def bucket_balance(sizes: np.ndarray) -> BucketBalance:
    """Compute balance statistics from a ``(N, p)`` bucket-size matrix."""
    sizes = np.asarray(sizes)
    if sizes.ndim != 2 or sizes.size == 0:
        raise ValueError(f"expected non-empty (N, p) sizes, got shape {sizes.shape}")
    flat = sizes.ravel()
    mean = float(flat.mean())
    return BucketBalance(
        mean=mean,
        std=float(flat.std()),
        max=int(flat.max()),
        min=int(flat.min()),
        straggler_factor=float(flat.max() / mean) if mean > 0 else float("inf"),
        empty_fraction=float(np.mean(flat == 0)),
    )


def sampling_quality(
    batch: np.ndarray,
    sampling_rate: float,
    *,
    bucket_size: int = 20,
) -> BucketBalance:
    """Bucket balance a given sampling rate would produce on ``batch``.

    Runs phases 1-2 with the requested rate and summarizes the resulting
    bucket sizes.  This is the measurement behind the paper's "10 %
    regular sampling gave most evenly balanced buckets" claim and our
    sampling-rate ablation.
    """
    from ..core.bucketing import bucketize
    from ..core.config import SortConfig
    from ..core.splitters import select_splitters

    config = SortConfig(bucket_size=bucket_size, sampling_rate=sampling_rate)
    spl = select_splitters(np.asarray(batch), config)
    buckets = bucketize(np.asarray(batch).copy(), spl.splitters, config)
    return bucket_balance(buckets.sizes)


def report_metrics(report) -> Dict[str, float]:
    """Flatten a gpusim LaunchReport / PipelineReport into scalar metrics."""
    if hasattr(report, "launches"):
        return {
            "milliseconds": report.milliseconds,
            "global_transactions": report.total_global_transactions,
            "divergence_fraction": report.divergence_fraction,
        }
    return report.summary()
