"""CSV export of every reproduced series — for external plotting.

The benches print text; anyone re-plotting the paper's figures in
matplotlib/gnuplot/Excel wants machine-readable series.
:func:`export_all` writes one CSV per artifact into a directory:

``fig2.csv``            n, modeled_ms, theory_ms
``fig4.csv``..``fig7``  N, gpu_arraysort_ms, sta_ms
``table1.csv``          n, paper/model capacities per technique
``claims.csv``          claim id, verdict, detail

No third-party dependencies — ``csv`` from the standard library.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Union

from ..core.config import DEFAULT_CONFIG, SortConfig
from ..gpusim.device import DeviceSpec, K40C
from .complexity import fit_scale
from .memory_model import table1_rows
from .perfmodel import model_arraysort_ms, model_sta_ms
from .report import evaluate_claims

__all__ = ["export_all", "export_figure_series", "export_table1", "export_claims"]

PathLike = Union[str, Path]


def _write_csv(path: Path, header: List[str], rows: List[List]) -> None:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_figure_series(
    directory: PathLike,
    *,
    device: DeviceSpec = K40C,
    config: SortConfig = DEFAULT_CONFIG,
) -> List[Path]:
    """Write fig2.csv and fig4..7.csv; returns the written paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    sizes = list(range(200, 2001, 200))
    modeled = [model_arraysort_ms(device, 50_000, n, config) for n in sizes]
    fit = fit_scale(sizes, modeled, config=config)
    path = directory / "fig2.csv"
    _write_csv(path, ["n", "modeled_ms", "theory_ms"], [
        [n, f"{m:.3f}", f"{t:.3f}"]
        for n, m, t in zip(sizes, modeled, fit.predicted)
    ])
    written.append(path)

    for fig, n in ((4, 1000), (5, 2000), (6, 3000), (7, 4000)):
        axis = [25_000, 50_000, 100_000, 150_000, 200_000]
        if n >= 4000:
            axis = axis[:-1]
        path = directory / f"fig{fig}.csv"
        _write_csv(path, ["N", "gpu_arraysort_ms", "sta_ms"], [
            [N,
             f"{model_arraysort_ms(device, N, n, config):.3f}",
             f"{model_sta_ms(device, N, n):.3f}"]
            for N in axis
        ])
        written.append(path)
    return written


def export_table1(
    directory: PathLike,
    *,
    device: DeviceSpec = K40C,
    config: SortConfig = DEFAULT_CONFIG,
    measure: bool = False,
) -> Path:
    """Write table1.csv; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    rows = table1_rows(device=device, config=config, measure=measure)
    path = directory / "table1.csv"
    _write_csv(
        path,
        ["n", "paper_arraysort", "model_arraysort", "paper_sta", "model_sta",
         "model_advantage"],
        [[r.array_size, r.paper_arraysort, r.model_arraysort, r.paper_sta,
          r.model_sta, f"{r.model_advantage:.3f}"] for r in rows],
    )
    return path


def export_claims(
    directory: PathLike,
    *,
    device: DeviceSpec = K40C,
    config: SortConfig = DEFAULT_CONFIG,
) -> Path:
    """Write claims.csv; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    claims = evaluate_claims(device=device, config=config)
    path = directory / "claims.csv"
    _write_csv(path, ["claim_id", "verdict", "statement", "detail"],
               [[c.claim_id, c.verdict, c.statement, c.detail] for c in claims])
    return path


def export_all(
    directory: PathLike,
    *,
    device: DeviceSpec = K40C,
    config: SortConfig = DEFAULT_CONFIG,
) -> Dict[str, Path]:
    """Write every series; returns {artifact: path}."""
    figures = export_figure_series(directory, device=device, config=config)
    out = {p.stem: p for p in figures}
    out["table1"] = export_table1(directory, device=device, config=config)
    out["claims"] = export_claims(directory, device=device, config=config)
    return out
