"""The paper's theoretical time-complexity model (Section 6, Eqs. 1-3).

The paper derives, per array of size ``n`` with ``p`` buckets, sampling
rate ``r`` and ``q = p - 1`` splitters:

* phase 1: ``O(q + r*n*log(r*n))`` — sample sort + splitter pick;
* phase 2: ``O(n/p)`` — bucketing traversal;
* phase 3: ``O((n/p) * log(n/p))`` — per-bucket sorting;

combined (Eq. 2) as ``O((n + q) + ((p*r + 1)/p) * n * log(n))`` and
simplified (Eq. 3) to ``O(n/p + (n/p)*log(n))``.  Because N arrays map to
N independent blocks, N cancels (Eq. 1) and the curve is a function of
``n`` alone.

Fig. 2 plots this theoretical curve against measured times for
``N = 50 000`` and varying ``n``; the claim is shape agreement.  Big-O
hides a scale constant, so — like the paper must have — we fit a single
multiplicative constant (least squares) before overlaying.  The fit
quality metric we report is the coefficient of determination R^2.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

import numpy as np

from ..core.config import DEFAULT_CONFIG, SortConfig

__all__ = [
    "eq2_complexity",
    "eq3_complexity",
    "phase_complexities",
    "fit_scale",
    "ComplexityFit",
    "theoretical_curve",
]


def phase_complexities(n: int, config: SortConfig = DEFAULT_CONFIG) -> dict:
    """The three per-phase complexity terms for array size ``n``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    p = config.num_buckets(n)
    q = p - 1
    r = config.sampling_rate
    s = max(2.0, r * n)
    return {
        "phase1": q + s * np.log2(s),
        "phase2": n / p,
        "phase3": (n / p) * np.log2(max(2.0, n / p)),
    }


def eq2_complexity(n: int, config: SortConfig = DEFAULT_CONFIG) -> float:
    """Paper Eq. 2: ``(n + q) + ((p*r + 1)/p) * n * log(n)``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    p = config.num_buckets(n)
    q = p - 1
    r = config.sampling_rate
    return (n + q) + ((p * r + 1) / p) * n * np.log2(max(2.0, n))


def eq3_complexity(n: int, config: SortConfig = DEFAULT_CONFIG) -> float:
    """Paper Eq. 3 (simplified): ``n/p + (n/p) * log(n)``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    p = config.num_buckets(n)
    return n / p + (n / p) * np.log2(max(2.0, n))


@dataclasses.dataclass(frozen=True)
class ComplexityFit:
    """A fitted theory overlay: ``predicted = scale * raw_complexity``."""

    scale: float
    r_squared: float
    sizes: np.ndarray
    measured: np.ndarray
    predicted: np.ndarray


def fit_scale(
    sizes: Sequence[int],
    measured_ms: Sequence[float],
    *,
    config: SortConfig = DEFAULT_CONFIG,
    form: Callable[[int, SortConfig], float] = eq2_complexity,
) -> ComplexityFit:
    """Least-squares fit of the single Big-O constant, like Fig. 2.

    Returns the fit with R^2 so tests/benches can assert shape agreement
    (the paper's claim: "the plot for actual values follows the same
    trend as that of theoretically calculated values").
    """
    sizes = np.asarray(list(sizes), dtype=np.int64)
    measured = np.asarray(list(measured_ms), dtype=np.float64)
    if sizes.size != measured.size or sizes.size == 0:
        raise ValueError("sizes and measured_ms must be equal-length and non-empty")
    raw = np.array([form(int(n), config) for n in sizes], dtype=np.float64)
    denom = float(np.dot(raw, raw))
    scale = float(np.dot(raw, measured) / denom) if denom > 0 else 0.0
    predicted = scale * raw
    ss_res = float(np.sum((measured - predicted) ** 2))
    ss_tot = float(np.sum((measured - measured.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return ComplexityFit(
        scale=scale,
        r_squared=r2,
        sizes=sizes,
        measured=measured,
        predicted=predicted,
    )


def theoretical_curve(
    sizes: Sequence[int],
    scale: float = 1.0,
    *,
    config: SortConfig = DEFAULT_CONFIG,
    form: Callable[[int, SortConfig], float] = eq2_complexity,
) -> np.ndarray:
    """Evaluate the (scaled) theory curve at the given sizes."""
    return np.array([scale * form(int(n), config) for n in sizes])
