"""Device-scaling studies: how the algorithm rides the hardware envelope.

The paper's scalability argument ("highly scalable ... each array gets
assigned to an individual block and in theory each block is processed in
parallel") implies concrete predictions the model can test:

* **SM scaling** — with N far above residency, time should fall ~1/SMs
  until bandwidth saturates;
* **generation scaling** — the K40c should beat the Fermi C2050 by
  roughly their throughput ratio;
* **residency knee** — below ``concurrent_blocks`` arrays, adding
  arrays is free (same wave count); above it, time grows linearly.  The
  knee position is an occupancy prediction, checkable against the
  simulator.

:func:`sm_scaling_curve`, :func:`device_comparison` and
:func:`residency_knee` produce the data; ``benchmarks/bench_scaling.py``
renders and asserts them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..core.config import DEFAULT_CONFIG, SortConfig
from ..gpusim.device import DEVICE_CATALOG, DeviceSpec, K40C
from .perfmodel import model_arraysort_breakdown, model_arraysort_ms

__all__ = [
    "sm_scaling_curve",
    "device_comparison",
    "residency_knee",
    "ScalingPoint",
]


@dataclasses.dataclass(frozen=True)
class ScalingPoint:
    """One point of a scaling study."""

    label: str
    sm_count: int
    modeled_ms: float
    speedup: float


def _with_sm_count(spec: DeviceSpec, sm_count: int) -> DeviceSpec:
    return dataclasses.replace(spec, sm_count=sm_count)


def sm_scaling_curve(
    sm_counts: Sequence[int],
    *,
    N: int = 200_000,
    n: int = 1000,
    base: DeviceSpec = K40C,
    config: SortConfig = DEFAULT_CONFIG,
) -> List[ScalingPoint]:
    """Modeled time vs SM count (strong scaling at fixed work).

    Bandwidth is held at the base device's figure, so the curve bends
    away from ideal as the memory system saturates — the honest story.
    """
    if not sm_counts:
        raise ValueError("need at least one SM count")
    points: List[ScalingPoint] = []
    base_ms: Optional[float] = None
    for sms in sm_counts:
        if sms < 1:
            raise ValueError("SM counts must be >= 1")
        spec = _with_sm_count(base, sms)
        ms = model_arraysort_ms(spec, N, n, config)
        if base_ms is None:
            base_ms = ms
        points.append(
            ScalingPoint(
                label=f"{sms} SMs",
                sm_count=sms,
                modeled_ms=ms,
                speedup=base_ms / ms if ms else float("inf"),
            )
        )
    return points


def device_comparison(
    *,
    N: int = 200_000,
    n: int = 1000,
    devices: Optional[Dict[str, DeviceSpec]] = None,
    config: SortConfig = DEFAULT_CONFIG,
) -> Dict[str, Dict[str, float]]:
    """Per-device modeled time and phase breakdown across the catalog."""
    catalog = devices or {
        key: spec for key, spec in DEVICE_CATALOG.items() if key != "micro"
    }
    out: Dict[str, Dict[str, float]] = {}
    for key, spec in sorted(catalog.items()):
        breakdown = model_arraysort_breakdown(spec, N, n, config)
        row = dict(breakdown.phases)
        row["total"] = breakdown.total_ms
        out[spec.name] = row
    return out


def residency_knee(
    *,
    n: int = 1000,
    device: DeviceSpec = K40C,
    config: SortConfig = DEFAULT_CONFIG,
    max_waves: int = 8,
) -> Dict[str, object]:
    """Locate the N below which extra arrays are free (single wave).

    Phase 2's occupancy dominates (its blocks carry p threads and the
    splitter/count shared arrays); the knee is its ``concurrent_blocks``.
    Returns the knee and the modeled times at multiples of it, which
    must be flat below and staircase-linear above.
    """
    from .perfmodel import _concurrent_blocks  # shared analytic occupancy

    p = config.num_buckets(n)
    smem2 = (p + 1) * 8 + 2 * p * 4
    knee = _concurrent_blocks(device, p, smem2)
    series = {}
    for mult in [0.25, 0.5, 1.0] + [float(w) for w in range(2, max_waves + 1)]:
        N = max(1, int(knee * mult))
        series[mult] = model_arraysort_ms(device, N, n, config)
    return {"knee_arrays": knee, "times_at_multiples": series}
