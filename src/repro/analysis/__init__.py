"""``repro.analysis`` — models and metrics behind the paper's evaluation.

* :mod:`~repro.analysis.complexity` — the paper's Eqs. 1-3 + Fig 2 fit;
* :mod:`~repro.analysis.perfmodel` — calibrated cycle model for Figs 4-7;
* :mod:`~repro.analysis.memory_model` — footprints + Table 1 capacities;
* :mod:`~repro.analysis.metrics` — bucket balance / hardware metrics;
* :mod:`~repro.analysis.reporting` — text rendering for benches.
"""

from .calibration import (
    PAPER_CAPACITY_ANCHORS,
    PAPER_TIME_ANCHORS,
    Anchor,
    CalibrationResult,
    fit_memory_fraction,
    fit_time_calibration,
)
from .complexity import (
    ComplexityFit,
    eq2_complexity,
    eq3_complexity,
    fit_scale,
    phase_complexities,
    theoretical_curve,
)
from .memory_model import (
    PAPER_TABLE1,
    CapacityRow,
    arraysort_bytes_per_array,
    capacity_analytic,
    measure_capacity,
    sta_bytes_per_array,
    table1_rows,
)
from .export import export_all, export_claims, export_figure_series, export_table1
from .metrics import BucketBalance, bucket_balance, report_metrics, sampling_quality
from .report import Claim, build_report, evaluate_claims
from .perfmodel import (
    CALIBRATION,
    PhaseBreakdown,
    model_arraysort_breakdown,
    model_arraysort_ms,
    model_sta_breakdown,
    model_sta_ms,
    win_factor,
)
from .reporting import ascii_plot, format_ms, render_series, render_table

__all__ = [
    "Anchor",
    "CALIBRATION",
    "CalibrationResult",
    "PAPER_CAPACITY_ANCHORS",
    "PAPER_TIME_ANCHORS",
    "fit_memory_fraction",
    "fit_time_calibration",
    "BucketBalance",
    "Claim",
    "build_report",
    "evaluate_claims",
    "export_all",
    "export_claims",
    "export_figure_series",
    "export_table1",
    "CapacityRow",
    "ComplexityFit",
    "PAPER_TABLE1",
    "PhaseBreakdown",
    "arraysort_bytes_per_array",
    "ascii_plot",
    "bucket_balance",
    "capacity_analytic",
    "eq2_complexity",
    "eq3_complexity",
    "fit_scale",
    "format_ms",
    "measure_capacity",
    "model_arraysort_breakdown",
    "model_arraysort_ms",
    "model_sta_breakdown",
    "model_sta_ms",
    "phase_complexities",
    "render_series",
    "render_table",
    "report_metrics",
    "sampling_quality",
    "sta_bytes_per_array",
    "table1_rows",
    "theoretical_curve",
    "win_factor",
]
