"""Device-memory footprint models and the Table 1 capacity experiment.

Table 1 of the paper reports the maximum number of arrays each technique
could sort on the K40c (11 520 MB) for n in {1000..4000}: GPU-ArraySort
handles roughly 3x more arrays than STA because it sorts in place while
STA carries tags plus radix scratch.

Two models are provided per technique:

* an **analytic** bytes-per-array formula (``*_bytes_per_array``), turned
  into a capacity by dividing the usable device memory;
* an **empirical** probe (:func:`measure_capacity`) that binary-searches
  the largest N whose allocation sequence actually succeeds against the
  simulated allocator — allocation bookkeeping only, no data movement, so
  probing multi-GB capacities is instant.

For STA the paper's own accounting ("about 3 times more memory than may
actually be required") corresponds to charging data + tags + a key-sized
scratch; a conservative variant also charges the payload scratch (4x).
Both are exposed; the Table 1 bench prints both next to the paper's
numbers.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional

from ..core.config import DEFAULT_CONFIG, SortConfig
from ..gpusim.device import DeviceSpec, K40C
from ..gpusim.errors import DeviceOutOfMemoryError
from ..gpusim.executor import GpuDevice

__all__ = [
    "arraysort_bytes_per_array",
    "sta_bytes_per_array",
    "capacity_analytic",
    "measure_capacity",
    "CapacityRow",
    "table1_rows",
    "PAPER_TABLE1",
]

#: The published Table 1: array size -> (GPU-ArraySort max N, STA max N).
PAPER_TABLE1: Dict[int, tuple] = {
    1000: (2_000_000, 700_000),
    2000: (1_050_000, 350_000),
    3000: (700_000, 200_000),
    4000: (500_000, 150_000),
}


def arraysort_bytes_per_array(n: int, config: SortConfig = DEFAULT_CONFIG) -> int:
    """Peak device bytes per array for GPU-ArraySort.

    Data (sorted in place) + splitters + bucket sizes; no O(n) scratch.
    """
    itemsize = config.dtype.itemsize
    return n * itemsize + config.metadata_bytes_per_array(n)


def sta_bytes_per_array(
    n: int,
    *,
    itemsize: int = 4,
    tag_itemsize: int = 4,
    conservative: bool = False,
) -> int:
    """Peak device bytes per array for STA.

    ``conservative=False`` (default) uses the paper's ~3x accounting:
    data + tags + key-sized radix scratch.  ``conservative=True`` also
    charges the payload scratch buffer (4x), which is what our simulated
    ``stable_sort_by_key`` actually allocates.
    """
    data = n * itemsize
    tags = n * tag_itemsize
    scratch = data + (tags if conservative else 0)
    return data + tags + scratch


def capacity_analytic(
    n: int,
    bytes_per_array: int,
    device: DeviceSpec = K40C,
    *,
    step: int = 1,
) -> int:
    """Largest N fitting in the device's usable memory, optionally floored
    to a probing granularity ``step`` (the paper probed in coarse steps —
    its Table 1 values are all multiples of 50 000)."""
    if bytes_per_array <= 0:
        raise ValueError("bytes_per_array must be positive")
    if step < 1:
        raise ValueError("step must be >= 1")
    raw = device.usable_global_mem_bytes // bytes_per_array
    return (raw // step) * step


def _alloc_arraysort(device: GpuDevice, N: int, n: int, config: SortConfig):
    """The allocation sequence GPU-ArraySort performs for an (N, n) batch."""
    itemsize = config.dtype.itemsize
    p = config.num_buckets(n)
    q = p - 1
    allocs = [
        device.memory.alloc(N * n, config.dtype, name="data"),
        device.memory.alloc(max(N * q, 1), config.dtype, name="splitters"),
        device.memory.alloc(N * p, "int32", name="sizes"),
    ]
    return allocs


def _alloc_sta(device: GpuDevice, N: int, n: int, config: SortConfig):
    """STA's peak allocation set: data + tags + radix scratch for both."""
    allocs = [
        device.memory.alloc(N * n, "float32", name="data"),
        device.memory.alloc(N * n, "int32", name="tags"),
        device.memory.alloc(N * n, "float32", name="radix_scratch_keys"),
        device.memory.alloc(N * n, "int32", name="radix_scratch_vals"),
    ]
    return allocs


def measure_capacity(
    technique: str,
    n: int,
    *,
    device_spec: DeviceSpec = K40C,
    config: SortConfig = DEFAULT_CONFIG,
    step: int = 1,
    hi: Optional[int] = None,
) -> int:
    """Binary-search the largest N whose allocations succeed on the device.

    ``technique`` is ``"arraysort"`` or ``"sta"``.  Only the allocator is
    exercised — the arena is never written — so this models exactly the
    OOM boundary the paper probed, at negligible cost.
    """
    alloc_fns: Dict[str, Callable] = {
        "arraysort": _alloc_arraysort,
        "sta": _alloc_sta,
    }
    try:
        alloc_fn = alloc_fns[technique]
    except KeyError:
        raise ValueError(
            f"unknown technique {technique!r}; choose from {sorted(alloc_fns)}"
        ) from None

    def fits(N: int) -> bool:
        if N == 0:
            return True
        device = GpuDevice(device_spec)
        try:
            allocs = alloc_fn(device, N, n, config)
        except DeviceOutOfMemoryError:
            return False
        for a in allocs:
            device.memory.free(a)
        return True

    if hi is None:
        hi = device_spec.usable_global_mem_bytes // max(n, 1) + 1
    lo = 0
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if fits(mid):
            lo = mid
        else:
            hi = mid - 1
    return (lo // step) * step


@dataclasses.dataclass(frozen=True)
class CapacityRow:
    """One row of the Table 1 reproduction."""

    array_size: int
    paper_arraysort: int
    paper_sta: int
    model_arraysort: int
    model_sta: int
    measured_arraysort: int
    measured_sta: int

    @property
    def paper_advantage(self) -> float:
        return self.paper_arraysort / self.paper_sta

    @property
    def model_advantage(self) -> float:
        return self.model_arraysort / max(1, self.model_sta)


def table1_rows(
    *,
    device: DeviceSpec = K40C,
    config: SortConfig = DEFAULT_CONFIG,
    step: int = 50_000,
    measure: bool = True,
) -> list:
    """Build the full Table 1 reproduction (paper / analytic / empirical).

    ``step`` floors results to the paper's probing granularity (its
    published values are all multiples of 50 000).
    """
    rows = []
    for n, (paper_gas, paper_sta) in sorted(PAPER_TABLE1.items()):
        model_gas = capacity_analytic(
            n, arraysort_bytes_per_array(n, config), device, step=step
        )
        model_sta = capacity_analytic(
            n, sta_bytes_per_array(n), device, step=step
        )
        if measure:
            meas_gas = measure_capacity(
                "arraysort", n, device_spec=device, config=config, step=step
            )
            meas_sta = measure_capacity(
                "sta", n, device_spec=device, config=config, step=step
            )
        else:
            meas_gas = meas_sta = 0
        rows.append(
            CapacityRow(
                array_size=n,
                paper_arraysort=paper_gas,
                paper_sta=paper_sta,
                model_arraysort=model_gas,
                model_sta=model_sta,
                measured_arraysort=meas_gas,
                measured_sta=meas_sta,
            )
        )
    return rows
