"""One-command reproduction report: every paper artifact, regenerated.

:func:`build_report` runs the full evaluation protocol — Fig. 2's
theory overlay, Figs. 4–7's runtime sweeps, Table 1's capacities, and
the headline claims — and renders a single text report with PASS/FAIL
verdicts per claim.  ``gpu-arraysort report`` prints it;
``gpu-arraysort report --output report.md`` writes it to disk.

Verdicts are deliberately coarse (shape claims, not milliseconds): the
same criteria the benchmark suite asserts, gathered in one artifact a
reviewer can read top to bottom.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from ..core.config import DEFAULT_CONFIG, SortConfig
from ..gpusim.device import DeviceSpec, K40C
from .complexity import fit_scale
from .memory_model import table1_rows
from .perfmodel import model_arraysort_ms, model_sta_ms
from .reporting import render_series, render_table

__all__ = ["Claim", "build_report", "evaluate_claims"]


@dataclasses.dataclass
class Claim:
    """One verifiable paper claim with its verdict."""

    claim_id: str
    statement: str
    passed: bool
    detail: str

    @property
    def verdict(self) -> str:
        return "PASS" if self.passed else "FAIL"


def _fig_axis(n: int) -> List[int]:
    points = [25_000, 50_000, 100_000, 150_000, 200_000]
    return points[:-1] if n >= 4000 else points


def _linearity_r2(xs, ys) -> float:
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    pred = np.polyval(np.polyfit(x, y, 1), x)
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    if ss_tot == 0:
        return 1.0
    return 1.0 - float(np.sum((y - pred) ** 2)) / ss_tot


def evaluate_claims(
    *,
    device: DeviceSpec = K40C,
    config: SortConfig = DEFAULT_CONFIG,
) -> List[Claim]:
    """Evaluate the paper's checkable claims against the models."""
    claims: List[Claim] = []

    # Fig. 2: theory/measurement trend agreement.
    sizes = list(range(200, 2001, 200))
    modeled = [model_arraysort_ms(device, 50_000, n, config) for n in sizes]
    fit = fit_scale(sizes, modeled, config=config)
    claims.append(Claim(
        "fig2-trend",
        "Fig 2: measured times follow the Eq. 2 theoretical trend",
        fit.r_squared > 0.97,
        f"R^2 = {fit.r_squared:.4f} over n in [200, 2000]",
    ))

    # Figs. 4-7: GPU-ArraySort wins everywhere; linear in N.
    all_win = True
    min_ratio, max_ratio = float("inf"), 0.0
    worst_linearity = 1.0
    for n in (1000, 2000, 3000, 4000):
        axis = _fig_axis(n)
        gas = [model_arraysort_ms(device, N, n, config) for N in axis]
        sta = [model_sta_ms(device, N, n) for N in axis]
        all_win &= all(s > g for g, s in zip(gas, sta))
        ratio = sta[-1] / gas[-1]
        min_ratio, max_ratio = min(min_ratio, ratio), max(max_ratio, ratio)
        worst_linearity = min(
            worst_linearity, _linearity_r2(axis, gas), _linearity_r2(axis, sta)
        )
    claims.append(Claim(
        "figs4-7-win",
        "Figs 4-7: GPU-ArraySort outperforms STA at every measured point",
        all_win,
        f"win factor {min_ratio:.2f}-{max_ratio:.2f}x across n = 1000..4000",
    ))
    claims.append(Claim(
        "figs4-7-linear",
        "Figs 4-7: both curves are near-linear in the number of arrays",
        worst_linearity > 0.99,
        f"worst linear-fit R^2 = {worst_linearity:.4f}",
    ))

    # Table 1: capacities and the 3x headline.
    rows = table1_rows(device=device, config=config, measure=False)
    within = all(
        abs(r.model_arraysort - r.paper_arraysort) <= 50_000
        and abs(r.model_sta - r.paper_sta) <= 50_000
        for r in rows
    )
    claims.append(Claim(
        "table1-capacity",
        "Table 1: per-technique capacities match within one probing step",
        within,
        "; ".join(
            f"n={r.array_size}: {r.model_arraysort / 1e6:.2f}M/"
            f"{r.model_sta / 1e3:.0f}k (paper {r.paper_arraysort / 1e6:.2f}M/"
            f"{r.paper_sta / 1e3:.0f}k)" for r in rows
        ),
    ))
    claims.append(Claim(
        "abstract-2m",
        "Abstract: sorts up to 2 million arrays of 1000 elements",
        rows[0].model_arraysort >= 2_000_000,
        f"modeled capacity {rows[0].model_arraysort:,} arrays at n = 1000",
    ))
    claims.append(Claim(
        "abstract-3x",
        "Abstract: sorts about three times more data than STA",
        all(2.5 < r.model_advantage < 3.6 for r in rows),
        "advantage " + ", ".join(f"{r.model_advantage:.2f}x" for r in rows),
    ))

    # Abstract: "within few seconds" at full capacity.
    ms_full = model_arraysort_ms(device, 2_000_000, 1000, config)
    claims.append(Claim(
        "abstract-seconds",
        "Abstract: 2M x 1000 sorts within tens of seconds",
        ms_full < 60_000,
        f"modeled {ms_full / 1000:.1f} s",
    ))
    return claims


def build_report(
    *,
    device: DeviceSpec = K40C,
    config: SortConfig = DEFAULT_CONFIG,
    include_figures: bool = True,
) -> str:
    """Render the full reproduction report as text."""
    lines: List[str] = []
    lines.append("GPU-ArraySort reproduction report")
    lines.append("=" * 50)
    lines.append(f"device model : {device.name} "
                 f"({device.cuda_cores} cores, "
                 f"{device.global_mem_bytes // (1024 * 1024)} MiB)")
    lines.append(f"tuning       : bucket_size={config.bucket_size}, "
                 f"sampling_rate={config.sampling_rate:.0%}")
    lines.append("")

    claims = evaluate_claims(device=device, config=config)
    lines.append(render_table(
        ["verdict", "claim", "detail"],
        [[c.verdict, c.statement, c.detail] for c in claims],
        title="Claims",
    ))
    lines.append("")
    passed = sum(c.passed for c in claims)
    lines.append(f"{passed}/{len(claims)} claims reproduced")
    lines.append("")

    if include_figures:
        sizes = list(range(200, 2001, 200))
        modeled = [model_arraysort_ms(device, 50_000, n, config) for n in sizes]
        fit = fit_scale(sizes, modeled, config=config)
        lines.append(render_series(
            "n", sizes,
            {"modeled_ms": modeled, "theory_ms": list(fit.predicted)},
            title=f"Fig 2 series (R^2 = {fit.r_squared:.4f})",
        ))
        lines.append("")
        for n in (1000, 2000, 3000, 4000):
            axis = _fig_axis(n)
            lines.append(render_series(
                "N", axis,
                {
                    "GPU-ArraySort_ms": [
                        model_arraysort_ms(device, N, n, config) for N in axis
                    ],
                    "STA_ms": [model_sta_ms(device, N, n) for N in axis],
                },
                title=f"Fig {(1000, 2000, 3000, 4000).index(n) + 4} series (n={n})",
            ))
            lines.append("")
        rows = table1_rows(device=device, config=config, measure=False)
        lines.append(render_table(
            ["n", "paper GAS", "model GAS", "paper STA", "model STA"],
            [[r.array_size, r.paper_arraysort, r.model_arraysort,
              r.paper_sta, r.model_sta] for r in rows],
            title="Table 1",
        ))
    return "\n".join(lines)
