"""Calibration utilities: derive the model constants from anchor points.

The perf and memory models each carry one calibrated scalar
(``perfmodel.CALIBRATION``, ``DeviceSpec.usable_mem_fraction``).  This
module makes the calibration *reproducible*: given anchor observations
(figure readings or capacity rows), fit the scalar, report residuals at
every other observation, and fail loudly when a proposed constant no
longer explains the data.

Used three ways:

* tests pin the shipped constants to the paper anchors (regression guard
  if anyone edits the model),
* users with real hardware can re-anchor against their own measurements,
* EXPERIMENTS.md's "one anchor, everything else predicted" claim is
  checkable code rather than prose.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.config import DEFAULT_CONFIG, SortConfig
from ..gpusim.device import DeviceSpec, K40C

__all__ = [
    "Anchor",
    "CalibrationResult",
    "fit_time_calibration",
    "fit_memory_fraction",
    "PAPER_TIME_ANCHORS",
    "PAPER_CAPACITY_ANCHORS",
]


@dataclasses.dataclass(frozen=True)
class Anchor:
    """One observation: a workload point and the measured value."""

    N: int
    n: int
    observed: float
    #: "arraysort" or "sta" — which technique the observation is of.
    technique: str = "arraysort"
    note: str = ""


#: Approximate milliseconds read off the paper's figures.  The first
#: anchor is the one the shipped CALIBRATION was fitted on; the rest
#: serve as held-out checks.
PAPER_TIME_ANCHORS: List[Anchor] = [
    Anchor(200_000, 1000, 2000.0, "arraysort", "Fig 4 right edge (GAS)"),
    Anchor(200_000, 1000, 8000.0, "sta", "Fig 4 right edge (STA)"),
    Anchor(50_000, 1000, 500.0, "arraysort", "Fig 2 at n=1000"),
    Anchor(50_000, 2000, 1000.0, "arraysort", "Fig 2 at n=2000"),
    Anchor(200_000, 2000, 15000.0, "sta", "Fig 5 right edge (STA)"),
]

#: The paper's Table 1 rows as capacity anchors (arrays, not ms).
PAPER_CAPACITY_ANCHORS: Dict[int, Tuple[int, int]] = {
    1000: (2_000_000, 700_000),
    2000: (1_050_000, 350_000),
    3000: (700_000, 200_000),
    4000: (500_000, 150_000),
}


@dataclasses.dataclass
class CalibrationResult:
    """A fitted constant plus per-anchor residuals."""

    value: float
    residuals: Dict[str, float]

    @property
    def max_abs_residual(self) -> float:
        return max((abs(r) for r in self.residuals.values()), default=0.0)

    def within(self, tolerance: float) -> bool:
        """True when every residual (relative) is within ``tolerance``."""
        return self.max_abs_residual <= tolerance


def _raw_model_ms(anchor: Anchor, spec: DeviceSpec, config: SortConfig) -> float:
    """Model prediction with calibration == 1 for one anchor."""
    from .perfmodel import model_arraysort_ms, model_sta_ms

    if anchor.technique == "arraysort":
        return model_arraysort_ms(spec, anchor.N, anchor.n, config, calibration=1.0)
    if anchor.technique == "sta":
        return model_sta_ms(spec, anchor.N, anchor.n, calibration=1.0)
    raise ValueError(f"unknown technique {anchor.technique!r}")


def fit_time_calibration(
    anchors: Sequence[Anchor] = (PAPER_TIME_ANCHORS[0],),
    *,
    check_against: Sequence[Anchor] = (),
    spec: DeviceSpec = K40C,
    config: SortConfig = DEFAULT_CONFIG,
) -> CalibrationResult:
    """Relative-least-squares fit of the cycles->ms calibration scalar.

    Minimizes the sum of squared *relative* errors
    ``((s * model_i - observed_i) / observed_i)^2`` so that a 15-second
    STA reading and a 500-millisecond Fig. 2 reading carry equal weight
    — the anchors span two orders of magnitude.

    ``anchors`` drive the fit; ``check_against`` only contribute
    residuals (relative error of the calibrated prediction vs the
    anchor's observed value).
    """
    if not anchors:
        raise ValueError("need at least one anchor to fit")
    raw = np.array([_raw_model_ms(a, spec, config) for a in anchors])
    obs = np.array([a.observed for a in anchors])
    if np.any(obs <= 0):
        raise ValueError("anchor observations must be positive")
    x = raw / obs
    denom = float(np.dot(x, x))
    if denom == 0:
        raise ValueError("anchors have zero model mass")
    value = float(x.sum() / denom)

    residuals: Dict[str, float] = {}
    for a in list(anchors) + list(check_against):
        pred = value * _raw_model_ms(a, spec, config)
        key = a.note or f"{a.technique}@N={a.N},n={a.n}"
        residuals[key] = (pred - a.observed) / a.observed
    return CalibrationResult(value=value, residuals=residuals)


def fit_memory_fraction(
    capacity_anchors: Dict[int, Tuple[int, int]] = None,
    *,
    spec: DeviceSpec = K40C,
    config: SortConfig = DEFAULT_CONFIG,
) -> CalibrationResult:
    """Fit ``usable_mem_fraction`` from Table 1-style capacity rows.

    Each row (n -> (arraysort N, sta N)) implies a usable-bytes
    estimate ``N * bytes_per_array``; the fit takes their mean over
    the raw device memory, and residuals report each row's deviation.
    """
    from .memory_model import arraysort_bytes_per_array, sta_bytes_per_array

    rows = capacity_anchors or PAPER_CAPACITY_ANCHORS
    implied: List[float] = []
    labels: List[str] = []
    for n, (cap_gas, cap_sta) in sorted(rows.items()):
        implied.append(cap_gas * arraysort_bytes_per_array(n, config))
        labels.append(f"arraysort@n={n}")
        implied.append(cap_sta * sta_bytes_per_array(n))
        labels.append(f"sta@n={n}")
    usable = float(np.mean(implied))
    fraction = usable / spec.global_mem_bytes
    residuals = {
        label: (bytes_ - usable) / usable
        for label, bytes_ in zip(labels, implied)
    }
    return CalibrationResult(value=fraction, residuals=residuals)
