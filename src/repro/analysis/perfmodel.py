"""Calibrated analytic performance model (drives Figs. 2 and 4-7 at paper scale).

The lock-step simulator executes real kernels but cannot run 2*10^5 arrays
of 4000 floats in Python.  This module evaluates the same first-order cost
structure *in closed form*:

* per-block cycle counts for the three GPU-ArraySort phases, built from
  the device's latency/bandwidth figures,
* analytic occupancy (same limits as
  :func:`repro.gpusim.occupancy.compute_occupancy`) turning N blocks into
  execution waves,
* a bandwidth model for STA's radix passes, derated for the scatter
  phase's imperfect coalescing.

Modeling choices that follow the *paper's* account of its implementation:

* The phase-1 sample sort is charged ``s * log2(s)`` steps, matching the
  paper's complexity expression ``O(r*n*log(r*n))`` (Section 6).  True
  single-thread insertion sort is quadratic — the gpusim kernels exhibit
  that faithfully — but the paper's measured curves (Figs. 2, 4-7) are
  only consistent with the loglinear form, so the *model* adopts it.
* Phase 2 keeps only splitters + counters in shared memory ("The
  sub-array sp_i is moved to shared memory because of its very small
  size", Section 5.2); the row scans stream through the read-only cache
  at :data:`CACHED_READ_CYCLES` per access.  This keeps occupancy high at
  n = 4000 (16 KB rows would otherwise cap residency at 2 blocks/SM).

**Calibration.** One shared scalar maps modeled cycles to the paper's
measured milliseconds, fitted jointly (least squares) over five readings
taken off the paper's figures — see
:mod:`repro.analysis.calibration.PAPER_TIME_ANCHORS`.  Identical for both
techniques — they ran on the same hardware — so the win factor must
emerge from the operation counts alone.  EXPERIMENTS.md records the
resulting paper-vs-model agreement at every point.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict

from ..core.config import DEFAULT_CONFIG, SortConfig
from ..gpusim.device import DeviceSpec, K40C

__all__ = [
    "PhaseBreakdown",
    "model_arraysort_ms",
    "model_arraysort_breakdown",
    "model_sta_ms",
    "model_sta_breakdown",
    "win_factor",
    "CALIBRATION",
    "CACHED_READ_CYCLES",
    "RADIX_SCATTER_EFFICIENCY",
]

#: Sim-to-silicon calibration shared by both techniques: absorbs kernel
#: launch overheads, imperfect latency hiding, ECC, and the authors'
#: implementation constant.  Fitted jointly (relative least squares) over
#: the five figure readings in
#: repro.analysis.calibration.PAPER_TIME_ANCHORS; see
#: fit_time_calibration, which reproduces this value to within noise.
#: Residuals: GAS anchors ~+10 %, STA anchors ~-20 % — i.e. the model's
#: win factor trails the figures' by ~30 %, documented in EXPERIMENTS.md.
CALIBRATION = 30.05

#: Cycles per data element read that hits the read-only/L1 cache path.
#: The phase-2/3 scans re-read a 4-16 KB row that trivially fits cache.
CACHED_READ_CYCLES = 10.0

#: Cycles per compare-and-shift step of the (modeled) sample sort and of
#: per-bucket sorting: one cached load + one store + compare.
SORT_STEP_CYCLES = 10.0

#: Effective fraction of peak bandwidth radix scatter sustains.  The
#: scatter phase of an LSD pass writes each element to a data-dependent
#: location, touching many 128-byte lines per warp; ~50 % efficiency is a
#: standard figure for Kepler-era radix sorts.
RADIX_SCATTER_EFFICIENCY = 0.5


@dataclasses.dataclass
class PhaseBreakdown:
    """Modeled milliseconds per phase of a technique."""

    phases: Dict[str, float]

    @property
    def total_ms(self) -> float:
        return sum(self.phases.values())


# --------------------------------------------------------------------------
# shared helpers
# --------------------------------------------------------------------------

def _serial_txn_cycles(spec: DeviceSpec) -> float:
    """Cycles one dependent global transaction costs a single thread.

    A lone thread cannot hide latency behind sibling warps as well as a
    saturated SM; expose half the raw latency plus the line's bandwidth
    term.
    """
    bytes_per_cycle = spec.mem_bandwidth_gbps * 1e9 / spec.clock_hz
    bw = spec.transaction_bytes / bytes_per_cycle
    return 0.5 * spec.global_latency_cycles + bw


def _bandwidth_cycles_per_byte(spec: DeviceSpec) -> float:
    return spec.clock_hz / (spec.mem_bandwidth_gbps * 1e9)


def _concurrent_blocks(spec: DeviceSpec, threads_per_block: int, smem_bytes: int) -> int:
    """Analytic occupancy: blocks resident device-wide."""
    by_threads = spec.max_threads_per_sm // max(threads_per_block, spec.warp_size)
    by_blocks = spec.max_blocks_per_sm
    by_smem = (
        spec.shared_mem_per_block // smem_bytes if smem_bytes > 0 else by_blocks
    )
    per_sm = max(1, min(by_threads, by_blocks, by_smem))
    return per_sm * spec.sm_count


def _waves(total_blocks: int, concurrent: int) -> int:
    return -(-total_blocks // max(1, concurrent))


def _log2(x: float) -> float:
    return math.log2(x) if x > 1 else 1.0


# --------------------------------------------------------------------------
# GPU-ArraySort
# --------------------------------------------------------------------------

def model_arraysort_breakdown(
    spec: DeviceSpec,
    N: int,
    n: int,
    config: SortConfig = DEFAULT_CONFIG,
    *,
    calibration: float = CALIBRATION,
) -> PhaseBreakdown:
    """Per-phase modeled milliseconds for GPU-ArraySort on ``spec``.

    Phase models (see module docstring for the fidelity notes):

    * **phase 1** (1 thread/block): ``s`` strided sample gathers at serial
      transaction cost, ``s log2 s`` sort steps in shared memory, ``q``
      splitter writes;
    * **phase 2** (p threads/block): row streamed once in and once out at
      bandwidth; two cached scans of ``n`` elements per thread (count,
      then collect); ~``n/p`` per-thread local collects;
    * **phase 3** (p threads/block): per-thread sort of a ``k = n/p``
      bucket — ``k^2/4`` average compare-shift steps against cached
      lines — plus streaming the row once more.
    """
    if N < 0 or n < 1:
        raise ValueError("need N >= 0 and n >= 1")
    if N == 0:
        return PhaseBreakdown({"phase1": 0.0, "phase2": 0.0, "phase3": 0.0})
    p = config.num_buckets(n)
    q = p - 1
    s = config.sample_size(n)
    k = n / p
    itemsize = config.dtype.itemsize

    g = _serial_txn_cycles(spec)
    bwc = _bandwidth_cycles_per_byte(spec)

    # Phase 1: single-thread block; sample buffer in shared memory.
    p1_block = s * g + s * _log2(s) * SORT_STEP_CYCLES + q * g
    conc1 = _concurrent_blocks(spec, 1, s * itemsize)
    p1 = _waves(N, conc1) * p1_block

    # Phase 2: only splitters + counters in shared memory.
    smem2 = (p + 1) * 8 + 2 * p * 4
    p2_block = (
        n * itemsize * bwc              # stream the row in once
        + 2 * n * CACHED_READ_CYCLES    # two scans (count, collect)
        + k * CACHED_READ_CYCLES        # per-thread local bucket collect
        + n * itemsize * bwc            # write the row back once
    )
    conc2 = _concurrent_blocks(spec, p, smem2)
    p2 = _waves(N, conc2) * p2_block

    # Phase 3: per-thread insertion sort of its bucket (k ~ bucket_size).
    smem3 = 2 * p * 4
    p3_block = 0.25 * k * k * SORT_STEP_CYCLES + n * itemsize * bwc
    conc3 = _concurrent_blocks(spec, p, smem3)
    p3 = _waves(N, conc3) * p3_block

    to_ms = lambda cycles: spec.cycles_to_ms(cycles * calibration)
    return PhaseBreakdown(
        {"phase1": to_ms(p1), "phase2": to_ms(p2), "phase3": to_ms(p3)}
    )


def model_arraysort_ms(
    spec: DeviceSpec,
    N: int,
    n: int,
    config: SortConfig = DEFAULT_CONFIG,
    *,
    calibration: float = CALIBRATION,
) -> float:
    """Total modeled milliseconds for GPU-ArraySort (see breakdown)."""
    return model_arraysort_breakdown(
        spec, N, n, config, calibration=calibration
    ).total_ms


# --------------------------------------------------------------------------
# STA
# --------------------------------------------------------------------------

def model_sta_breakdown(
    spec: DeviceSpec,
    N: int,
    n: int,
    *,
    include_redundant_presort: bool = True,
    digit_bits: int = 8,
    key_bits: int = 32,
    itemsize: int = 4,
    tag_itemsize: int = 4,
    calibration: float = CALIBRATION,
) -> PhaseBreakdown:
    """Per-stage modeled milliseconds for the STA pipeline.

    Every stable sort is ``key_bits / digit_bits`` radix passes over all
    ``M = N * n`` elements.  Each pass streams keys+payload in at full
    bandwidth and scatters them out at
    :data:`RADIX_SCATTER_EFFICIENCY` of peak.  Tag creation writes one
    tag per element.
    """
    if N < 0 or n < 1:
        raise ValueError("need N >= 0 and n >= 1")
    if N == 0:
        return PhaseBreakdown({"tagging": 0.0})
    M = N * n
    bwc = _bandwidth_cycles_per_byte(spec)
    passes = -(-key_bits // digit_bits)
    pair_bytes = itemsize + tag_itemsize

    read_cycles = M * pair_bytes * bwc
    scatter_cycles = M * pair_bytes * bwc / RADIX_SCATTER_EFFICIENCY
    per_sort = passes * (read_cycles + scatter_cycles)

    to_ms = lambda cycles: spec.cycles_to_ms(cycles * calibration)
    phases = {"tagging": to_ms(M * tag_itemsize * bwc)}
    if include_redundant_presort:
        phases["sort_by_tags_redundant"] = to_ms(per_sort)
    phases["sort_by_values"] = to_ms(per_sort)
    phases["sort_by_tags_restore"] = to_ms(per_sort)
    return PhaseBreakdown(phases)


def model_sta_ms(spec: DeviceSpec, N: int, n: int, **kwargs) -> float:
    """Total modeled milliseconds for STA (see breakdown)."""
    return model_sta_breakdown(spec, N, n, **kwargs).total_ms


def win_factor(
    spec: DeviceSpec = K40C,
    N: int = 200_000,
    n: int = 1000,
    config: SortConfig = DEFAULT_CONFIG,
) -> float:
    """Modeled STA-time / GPU-ArraySort-time ratio (the paper's headline)."""
    gas = model_arraysort_ms(spec, N, n, config)
    sta = model_sta_ms(spec, N, n)
    return sta / gas if gas > 0 else math.inf
