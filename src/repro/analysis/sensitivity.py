"""Sensitivity analysis: do the reproduced claims survive model error?

The calibrated model carries uncertain constants (latency hiding, cached
read cost, radix scatter efficiency, the calibration scalar itself, the
usable-memory fraction).  A reproduction whose verdicts flip when a
constant moves 20 % would be fragile; this module perturbs each constant
across a band and re-evaluates the headline claims:

* "GPU-ArraySort wins at every point" (Figs. 4-7),
* "~3x capacity advantage" (Table 1),
* linearity in N.

:func:`sweep_win_factor` and :func:`sweep_capacity_advantage` return the
claim value across the perturbation grid; tests assert the claims hold
over the whole band, and ``bench_ablations``' reviewers can eyeball the
margins.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from ..core.config import DEFAULT_CONFIG, SortConfig
from ..gpusim.device import DeviceSpec, K40C
from .memory_model import arraysort_bytes_per_array, sta_bytes_per_array

__all__ = [
    "SensitivityPoint",
    "sweep_win_factor",
    "sweep_capacity_advantage",
    "DEFAULT_PERTURBATIONS",
]

#: Multiplicative perturbations applied to each constant.
DEFAULT_PERTURBATIONS: Sequence[float] = (0.7, 0.85, 1.0, 1.15, 1.3)


@dataclasses.dataclass(frozen=True)
class SensitivityPoint:
    """One perturbed evaluation."""

    parameter: str
    multiplier: float
    value: float


def _win_factor_with(
    *,
    spec: DeviceSpec,
    N: int,
    n: int,
    config: SortConfig,
    cached_read: float,
    scatter_eff: float,
    sort_step: float,
) -> float:
    """Win factor with the module constants temporarily overridden.

    The perf model reads its constants at call time from module globals;
    we monkey-swap them here (restoring afterwards) rather than thread
    five extra parameters through every signature.
    """
    from . import perfmodel

    saved = (
        perfmodel.CACHED_READ_CYCLES,
        perfmodel.RADIX_SCATTER_EFFICIENCY,
        perfmodel.SORT_STEP_CYCLES,
    )
    try:
        perfmodel.CACHED_READ_CYCLES = cached_read
        perfmodel.RADIX_SCATTER_EFFICIENCY = scatter_eff
        perfmodel.SORT_STEP_CYCLES = sort_step
        gas = perfmodel.model_arraysort_ms(spec, N, n, config)
        sta = perfmodel.model_sta_ms(spec, N, n)
        return sta / gas if gas > 0 else float("inf")
    finally:
        (
            perfmodel.CACHED_READ_CYCLES,
            perfmodel.RADIX_SCATTER_EFFICIENCY,
            perfmodel.SORT_STEP_CYCLES,
        ) = saved


def sweep_win_factor(
    *,
    N: int = 200_000,
    n: int = 1000,
    spec: DeviceSpec = K40C,
    config: SortConfig = DEFAULT_CONFIG,
    perturbations: Sequence[float] = DEFAULT_PERTURBATIONS,
) -> List[SensitivityPoint]:
    """Win factor under perturbation of each uncertain model constant."""
    from . import perfmodel

    base = {
        "cached_read": perfmodel.CACHED_READ_CYCLES,
        "scatter_eff": perfmodel.RADIX_SCATTER_EFFICIENCY,
        "sort_step": perfmodel.SORT_STEP_CYCLES,
    }
    points: List[SensitivityPoint] = []
    for param in base:
        for mult in perturbations:
            kwargs = dict(base)
            kwargs[param] = base[param] * mult
            # scatter efficiency is a fraction; clamp to (0, 1].
            if param == "scatter_eff":
                kwargs[param] = min(kwargs[param], 1.0)
            value = _win_factor_with(
                spec=spec, N=N, n=n, config=config, **kwargs
            )
            points.append(SensitivityPoint(param, mult, value))
    return points


def sweep_capacity_advantage(
    *,
    n_values: Sequence[int] = (1000, 2000, 3000, 4000),
    fraction_multipliers: Sequence[float] = DEFAULT_PERTURBATIONS,
    spec: DeviceSpec = K40C,
    config: SortConfig = DEFAULT_CONFIG,
) -> Dict[float, List[float]]:
    """Capacity advantage per usable-memory-fraction perturbation.

    The advantage is a *ratio* of two capacities on the same device, so
    it should be invariant to the fraction — that invariance is itself
    the strongest robustness statement for Table 1's 3x headline.
    """
    out: Dict[float, List[float]] = {}
    for mult in fraction_multipliers:
        fraction = min(1.0, spec.usable_mem_fraction * mult)
        perturbed = dataclasses.replace(spec, usable_mem_fraction=fraction)
        advantages = []
        for n in n_values:
            gas_cap = perturbed.usable_global_mem_bytes // arraysort_bytes_per_array(n, config)
            sta_cap = perturbed.usable_global_mem_bytes // sta_bytes_per_array(n)
            advantages.append(gas_cap / max(1, sta_cap))
        out[mult] = advantages
    return out
