"""Plain-text rendering of experiment outputs.

The benchmark harness regenerates the paper's tables and figures as text:
tables as aligned columns, figures as (x, y, ...) series listings plus a
crude ASCII plot for quick visual shape checks in CI logs.  No plotting
dependencies — the repo stays importable with NumPy alone.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["render_table", "render_series", "ascii_plot", "format_ms"]


def format_ms(value: float) -> str:
    """Human-scaled milliseconds: 950 -> '950 ms', 12000 -> '12.0 s'."""
    if value >= 1000:
        return f"{value / 1000:.1f} s"
    if value >= 1:
        return f"{value:.0f} ms"
    return f"{value * 1000:.0f} us"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table.

    >>> print(render_table(["a", "b"], [[1, 2]]))
    a | b
    --+--
    1 | 2
    """
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append([str(c) for c in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence,
    series: Dict[str, Sequence[float]],
    *,
    title: Optional[str] = None,
    fmt: str = "{:.1f}",
) -> str:
    """Render figure data as a table of x vs each named series."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [fmt.format(series[name][i]) for name in series])
    return render_table(headers, rows, title=title)


def ascii_plot(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 16,
    title: Optional[str] = None,
) -> str:
    """Crude ASCII scatter of one or more series (shape inspection only).

    Each series gets a marker character; points round to the nearest cell.
    """
    markers = "*o+x#@"
    xs = [float(v) for v in x_values]
    all_y = [float(v) for vals in series.values() for v in vals]
    if not xs or not all_y:
        return "(empty plot)"
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(all_y), max(all_y)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, (name, vals) in enumerate(series.items()):
        marker = markers[si % len(markers)]
        for x, y in zip(xs, vals):
            col = int((float(x) - x_min) / x_span * (width - 1))
            row = height - 1 - int((float(y) - y_min) / y_span * (height - 1))
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: [{y_min:.1f}, {y_max:.1f}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"x: [{x_min:.0f}, {x_max:.0f}]   " + "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    ))
    return "\n".join(lines)
