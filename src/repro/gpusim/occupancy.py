"""Occupancy calculator: how many blocks run concurrently on the device.

Occupancy decides how many blocks a launch can keep resident at once, which
the timing model turns into the number of back-to-back "waves" a grid needs.
The limits mirror the CUDA occupancy calculator: threads per SM, blocks per
SM, and shared memory per SM.
"""

from __future__ import annotations

import dataclasses

from .device import DeviceSpec
from .grid import LaunchConfig

__all__ = ["Occupancy", "compute_occupancy"]


@dataclasses.dataclass(frozen=True)
class Occupancy:
    """Resolved occupancy figures for one launch on one device."""

    blocks_per_sm: int
    limiting_factor: str
    device_sm_count: int
    warps_per_block: int

    @property
    def concurrent_blocks(self) -> int:
        """Blocks resident across the whole device at one time."""
        return self.blocks_per_sm * self.device_sm_count

    @property
    def active_warps_per_sm(self) -> int:
        return self.blocks_per_sm * self.warps_per_block


def compute_occupancy(device: DeviceSpec, config: LaunchConfig) -> Occupancy:
    """Compute per-SM residency for ``config`` on ``device``.

    The shared-memory pool per SM is modeled as equal to the per-block limit
    (true for Kepler's default 48 KB configuration), so a block using all
    its shared memory runs alone on its SM — exactly the pressure
    GPU-ArraySort faces when staging a 4000-element array in shared memory.
    """
    threads = config.threads_per_block
    warps_per_block = config.warps_per_block(device.warp_size)

    by_threads = device.max_threads_per_sm // max(
        threads, device.warp_size
    )  # partial warps still occupy a scheduling slot
    by_blocks = device.max_blocks_per_sm
    if config.shared_mem_bytes > 0:
        by_smem = device.shared_mem_per_block // config.shared_mem_bytes
    else:
        by_smem = by_blocks

    blocks_per_sm = max(1, min(by_threads, by_blocks, by_smem))
    # Hardware never schedules zero blocks; a launch that fits (validated
    # earlier) always gets at least one resident block per SM.
    if by_smem <= min(by_threads, by_blocks) and config.shared_mem_bytes > 0:
        limiting = "shared_memory"
    elif by_threads <= by_blocks:
        limiting = "threads"
    else:
        limiting = "blocks"
    if min(by_threads, by_blocks, by_smem) < 1:
        blocks_per_sm = 1
    return Occupancy(
        blocks_per_sm=blocks_per_sm,
        limiting_factor=limiting,
        device_sm_count=device.sm_count,
        warps_per_block=warps_per_block,
    )
