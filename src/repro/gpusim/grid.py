"""Grid, block, and launch-configuration primitives.

CUDA launches are parameterized by a grid of blocks and threads per block,
each up to three-dimensional.  GPU-ArraySort only ever needs 1-D launches
(one block per array, one thread per bucket), but the simulator supports the
full ``Dim3`` shape so the substrate is reusable and so tests can exercise
the general scheduling math.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Tuple

from .device import DeviceSpec
from .errors import InvalidLaunchError, SharedMemoryExceededError

__all__ = ["Dim3", "Idx3", "LaunchConfig"]


@dataclasses.dataclass(frozen=True)
class Idx3:
    """A 0-based coordinate inside a :class:`Dim3` shape.

    ``threadIdx`` / ``blockIdx`` analog: components may be zero, unlike
    ``Dim3`` extents which must be >= 1.
    """

    x: int = 0
    y: int = 0
    z: int = 0

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.x, self.y, self.z)


@dataclasses.dataclass(frozen=True)
class Dim3:
    """A CUDA ``dim3``: extents along x, y, z (all >= 1)."""

    x: int = 1
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        for axis, value in (("x", self.x), ("y", self.y), ("z", self.z)):
            if not isinstance(value, int):
                raise TypeError(f"Dim3.{axis} must be an int, got {type(value).__name__}")
            if value < 1:
                raise ValueError(f"Dim3.{axis} must be >= 1, got {value}")

    @property
    def count(self) -> int:
        """Total number of elements in this shape."""
        return self.x * self.y * self.z

    def linearize(self, idx: Tuple[int, int, int]) -> int:
        """Flatten an ``(x, y, z)`` index using CUDA's x-fastest ordering."""
        x, y, z = idx
        return x + self.x * (y + self.y * z)

    def indices(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate indices in linear order (x fastest, matching warp packing)."""
        for z in range(self.z):
            for y in range(self.y):
                for x in range(self.x):
                    yield (x, y, z)

    @classmethod
    def of(cls, value) -> "Dim3":
        """Coerce an int, tuple, or Dim3 into a Dim3.

        >>> Dim3.of(4)
        Dim3(x=4, y=1, z=1)
        """
        if isinstance(value, Dim3):
            return value
        if isinstance(value, int):
            return cls(value)
        if isinstance(value, (tuple, list)):
            return cls(*value)
        raise TypeError(f"cannot interpret {value!r} as Dim3")


@dataclasses.dataclass(frozen=True)
class LaunchConfig:
    """A validated kernel launch configuration.

    Combines grid and block shapes with the per-block dynamic shared-memory
    request, exactly like the ``<<<grid, block, smem>>>`` launch syntax.
    """

    grid: Dim3
    block: Dim3
    shared_mem_bytes: int = 0

    @classmethod
    def create(cls, grid, block, shared_mem_bytes: int = 0) -> "LaunchConfig":
        """Build a config from loosely-typed grid/block values."""
        return cls(Dim3.of(grid), Dim3.of(block), int(shared_mem_bytes))

    @property
    def threads_per_block(self) -> int:
        return self.block.count

    @property
    def total_blocks(self) -> int:
        return self.grid.count

    @property
    def total_threads(self) -> int:
        return self.total_blocks * self.threads_per_block

    def warps_per_block(self, warp_size: int) -> int:
        """Number of warps needed to cover one block (ceiling division)."""
        return -(-self.threads_per_block // warp_size)

    def validate(self, device: DeviceSpec) -> None:
        """Check this launch against a device's hard limits.

        Raises :class:`InvalidLaunchError` or
        :class:`SharedMemoryExceededError` exactly as the CUDA runtime would
        reject the launch.
        """
        if self.total_blocks < 1:
            raise InvalidLaunchError("grid must contain at least one block")
        if self.threads_per_block < 1:
            raise InvalidLaunchError("block must contain at least one thread")
        if self.threads_per_block > device.max_threads_per_block:
            raise InvalidLaunchError(
                f"{self.threads_per_block} threads per block exceeds the "
                f"device limit of {device.max_threads_per_block}"
            )
        if self.grid.x > device.max_grid_dim_x:
            raise InvalidLaunchError(
                f"grid.x = {self.grid.x} exceeds device limit "
                f"{device.max_grid_dim_x}"
            )
        if self.shared_mem_bytes < 0:
            raise InvalidLaunchError("shared memory request must be >= 0")
        if self.shared_mem_bytes > device.shared_mem_per_block:
            raise SharedMemoryExceededError(
                self.shared_mem_bytes, device.shared_mem_per_block
            )
