"""Kernel launcher: schedules blocks onto the simulated device.

The executor owns the CUDA-like launch semantics:

* validates the :class:`LaunchConfig` against the device limits,
* creates one fresh :class:`SharedMemory` per block (``__shared__``
  lifetime), optionally running a block-scope ``shared_setup`` callable so
  all threads of the block see the same shared arrays,
* packs threads into warps in linear-thread-id order (as hardware does),
* advances warps in lock step, honoring ``__syncthreads()`` barriers,
* rolls warp costs up into a :class:`LaunchReport` via the occupancy and
  timing models.

Blocks execute sequentially in the interpreter, but their *costs* combine
as the hardware would run them: ``ceil(blocks / concurrent_blocks)`` waves
of the worst block time.
"""

from __future__ import annotations

import inspect
from typing import Callable, List, Optional, Sequence

from .device import DeviceSpec, K40C
from .errors import InvalidLaunchError, KernelFault
from .grid import Idx3, LaunchConfig
from .memory import GlobalMemory, SharedMemory
from .occupancy import compute_occupancy
from .profiler import LaunchReport
from .thread import ThreadContext
from .timing import CostModel, LaunchTiming, StepCost
from .warp import LaneState, Warp

__all__ = ["GpuDevice"]


class GpuDevice:
    """A simulated GPU: device spec + global memory + kernel launcher.

    This is the object user code holds, playing the role of a CUDA context::

        gpu = GpuDevice.k40c()
        data = gpu.memory.alloc_like(host_array)
        report = gpu.launch(my_kernel, grid=N, block=p, args=(data,))
    """

    def __init__(
        self,
        spec: DeviceSpec = K40C,
        *,
        memory_capacity: Optional[int] = None,
        latency_hiding: float = 0.85,
        fault_plan=None,
    ) -> None:
        spec.validate()
        self.spec = spec
        self.memory = GlobalMemory(spec, capacity_bytes=memory_capacity)
        self.cost_model = CostModel(spec, latency_hiding=latency_hiding)
        #: Optional :class:`repro.gpusim.faults.FaultPlan` consulted on
        #: every launch: may raise a transient fault before the kernel
        #: runs, and may corrupt one output element after it completes.
        self.fault_plan = fault_plan

    # -- constructors ---------------------------------------------------------
    @classmethod
    def k40c(cls, **kwargs) -> "GpuDevice":
        """The paper's evaluation device."""
        return cls(K40C, **kwargs)

    @classmethod
    def micro(cls, **kwargs) -> "GpuDevice":
        """A tiny device for fast exhaustive tests."""
        from .device import MICRO

        return cls(MICRO, **kwargs)

    # -- launching --------------------------------------------------------------
    def launch(
        self,
        kernel: Callable,
        *,
        grid,
        block,
        args: Sequence = (),
        shared_setup: Optional[Callable[[SharedMemory], object]] = None,
        name: Optional[str] = None,
        trace=None,
    ) -> LaunchReport:
        """Run ``kernel`` over the grid and return its :class:`LaunchReport`.

        ``kernel`` must be a generator function ``kernel(ctx, shared, *args)``
        where ``shared`` is the return value of ``shared_setup`` (or ``None``).
        ``trace`` (a :class:`repro.gpusim.tracing.Tracer`) records every
        warp-step memory access when given.
        """
        if not inspect.isgeneratorfunction(kernel):
            raise InvalidLaunchError(
                f"kernel {getattr(kernel, '__name__', kernel)!r} must be a "
                "generator function (it should 'yield' events)"
            )
        config = LaunchConfig.create(grid, block)
        config.validate(self.spec)

        kernel_name = name or getattr(kernel, "__name__", "kernel")
        fault_launch_index = None
        if self.fault_plan is not None:
            # May raise KernelFault / DeviceOutOfMemoryError before any
            # block runs — a transient launch failure leaves memory as-is.
            fault_launch_index = self.fault_plan.begin_launch(kernel_name)
        block_dim = config.block
        grid_dim = config.grid

        worst_block = StepCost()
        worst_block_total = 0.0
        all_warp_stats = []
        max_shared_used = 0

        for block_idx_tuple in grid_dim.indices():
            block_idx = Idx3(*block_idx_tuple)
            shared = SharedMemory(self.spec)
            shared_state = shared_setup(shared) if shared_setup is not None else None

            lanes: List[LaneState] = []
            for thread_idx_tuple in block_dim.indices():
                thread_idx = Idx3(*thread_idx_tuple)
                ctx = ThreadContext(thread_idx, block_idx, block_dim, grid_dim, shared)
                gen = kernel(ctx, shared_state, *args)
                lanes.append(LaneState(gen=gen, thread_index=thread_idx_tuple))

            warps = [
                Warp(
                    lanes[i : i + self.spec.warp_size],
                    self.cost_model,
                    trace_ctx=(
                        (trace, kernel_name, block_idx_tuple,
                         i // self.spec.warp_size)
                        if trace is not None else None
                    ),
                )
                for i in range(0, len(lanes), self.spec.warp_size)
            ]
            self._run_block(warps, block_idx_tuple, kernel_name)
            max_shared_used = max(max_shared_used, shared.used_bytes)

            block_cost = StepCost()
            for warp in warps:
                block_cost.merge_max(warp.cost)
                all_warp_stats.append(warp.stats)
            # A little per-resident-warp scheduling overhead so huge blocks
            # aren't free; dominated by memory terms in realistic kernels.
            sched_overhead = 2.0 * len(warps)
            block_total = block_cost.total + sched_overhead
            if block_total > worst_block_total:
                worst_block_total = block_total
                worst_block = block_cost

        if self.fault_plan is not None:
            # ECC-style event: the launch "succeeded" but one element of
            # a device-resident argument buffer took a bit flip.
            self.fault_plan.corrupt_flat(args, fault_launch_index)

        occ_config = LaunchConfig(grid_dim, block_dim, max_shared_used)
        occupancy = compute_occupancy(self.spec, occ_config)
        timing = LaunchTiming(
            block_cycles=worst_block_total,
            total_blocks=config.total_blocks,
            concurrent_blocks=occupancy.concurrent_blocks,
            device=self.spec,
        )
        return LaunchReport(
            kernel_name=kernel_name,
            grid_blocks=config.total_blocks,
            threads_per_block=config.threads_per_block,
            occupancy=occupancy,
            timing=timing,
            warp_stats=all_warp_stats,
        )

    # -- block execution -----------------------------------------------------------
    def _run_block(self, warps: List[Warp], block_idx: tuple, kernel_name: str) -> None:
        """Drive the warps of one block to completion, handling barriers."""
        while True:
            progressed = False
            for warp in warps:
                while warp.runnable:
                    try:
                        if warp.step():
                            progressed = True
                        else:
                            break
                    except KernelFault as fault:
                        raise KernelFault(
                            f"{kernel_name}: {fault}", block=block_idx, thread=(-1,)
                        ) from fault
            if all(w.finished for w in warps):
                return
            if all(w.all_parked_or_done for w in warps):
                # Barrier satisfied: every live lane is parked -> release all.
                for warp in warps:
                    warp.release_barrier()
                progressed = True
            if not progressed:  # pragma: no cover - defensive
                raise KernelFault(
                    f"{kernel_name}: block made no progress (barrier deadlock?)",
                    block=block_idx,
                    thread=(-1,),
                )

    # -- convenience ------------------------------------------------------------------
    def synchronize(self) -> None:
        """No-op analog of ``cudaDeviceSynchronize`` (launches are eager)."""

    def mem_info(self) -> dict:
        """Free/total memory, like ``cudaMemGetInfo``."""
        return {
            "free": self.memory.free_bytes,
            "total": self.memory.capacity_bytes,
            "peak": self.memory.stats.peak_bytes,
        }
