"""Cycle-level cost model for simulated kernel launches.

The model charges:

* one ALU cycle per arithmetic "op" a kernel declares,
* ``global_latency_cycles`` amortized per global-memory *transaction*
  (post-coalescing), plus a bandwidth term,
* ``shared_latency_cycles`` per shared-memory access (plus bank-conflict
  replays when the warp's lanes collide on a bank),
* re-execution cycles for divergent branches (both sides of a divergent
  branch serialize, Section 3.2 of the paper).

Costs accumulate per warp step; a block's time is the max over its warps
and the launch's time is driven by how many blocks each SM runs
back-to-back (waves).  This is a first-order model — the paper's
performance narrative (coalescing matters, divergence hurts, shared memory
is ~100x faster) is exactly what it captures.
"""

from __future__ import annotations

import dataclasses

from .device import DeviceSpec

__all__ = ["CostModel", "StepCost", "LaunchTiming"]


@dataclasses.dataclass
class StepCost:
    """Cycle charges accumulated by one warp over its whole execution."""

    alu_cycles: float = 0.0
    global_cycles: float = 0.0
    shared_cycles: float = 0.0
    divergence_cycles: float = 0.0
    sync_cycles: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.alu_cycles
            + self.global_cycles
            + self.shared_cycles
            + self.divergence_cycles
            + self.sync_cycles
        )

    def merge_max(self, other: "StepCost") -> None:
        """Fold another warp's cost in as a parallel sibling (max semantics)."""
        self.alu_cycles = max(self.alu_cycles, other.alu_cycles)
        self.global_cycles = max(self.global_cycles, other.global_cycles)
        self.shared_cycles = max(self.shared_cycles, other.shared_cycles)
        self.divergence_cycles = max(self.divergence_cycles, other.divergence_cycles)
        self.sync_cycles = max(self.sync_cycles, other.sync_cycles)


class CostModel:
    """Translates memory/ALU events into cycles for a given device."""

    #: Cycles per global transaction beyond the fixed latency: 128 bytes at
    #: peak bandwidth expressed in core cycles.
    def __init__(self, device: DeviceSpec, latency_hiding: float = 0.85) -> None:
        if not 0.0 <= latency_hiding < 1.0:
            raise ValueError("latency_hiding must be in [0, 1)")
        self.device = device
        #: How much of the raw global latency the SM hides by switching
        #: among resident warps.  0.85 means 15% of latency is exposed --
        #: a typical figure for memory-bound Kepler kernels with moderate
        #: occupancy.
        self.latency_hiding = latency_hiding
        bytes_per_cycle = device.mem_bandwidth_gbps * 1e9 / device.clock_hz
        self._bandwidth_cycles_per_txn = device.transaction_bytes / bytes_per_cycle

    def global_access(self, transactions: int) -> float:
        """Cycles for one warp global access needing ``transactions`` segments."""
        exposed_latency = self.device.global_latency_cycles * (1.0 - self.latency_hiding)
        return exposed_latency + transactions * self._bandwidth_cycles_per_txn

    def shared_access(self, bank_conflicts: int = 0) -> float:
        """Cycles for one warp shared access with ``bank_conflicts`` replays."""
        return self.device.shared_latency_cycles * (1 + max(0, bank_conflicts))

    def alu(self, ops: int = 1) -> float:
        """Cycles for ``ops`` arithmetic operations on one warp."""
        return float(ops)

    def divergence(self, branch_paths: int) -> float:
        """Penalty when a warp splits into ``branch_paths`` serialized paths.

        Each extra path re-issues the branch body; we charge a flat
        per-path overhead since the re-executed body instructions are
        already charged by the path's own events.
        """
        return 8.0 * max(0, branch_paths - 1)

    def sync(self) -> float:
        """Cycles for one ``__syncthreads()`` barrier."""
        return 20.0


@dataclasses.dataclass
class LaunchTiming:
    """Final timing roll-up for one kernel launch."""

    #: Worst-case per-block cycles observed.
    block_cycles: float
    #: Number of blocks in the launch.
    total_blocks: int
    #: Blocks that can be resident simultaneously across the device.
    concurrent_blocks: int
    device: DeviceSpec = dataclasses.field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def waves(self) -> int:
        """How many back-to-back waves of blocks the launch needs."""
        if self.concurrent_blocks <= 0:
            return self.total_blocks
        return -(-self.total_blocks // self.concurrent_blocks)

    @property
    def total_cycles(self) -> float:
        return self.block_cycles * self.waves

    @property
    def milliseconds(self) -> float:
        return self.device.cycles_to_ms(self.total_cycles)
