"""Thread-side programming model: events and the :class:`ThreadContext`.

Simulated kernels are Python *generator functions* with the signature::

    def kernel(ctx: ThreadContext, *launch_args):
        tid = ctx.thread_idx.x
        x = yield ctx.gload(data, tid)        # global load
        yield ctx.alu(1)                       # charge 1 arithmetic op
        yield ctx.gstore(out, tid, x * 2)      # global store
        yield ctx.sync()                       # __syncthreads()

Every ``yield`` is one lock-step instruction slot.  The warp executor
advances all 32 lanes of a warp together, coalesces the global accesses
the lanes issued in the same slot, detects divergence when lanes issue
different instructions, and feeds the costs to the timing model.

``gload`` returns an event; the *value* of the load is delivered as the
result of the ``yield`` (the executor ``send()``s it back), mirroring how a
real load's destination register only becomes usable after the instruction
completes.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from .grid import Dim3, Idx3
from .memory import DeviceArray, SharedMemory

__all__ = [
    "AtomicAdd",
    "Event",
    "GlobalLoad",
    "GlobalStore",
    "SharedLoad",
    "SharedStore",
    "AluOp",
    "SyncBarrier",
    "ThreadContext",
]


@dataclasses.dataclass
class Event:
    """Base class for one lane-instruction in a lock step."""

    #: Short opcode used for divergence grouping ("GLD", "GST", ...).
    op: str = dataclasses.field(init=False, default="NOP")

    def signature(self) -> str:
        """Lanes whose signatures differ in a step have diverged."""
        return self.op


@dataclasses.dataclass
class GlobalLoad(Event):
    array: DeviceArray
    index: int

    def __post_init__(self) -> None:
        self.op = "GLD"

    @property
    def address(self) -> int:
        return self.array.address_of(self.index)

    @property
    def nbytes(self) -> int:
        return self.array.itemsize


@dataclasses.dataclass
class GlobalStore(Event):
    array: DeviceArray
    index: int
    value: Any

    def __post_init__(self) -> None:
        self.op = "GST"

    @property
    def address(self) -> int:
        return self.array.address_of(self.index)

    @property
    def nbytes(self) -> int:
        return self.array.itemsize


@dataclasses.dataclass
class SharedLoad(Event):
    array: DeviceArray
    index: int

    def __post_init__(self) -> None:
        self.op = "SLD"

    @property
    def bank(self) -> int:
        # 32 banks of 4-byte words on CC >= 2.0 devices.
        return (self.array.address_of(self.index) // 4) % 32


@dataclasses.dataclass
class SharedStore(Event):
    array: DeviceArray
    index: int
    value: Any

    def __post_init__(self) -> None:
        self.op = "SST"

    @property
    def bank(self) -> int:
        return (self.array.address_of(self.index) // 4) % 32


@dataclasses.dataclass
class AluOp(Event):
    ops: int = 1

    def __post_init__(self) -> None:
        self.op = "ALU"


@dataclasses.dataclass
class AtomicAdd(Event):
    """Atomic read-modify-write on global or shared memory.

    Yields the *old* value back to the lane (CUDA ``atomicAdd`` returns
    the pre-update value).  Lanes of a warp hitting the same address in
    the same step serialize — the hardware behaviour behind the paper's
    observation that multi-thread bucketing "slows down the process
    considerably" (Section 5.2).
    """

    array: DeviceArray = None  # type: ignore[assignment]
    index: int = 0
    value: Any = 0

    def __post_init__(self) -> None:
        self.op = "ATOM"

    @property
    def address(self) -> int:
        return self.array.address_of(self.index)


@dataclasses.dataclass
class SyncBarrier(Event):
    def __post_init__(self) -> None:
        self.op = "SYNC"


class ThreadContext:
    """Per-thread view of the launch: indices, dims, and event builders.

    One instance exists per simulated thread.  It owns no mutable state
    besides its identity; all memory lives in :class:`DeviceArray` objects.
    """

    __slots__ = ("thread_idx", "block_idx", "block_dim", "grid_dim", "_shared")

    def __init__(
        self,
        thread_idx: Idx3,
        block_idx: Idx3,
        block_dim: Dim3,
        grid_dim: Dim3,
        shared: Optional[SharedMemory],
    ) -> None:
        self.thread_idx = thread_idx
        self.block_idx = block_idx
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self._shared = shared

    # -- identity helpers ---------------------------------------------------
    @property
    def global_thread_id(self) -> int:
        """Flattened thread id across the whole grid (x-major)."""
        block_linear = self.grid_dim.linearize(
            (self.block_idx.x, self.block_idx.y, self.block_idx.z)
        )
        thread_linear = self.block_dim.linearize(
            (self.thread_idx.x, self.thread_idx.y, self.thread_idx.z)
        )
        return block_linear * self.block_dim.count + thread_linear

    @property
    def lane_id(self) -> int:
        """Lane within the warp (thread_linear % 32)."""
        thread_linear = self.block_dim.linearize(
            (self.thread_idx.x, self.thread_idx.y, self.thread_idx.z)
        )
        return thread_linear % 32

    # -- shared memory -------------------------------------------------------
    def shared_alloc(self, length: int, dtype, name: str = "") -> DeviceArray:
        """Allocate block-shared storage (same array visible to all threads).

        The executor arranges that thread 0's allocations are replayed for
        the block; calling this from any thread returns the block's arena.
        """
        if self._shared is None:
            raise RuntimeError("thread context has no shared memory attached")
        return self._shared.alloc(length, dtype, name=name)

    # -- event builders -------------------------------------------------------
    @staticmethod
    def gload(array: DeviceArray, index: int) -> GlobalLoad:
        """Global-memory load; yield it and receive the element."""
        return GlobalLoad(array, int(index))

    @staticmethod
    def gstore(array: DeviceArray, index: int, value) -> GlobalStore:
        """Global-memory store."""
        return GlobalStore(array, int(index), value)

    @staticmethod
    def sload(array: DeviceArray, index: int) -> SharedLoad:
        """Shared-memory load; yield it and receive the element."""
        return SharedLoad(array, int(index))

    @staticmethod
    def sstore(array: DeviceArray, index: int, value) -> SharedStore:
        """Shared-memory store."""
        return SharedStore(array, int(index), value)

    @staticmethod
    def atomic_add(array: DeviceArray, index: int, value) -> AtomicAdd:
        """Atomic add; yield it and receive the old value."""
        return AtomicAdd(array, int(index), value)

    @staticmethod
    def alu(ops: int = 1) -> AluOp:
        """Charge ``ops`` arithmetic instructions to this lane."""
        return AluOp(int(ops))

    @staticmethod
    def sync() -> SyncBarrier:
        """Block-wide barrier (``__syncthreads()``)."""
        return SyncBarrier()

    @staticmethod
    def load(array: DeviceArray, index: int):
        """Space-dispatching load event (global or shared by array space)."""
        if array.space == "shared":
            return SharedLoad(array, int(index))
        return GlobalLoad(array, int(index))

    @staticmethod
    def store(array: DeviceArray, index: int, value):
        """Space-dispatching store event."""
        if array.space == "shared":
            return SharedStore(array, int(index), value)
        return GlobalStore(array, int(index), value)
