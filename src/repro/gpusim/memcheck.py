"""Race detection over access traces — a cuda-memcheck analog.

An *in-place* algorithm lives or dies by write disjointness: phase 2
writes buckets back into the very storage other threads read, and the
paper's correctness rests on those accesses never colliding.  This
module analyzes a :class:`~repro.gpusim.tracing.Tracer` capture and
reports data races at two scopes:

* **intra-block** — two warps of one block touching the same address in
  the same *barrier epoch* (no ``__syncthreads()`` between them) with at
  least one write.  Same-warp accesses are ordered by the lock step;
  different epochs are ordered by the barrier.  Atomics never race with
  atomics (hardware serializes them) but do conflict with plain
  accesses.
* **cross-block** — two different blocks touching the same *global*
  address anywhere in the launch with at least one write (blocks are
  unordered, so any write/write or read/write overlap is a race).
  Shared-memory records are per-block arenas and excluded from this
  scope.

``tests/test_gpusim_memcheck.py`` uses it both ways: deliberately racy
kernels are caught, and the GPU-ArraySort pipeline comes out *clean* —
the in-place safety argument, checked rather than claimed.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, List, Tuple

from .tracing import Tracer

__all__ = ["RaceFinding", "MemcheckReport", "check_races"]


@dataclasses.dataclass(frozen=True)
class RaceFinding:
    """One detected (potential) race."""

    scope: str            # "intra-block" or "cross-block"
    kernel: str
    address: int
    #: (block, warp, op) of the two conflicting parties.
    first: Tuple
    second: Tuple

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"{self.scope} race in {self.kernel} @ byte {self.address}: "
            f"{self.first} vs {self.second}"
        )


@dataclasses.dataclass
class MemcheckReport:
    """All findings of one analysis, with convenience predicates."""

    findings: List[RaceFinding] = dataclasses.field(default_factory=list)
    records_analyzed: int = 0
    truncated: bool = False

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_scope(self) -> Dict[str, int]:
        out: Dict[str, int] = defaultdict(int)
        for f in self.findings:
            out[f.scope] += 1
        return dict(out)

    def assert_clean(self) -> None:
        """Raise ``AssertionError`` listing findings unless clean."""
        if self.findings:
            listing = "\n".join(str(f) for f in self.findings[:10])
            raise AssertionError(
                f"{len(self.findings)} race(s) detected:\n{listing}"
            )


def _conflicts(op_a: str, op_b: str) -> bool:
    """Do two same-address unordered accesses constitute a race?"""
    write_a = op_a in ("GST", "SST", "ATOM")
    write_b = op_b in ("GST", "SST", "ATOM")
    if not (write_a or write_b):
        return False  # read/read is fine
    if op_a == "ATOM" and op_b == "ATOM":
        return False  # atomics serialize against each other
    return True


def check_races(tracer: Tracer, *, max_findings: int = 100) -> MemcheckReport:
    """Analyze a trace for intra-block and cross-block races."""
    report = MemcheckReport(records_analyzed=len(tracer.records),
                            truncated=tracer.overflowed)

    def add(finding: RaceFinding) -> bool:
        """Append; returns False when the findings budget is exhausted."""
        if len(report.findings) >= max_findings:
            report.truncated = True
            return False
        report.findings.append(finding)
        return True

    # ---- intra-block ---------------------------------------------------
    # Key: (kernel, block, space, epoch, address) -> [(warp, op), ...]
    per_key: Dict[Tuple, List[Tuple]] = defaultdict(list)
    for rec in tracer.records:
        for addr in rec.addresses:
            per_key[(rec.kernel, rec.block, rec.space, rec.epoch, addr)].append(
                (rec.warp_index, rec.op)
            )
    for (kernel, block, _space, _epoch, addr), touches in per_key.items():
        if len({w for w, _ in touches}) < 2:
            continue  # single warp -> lock-step ordered
        done = False
        for i in range(len(touches)):
            if done:
                break
            for j in range(i + 1, len(touches)):
                (wa, oa), (wb, ob) = touches[i], touches[j]
                if wa != wb and _conflicts(oa, ob):
                    if not add(RaceFinding(
                        scope="intra-block", kernel=kernel, address=addr,
                        first=(block, wa, oa), second=(block, wb, ob),
                    )):
                        return report
                    done = True
                    break

    # ---- cross-block (global space only) --------------------------------
    # First writer per (kernel, address); reads tracked alongside.
    first_writer: Dict[Tuple, Tuple] = {}
    first_reader: Dict[Tuple, Tuple] = {}
    for rec in tracer.records:
        if rec.space != "global":
            continue
        party = (rec.block, rec.warp_index, rec.op)
        for addr in rec.addresses:
            key = (rec.kernel, addr)
            if rec.is_write:
                writer = first_writer.get(key)
                if (writer is not None and writer[0] != rec.block
                        and _conflicts(writer[2], rec.op)):
                    if not add(RaceFinding(
                        scope="cross-block", kernel=rec.kernel, address=addr,
                        first=writer, second=party,
                    )):
                        return report
                    continue
                reader = first_reader.get(key)
                if (reader is not None and reader[0] != rec.block
                        and _conflicts(reader[2], rec.op)):
                    if not add(RaceFinding(
                        scope="cross-block", kernel=rec.kernel, address=addr,
                        first=reader, second=party,
                    )):
                        return report
                first_writer.setdefault(key, party)
            else:
                writer = first_writer.get(key)
                if (writer is not None and writer[0] != rec.block
                        and _conflicts(writer[2], rec.op)):
                    if not add(RaceFinding(
                        scope="cross-block", kernel=rec.kernel, address=addr,
                        first=writer, second=party,
                    )):
                        return report
                first_reader.setdefault(key, party)
    return report
