"""Reusable device-kernel primitives for the simulator.

The building blocks every CUDA sorting paper leans on — block-wide
reduction, block-wide prefix scan (the Harris/Sengupta/Owens scan the
paper cites as [17]), grid-stride copy, and a block histogram — written
as lock-step generator kernels against the :mod:`repro.gpusim` thread
API.

They serve three purposes:

* substrate completeness: GPU-ArraySort's phase 2 needs an exclusive
  scan of bucket counts; the production variant is here (the
  paper-faithful kernel uses the single-thread scan its text describes);
* executor validation: these primitives have closed-form answers and
  known hardware behaviour (a conflict-free scan vs a naive one), so
  they double as acceptance tests of the warp/coalescing machinery;
* pedagogy: examples/device_profiling.py can show real primitives.

Each primitive has a host-side ``run_*`` wrapper that launches it and
returns the result.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .executor import GpuDevice
from .profiler import LaunchReport

__all__ = [
    "block_reduce_kernel",
    "block_scan_kernel",
    "grid_stride_copy_kernel",
    "block_histogram_kernel",
    "run_reduce",
    "run_scan",
    "run_copy",
    "run_histogram",
]


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------

def block_reduce_kernel(ctx, shared, data, out, n):
    """Tree reduction (sum) of one block's segment into ``out[block]``.

    Each block owns ``block_dim`` elements starting at
    ``block_idx * block_dim``; lanes beyond ``n`` contribute zero.  The
    classic shared-memory tree: halving strides, one sync per level.
    """
    tid = ctx.thread_idx.x
    width = ctx.block_dim.x
    gid = ctx.block_idx.x * width + tid

    if gid < n:
        v = yield ctx.gload(data, gid)
    else:
        v = 0.0
    yield ctx.sstore(shared, tid, v)
    yield ctx.sync()

    stride = width // 2
    while stride >= 1:
        if tid < stride:
            a = yield ctx.sload(shared, tid)
            b = yield ctx.sload(shared, tid + stride)
            yield ctx.alu(1)
            yield ctx.sstore(shared, tid, a + b)
        yield ctx.sync()
        stride //= 2

    if tid == 0:
        total = yield ctx.sload(shared, 0)
        yield ctx.gstore(out, ctx.block_idx.x, total)


def block_scan_kernel(ctx, shared, data, out, n, exclusive):
    """Hillis-Steele inclusive/exclusive prefix scan over one block.

    Doubling strides, double-buffered in shared memory (the buffer is
    2x block width).  This is the scan primitive of the paper's ref
    [17] (Harris et al., "Parallel prefix sum (scan) with CUDA").
    """
    tid = ctx.thread_idx.x
    width = ctx.block_dim.x
    gid = ctx.block_idx.x * width + tid

    if gid < n:
        v = yield ctx.gload(data, gid)
    else:
        v = 0.0
    buf = 0
    yield ctx.sstore(shared, buf * width + tid, v)
    yield ctx.sync()

    stride = 1
    while stride < width:
        src, dst = buf, 1 - buf
        cur = yield ctx.sload(shared, src * width + tid)
        if tid >= stride:
            prev = yield ctx.sload(shared, src * width + tid - stride)
            yield ctx.alu(1)
            cur = cur + prev
        yield ctx.sstore(shared, dst * width + tid, cur)
        yield ctx.sync()
        buf = dst
        stride *= 2

    result = yield ctx.sload(shared, buf * width + tid)
    if exclusive:
        if tid == 0:
            result = 0.0
        else:
            result = yield ctx.sload(shared, buf * width + tid - 1)
    if gid < n:
        yield ctx.gstore(out, gid, result)


def grid_stride_copy_kernel(ctx, shared, src, dst, n):
    """The canonical grid-stride loop: each thread copies elements
    ``gid, gid + total_threads, ...`` — perfectly coalesced at any n."""
    total = ctx.grid_dim.x * ctx.block_dim.x
    gid = ctx.block_idx.x * ctx.block_dim.x + ctx.thread_idx.x
    i = gid
    while i < n:
        v = yield ctx.gload(src, i)
        yield ctx.gstore(dst, i, v)
        i += total


def block_histogram_kernel(ctx, shared, data, hist, n, num_bins, lo, width):
    """Shared-memory histogram with atomic bin updates, merged to global.

    Each block histograms its segment into a shared-memory array with
    ``atomic_add`` (bank collisions modeled), then lane-striped threads
    merge into the global histogram atomically — the standard two-level
    pattern.
    """
    tid = ctx.thread_idx.x
    bdim = ctx.block_dim.x
    gid = ctx.block_idx.x * bdim + tid

    for b in range(tid, num_bins, bdim):
        yield ctx.sstore(shared, b, 0)
    yield ctx.sync()

    i = gid
    total = ctx.grid_dim.x * bdim
    while i < n:
        v = yield ctx.gload(data, i)
        yield ctx.alu(2)
        bin_idx = int((v - lo) / width)
        if bin_idx < 0:
            bin_idx = 0
        elif bin_idx >= num_bins:
            bin_idx = num_bins - 1
        yield ctx.atomic_add(shared, bin_idx, 1)
        i += total
    yield ctx.sync()

    for b in range(tid, num_bins, bdim):
        count = yield ctx.sload(shared, b)
        if count:
            yield ctx.atomic_add(hist, b, int(count))


# ---------------------------------------------------------------------------
# host wrappers
# ---------------------------------------------------------------------------

def _pow2_at_least(x: int) -> int:
    p = 1
    while p < x:
        p *= 2
    return p


def run_reduce(device: GpuDevice, host: np.ndarray,
               block: int = 64) -> Tuple[float, LaunchReport]:
    """Sum a host array on the device; returns (sum, report)."""
    host = np.asarray(host, dtype=np.float64).ravel()
    n = host.size
    if n == 0:
        raise ValueError("cannot reduce an empty array")
    block = _pow2_at_least(min(block, device.spec.max_threads_per_block))
    grid = -(-n // block)
    data = device.memory.alloc_like(host)
    partial = device.memory.alloc(grid, np.float64)
    try:
        report = device.launch(
            block_reduce_kernel, grid=grid, block=block, args=(data, partial, n),
            shared_setup=lambda sm: sm.alloc(block, np.float64),
        )
        total = float(partial.copy_to_host().sum())
    finally:
        device.memory.free(data)
        device.memory.free(partial)
    return total, report


def run_scan(device: GpuDevice, host: np.ndarray, *, exclusive: bool = False,
             block: Optional[int] = None) -> Tuple[np.ndarray, LaunchReport]:
    """Prefix-scan a host array that fits one block; returns (scan, report)."""
    host = np.asarray(host, dtype=np.float64).ravel()
    n = host.size
    if n == 0:
        return host.copy(), None  # type: ignore[return-value]
    width = block or _pow2_at_least(n)
    if width > device.spec.max_threads_per_block:
        raise ValueError(
            f"single-block scan limited to {device.spec.max_threads_per_block} "
            f"elements on this device, got {n}"
        )
    data = device.memory.alloc_like(host)
    out = device.memory.alloc(n, np.float64)
    try:
        report = device.launch(
            block_scan_kernel, grid=1, block=width,
            args=(data, out, n, exclusive),
            shared_setup=lambda sm: sm.alloc(2 * width, np.float64),
        )
        result = out.copy_to_host()
    finally:
        device.memory.free(data)
        device.memory.free(out)
    return result, report


def run_copy(device: GpuDevice, host: np.ndarray, *, grid: int = 4,
             block: int = 64) -> Tuple[np.ndarray, LaunchReport]:
    """Round-trip a host array through the grid-stride copy kernel."""
    host = np.asarray(host).ravel()
    src = device.memory.alloc_like(host)
    dst = device.memory.alloc(host.size, host.dtype)
    try:
        report = device.launch(
            grid_stride_copy_kernel, grid=grid, block=block,
            args=(src, dst, host.size),
        )
        out = dst.copy_to_host()
    finally:
        device.memory.free(src)
        device.memory.free(dst)
    return out, report


def run_histogram(device: GpuDevice, host: np.ndarray, num_bins: int,
                  *, lo: Optional[float] = None, hi: Optional[float] = None,
                  grid: int = 2, block: int = 32) -> Tuple[np.ndarray, LaunchReport]:
    """Histogram a host array on the device; returns (counts, report)."""
    host = np.asarray(host, dtype=np.float64).ravel()
    if host.size == 0 or num_bins < 1:
        raise ValueError("need data and at least one bin")
    lo = float(host.min() if lo is None else lo)
    hi = float(host.max() if hi is None else hi)
    width = (hi - lo) / num_bins if hi > lo else 1.0
    data = device.memory.alloc_like(host)
    hist = device.memory.alloc(num_bins, np.int64)
    hist.fill(0)
    try:
        report = device.launch(
            block_histogram_kernel, grid=grid, block=block,
            args=(data, hist, host.size, num_bins, lo, width),
            shared_setup=lambda sm: sm.alloc(num_bins, np.int64),
        )
        counts = hist.copy_to_host()
    finally:
        device.memory.free(data)
        device.memory.free(hist)
    return counts, report
