"""Launch reports: what the profiler would tell you about a kernel run.

A :class:`LaunchReport` aggregates per-warp statistics (transactions,
divergence, bank conflicts, ALU ops) and the timing model's roll-up into
the numbers the paper's Section 3 cares about: coalescing efficiency,
branch divergence, shared-vs-global traffic, and modeled milliseconds.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from .occupancy import Occupancy
from .timing import LaunchTiming
from .warp import WarpStats

__all__ = ["LaunchReport", "PipelineReport"]


@dataclasses.dataclass
class LaunchReport:
    """Everything observed about one kernel launch."""

    kernel_name: str
    grid_blocks: int
    threads_per_block: int
    occupancy: Occupancy
    timing: LaunchTiming
    warp_stats: List[WarpStats] = dataclasses.field(default_factory=list)

    # -- aggregates -------------------------------------------------------
    @property
    def total_global_transactions(self) -> int:
        return sum(w.global_transactions for w in self.warp_stats)

    @property
    def total_global_bytes(self) -> int:
        return sum(w.global_bytes for w in self.warp_stats)

    @property
    def total_shared_accesses(self) -> int:
        return sum(w.shared_accesses for w in self.warp_stats)

    @property
    def total_bank_conflicts(self) -> int:
        return sum(w.bank_conflict_replays for w in self.warp_stats)

    @property
    def total_divergent_steps(self) -> int:
        return sum(w.divergent_steps for w in self.warp_stats)

    @property
    def total_atomic_ops(self) -> int:
        return sum(w.atomic_ops for w in self.warp_stats)

    @property
    def total_atomic_serializations(self) -> int:
        """Replays caused by same-address atomic collisions — the cost
        the paper's one-thread-per-bucket design avoids entirely."""
        return sum(w.atomic_serializations for w in self.warp_stats)

    @property
    def total_steps(self) -> int:
        return sum(w.steps for w in self.warp_stats)

    @property
    def divergence_fraction(self) -> float:
        """Fraction of warp steps that had to serialize divergent paths."""
        steps = self.total_steps
        return self.total_divergent_steps / steps if steps else 0.0

    @property
    def coalescing_efficiency(self) -> float:
        """Bytes requested / bytes moved by transactions (1.0 = perfect).

        A fully scattered warp access moves a 128-byte line per lane for 4
        useful bytes, scoring 1/32.
        """
        txns = self.total_global_transactions
        if txns == 0:
            return 1.0
        device = self.timing.device
        moved = txns * device.transaction_bytes
        return min(1.0, self.total_global_bytes / moved)

    @property
    def milliseconds(self) -> float:
        return self.timing.milliseconds

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline metrics, handy for tables and asserts."""
        return {
            "kernel": self.kernel_name,
            "blocks": self.grid_blocks,
            "threads_per_block": self.threads_per_block,
            "concurrent_blocks": self.occupancy.concurrent_blocks,
            "waves": self.timing.waves,
            "cycles": self.timing.total_cycles,
            "ms": self.milliseconds,
            "global_transactions": self.total_global_transactions,
            "global_bytes": self.total_global_bytes,
            "shared_accesses": self.total_shared_accesses,
            "bank_conflicts": self.total_bank_conflicts,
            "divergence_fraction": self.divergence_fraction,
            "coalescing_efficiency": self.coalescing_efficiency,
        }


@dataclasses.dataclass
class PipelineReport:
    """Roll-up across the launches of a multi-kernel algorithm.

    GPU-ArraySort runs three kernels back to back; STA runs tag setup plus
    two radix-sort sequences.  Total modeled time is the sum of launch
    times (kernel launches on one stream serialize).
    """

    launches: List[LaunchReport] = dataclasses.field(default_factory=list)

    def add(self, report: LaunchReport) -> None:
        self.launches.append(report)

    @property
    def milliseconds(self) -> float:
        return sum(l.milliseconds for l in self.launches)

    @property
    def total_global_transactions(self) -> int:
        return sum(l.total_global_transactions for l in self.launches)

    @property
    def divergence_fraction(self) -> float:
        steps = sum(l.total_steps for l in self.launches)
        if not steps:
            return 0.0
        return sum(l.total_divergent_steps for l in self.launches) / steps

    def by_kernel(self) -> Dict[str, float]:
        """Modeled milliseconds per kernel name (phases of the algorithm)."""
        out: Dict[str, float] = {}
        for launch in self.launches:
            out[launch.kernel_name] = out.get(launch.kernel_name, 0.0) + launch.milliseconds
        return out
