"""Device models for the GPU simulator.

A :class:`DeviceSpec` captures the handful of hardware parameters that the
paper's performance argument actually rests on: number of streaming
multiprocessors, CUDA cores per SM, global-memory capacity, per-block shared
memory, warp width, and the clock/latency figures used by the timing model.

The catalog ships the NVIDIA Tesla K40c used in the paper's evaluation
(15 SMs x 192 cores = 2880 CUDA cores, 11520 MB global memory, 48 KB shared
memory per block) plus a couple of other generations so tests and ablations
can vary the hardware envelope.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

__all__ = ["DeviceSpec", "DEVICE_CATALOG", "get_device", "K40C"]

#: Bytes in one MiB; device memory sizes are quoted in MiB like nvidia-smi.
MIB = 1024 * 1024


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """Immutable description of a simulated CUDA device.

    Parameters mirror ``cudaDeviceProp`` fields where a direct analog
    exists.  All sizes are bytes unless noted.
    """

    name: str
    #: Streaming multiprocessors on the device.
    sm_count: int
    #: CUDA cores per SM (192 for Kepler SMX).
    cores_per_sm: int
    #: Total global (device) memory in bytes.
    global_mem_bytes: int
    #: Shared memory available to one block, in bytes (48 KB on Kepler).
    shared_mem_per_block: int
    #: Threads per warp; 32 on every NVIDIA architecture to date.
    warp_size: int = 32
    #: Hardware limit on threads per block.
    max_threads_per_block: int = 1024
    #: Hardware limit on resident threads per SM.
    max_threads_per_sm: int = 2048
    #: Hardware limit on resident blocks per SM.
    max_blocks_per_sm: int = 16
    #: Maximum x-dimension of a grid (Kepler: 2^31-1).
    max_grid_dim_x: int = 2**31 - 1
    #: Core clock in MHz.  K40c base clock is 745 MHz.
    clock_mhz: float = 745.0
    #: Global-memory latency in cycles (Kepler ~ 400-600; we use the middle).
    global_latency_cycles: float = 500.0
    #: Shared-memory latency in cycles.  The paper's Section 3.3 uses the
    #: common "about 100x faster than global" rule; ~5 cycles vs ~500.
    shared_latency_cycles: float = 5.0
    #: Width of one coalesced global-memory transaction, bytes (128B line).
    transaction_bytes: int = 128
    #: Peak global-memory bandwidth in GB/s (K40c: 288 GB/s).
    mem_bandwidth_gbps: float = 288.0
    #: Fraction of global memory usable by an application after the CUDA
    #: context, ECC parity, and allocator overheads take their cut.
    #: Calibrated once against the paper's Table 1 (see
    #: repro.analysis.memory_model): 0.73 of the K40c's 11 520 MiB
    #: reproduces 7 of the 8 published capacity cells exactly at the
    #: paper's 50 000-array probing granularity, the eighth within one
    #: step.  ECC alone costs ~6.25 % on Kepler; context + fragmentation
    #: slack plausibly account for the rest.
    usable_mem_fraction: float = 0.73

    @property
    def cuda_cores(self) -> int:
        """Total CUDA cores on the device (``sm_count * cores_per_sm``)."""
        return self.sm_count * self.cores_per_sm

    @property
    def usable_global_mem_bytes(self) -> int:
        """Global memory available to allocations, after runtime overheads."""
        return int(self.global_mem_bytes * self.usable_mem_fraction)

    @property
    def warps_per_block_limit(self) -> int:
        """Maximum warps a single block may contain."""
        return self.max_threads_per_block // self.warp_size

    @property
    def clock_hz(self) -> float:
        """Core clock in Hz."""
        return self.clock_mhz * 1e6

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert a cycle count into modeled milliseconds at base clock."""
        return cycles / self.clock_hz * 1e3

    def validate(self) -> None:
        """Raise ``ValueError`` if the spec is internally inconsistent."""
        if self.sm_count <= 0 or self.cores_per_sm <= 0:
            raise ValueError("SM and core counts must be positive")
        if self.warp_size <= 0 or self.max_threads_per_block % self.warp_size:
            raise ValueError(
                "max_threads_per_block must be a positive multiple of warp_size"
            )
        if self.global_mem_bytes <= 0 or self.shared_mem_per_block <= 0:
            raise ValueError("memory sizes must be positive")
        if not 0.0 < self.usable_mem_fraction <= 1.0:
            raise ValueError("usable_mem_fraction must be in (0, 1]")


#: The device used for every experiment in the paper (Section 7.2).
K40C = DeviceSpec(
    name="Tesla K40c",
    sm_count=15,
    cores_per_sm=192,
    global_mem_bytes=11520 * MIB,
    shared_mem_per_block=48 * 1024,
)

#: A Fermi-generation card: the paper's Section 3 mentions compute
#: capability 2.0 devices with 48 KB shared memory and far fewer cores.
C2050 = DeviceSpec(
    name="Tesla C2050",
    sm_count=14,
    cores_per_sm=32,
    global_mem_bytes=3 * 1024 * MIB,
    shared_mem_per_block=48 * 1024,
    max_threads_per_sm=1536,
    max_blocks_per_sm=8,
    clock_mhz=1150.0,
    mem_bandwidth_gbps=144.0,
)

#: Dual-GPU board of the same Kepler generation; one logical device here
#: (the paper's single-GPU setting), useful as a "slightly bigger K40".
K80 = DeviceSpec(
    name="Tesla K80 (one GK210)",
    sm_count=13,
    cores_per_sm=192,
    global_mem_bytes=12 * 1024 * MIB,
    shared_mem_per_block=48 * 1024,
    clock_mhz=560.0,
    mem_bandwidth_gbps=240.0,
)

#: A Pascal-generation data-center card: what a 2016 reader would have
#: upgraded to.  More SMs of fewer cores, much more bandwidth.
P100 = DeviceSpec(
    name="Tesla P100",
    sm_count=56,
    cores_per_sm=64,
    global_mem_bytes=16 * 1024 * MIB,
    shared_mem_per_block=48 * 1024,
    max_blocks_per_sm=32,
    clock_mhz=1328.0,
    global_latency_cycles=400.0,
    mem_bandwidth_gbps=732.0,
)

#: A deliberately tiny device for fast exhaustive simulator tests.
MICRO = DeviceSpec(
    name="MicroSim",
    sm_count=2,
    cores_per_sm=32,
    global_mem_bytes=8 * MIB,
    shared_mem_per_block=16 * 1024,
    max_threads_per_block=256,
    max_threads_per_sm=512,
    max_blocks_per_sm=4,
    clock_mhz=1000.0,
    mem_bandwidth_gbps=32.0,
)

DEVICE_CATALOG: Dict[str, DeviceSpec] = {
    "k40c": K40C,
    "k80": K80,
    "p100": P100,
    "c2050": C2050,
    "micro": MICRO,
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device by catalog key (case-insensitive).

    >>> get_device("K40C").cuda_cores
    2880
    """
    try:
        spec = DEVICE_CATALOG[name.lower()]
    except KeyError:
        known = ", ".join(sorted(DEVICE_CATALOG))
        raise KeyError(f"unknown device {name!r}; known devices: {known}") from None
    spec.validate()
    return spec
