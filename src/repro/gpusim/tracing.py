"""Memory-access tracing: step-level records of what kernels touch.

The launch reports aggregate (transactions, divergence); a trace keeps
the *sequence* — one record per warp step with the op kind, the lane
addresses, and the resulting transaction count.  Uses:

* debugging kernels (why is this step 32 transactions?),
* asserting access-pattern properties in tests (e.g. "phase 2's staging
  loads are unit-stride"),
* producing the pattern histograms in ``examples/device_profiling.py``.

Tracing is opt-in (``GpuDevice.launch(..., trace=Tracer())``) because
retaining every step of a big launch is memory-heavy.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, List, Optional, Tuple

from .coalescing import classify_pattern, coalesce_transactions

__all__ = ["AccessRecord", "Tracer"]


@dataclasses.dataclass(frozen=True)
class AccessRecord:
    """One warp-step memory access."""

    kernel: str
    block: Tuple[int, int, int]
    warp_index: int
    step: int
    op: str                      # GLD / GST / SLD / SST / ATOM
    addresses: Tuple[int, ...]
    transactions: int
    #: Barrier epoch: how many __syncthreads() the issuing warp had
    #: passed.  Accesses in different epochs of one block are ordered;
    #: same-epoch accesses from different warps are concurrent (the
    #: race-detection granularity of repro.gpusim.memcheck).
    epoch: int = 0
    #: "global" or "shared" -- which arena the addresses index into.
    space: str = "global"

    @property
    def pattern(self) -> str:
        return classify_pattern(self.addresses)

    @property
    def is_write(self) -> bool:
        return self.op in ("GST", "SST", "ATOM")


class Tracer:
    """Collects :class:`AccessRecord` objects across launches.

    Bounded by ``max_records``; when full, further records are dropped
    and :attr:`overflowed` flips (silent truncation would make pattern
    statistics lie).
    """

    def __init__(self, max_records: int = 100_000) -> None:
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.max_records = max_records
        self.records: List[AccessRecord] = []
        self.overflowed = False

    # -- recording (called by the warp executor) -----------------------------
    def record(
        self,
        kernel: str,
        block: Tuple[int, int, int],
        warp_index: int,
        step: int,
        op: str,
        addresses: List[int],
        transaction_bytes: int,
        epoch: int = 0,
        space: str = "global",
    ) -> None:
        if len(self.records) >= self.max_records:
            self.overflowed = True
            return
        self.records.append(
            AccessRecord(
                kernel=kernel,
                block=block,
                warp_index=warp_index,
                step=step,
                op=op,
                addresses=tuple(int(a) for a in addresses),
                transactions=coalesce_transactions(addresses, transaction_bytes),
                epoch=epoch,
                space=space,
            )
        )

    # -- queries ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def by_op(self) -> Dict[str, int]:
        """Record counts per opcode."""
        return dict(Counter(r.op for r in self.records))

    def pattern_histogram(self, op: Optional[str] = None) -> Dict[str, int]:
        """How many accesses were coalesced / strided / scattered."""
        records = self.records if op is None else [
            r for r in self.records if r.op == op
        ]
        return dict(Counter(r.pattern for r in records))

    def worst_accesses(self, k: int = 5) -> List[AccessRecord]:
        """The k accesses needing the most transactions."""
        return sorted(self.records, key=lambda r: -r.transactions)[:k]

    def transactions_for(self, kernel: str) -> int:
        """Total traced global transactions for one kernel name."""
        return sum(
            r.transactions for r in self.records
            if r.kernel == kernel and r.op in ("GLD", "GST")
        )

    def clear(self) -> None:
        self.records.clear()
        self.overflowed = False
