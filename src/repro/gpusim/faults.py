"""Deterministic fault injection for the simulator.

Long-running acquisition deployments (the paper's Section 8 pitch) see
transient device faults as a matter of course: a kernel launch that
times out, an allocator briefly starved by a co-tenant, an ECC event
flipping a bit of an output buffer.  Real hardware makes those faults
non-reproducible; the simulator can do better.  A :class:`FaultPlan` is
a *seed-driven schedule* of faults that the :class:`~repro.gpusim.executor.GpuDevice`
(and the resilience layer above it) consults on every launch, so a
robustness scenario — "20 % transient kernel-fault rate, an OOM
pressure window over launches 10-20, occasional row corruption" — is
byte-identical across reruns and therefore testable.

Every decision is keyed by ``(seed, stream, launch_index)`` through a
counter-based RNG, so decisions are independent of query order: the
only mutable state is the monotonically increasing launch counter.

Three fault classes are modeled:

* **transient kernel faults** — the launch raises
  :class:`~repro.gpusim.errors.KernelFault` (a retry may succeed);
* **OOM-pressure windows** — launches inside configured
  ``[start, stop)`` launch-index windows raise
  :class:`~repro.gpusim.errors.DeviceOutOfMemoryError`, modeling a
  co-tenant temporarily starving the allocator;
* **ECC-style corruption** — after a "successful" launch, one element
  of the output buffer gets a bit flipped (exponent bit for floats, so
  the damage is large and detectable — silent small perturbations are a
  different threat model).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from .errors import DeviceOutOfMemoryError, KernelFault

__all__ = ["FaultPlan", "FaultStats"]

# RNG stream salts: one independent decision stream per fault class.
_STREAM_KERNEL_FAULT = 1
_STREAM_CORRUPT_DECISION = 2
_STREAM_CORRUPT_POSITION = 3


@dataclasses.dataclass
class FaultStats:
    """Counters of what a :class:`FaultPlan` actually injected."""

    launches_seen: int = 0
    kernel_faults: int = 0
    oom_faults: int = 0
    rows_corrupted: int = 0

    @property
    def total_faults(self) -> int:
        return self.kernel_faults + self.oom_faults + self.rows_corrupted

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


class FaultPlan:
    """A deterministic, seed-driven schedule of injected device faults.

    Parameters
    ----------
    seed:
        Master seed.  Two plans with the same seed and rates inject the
        identical fault sequence.
    kernel_fault_rate:
        Per-launch probability of a transient :class:`KernelFault`.
    oom_windows:
        Iterable of ``(start, stop)`` half-open launch-index ranges; any
        launch whose index falls inside a window raises
        :class:`DeviceOutOfMemoryError`.
    corruption_rate:
        Per-launch probability that one element of the output buffer is
        bit-flipped after the launch completes.

    A plan can be consulted at two altitudes, but use only one per plan
    instance (each consultation consumes a launch index):

    * attached to a :class:`~repro.gpusim.executor.GpuDevice`
      (``GpuDevice(..., fault_plan=plan)``) — every kernel launch is one
      fault opportunity;
    * held by a :class:`repro.resilience.ResilientSorter` — every sort
      *attempt* is one fault opportunity, uniformly across engines.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        kernel_fault_rate: float = 0.0,
        oom_windows: Iterable[Tuple[int, int]] = (),
        corruption_rate: float = 0.0,
    ) -> None:
        for name, rate in (
            ("kernel_fault_rate", kernel_fault_rate),
            ("corruption_rate", corruption_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        windows = []
        for window in oom_windows:
            start, stop = int(window[0]), int(window[1])
            if start < 0 or stop < start:
                raise ValueError(f"bad OOM window [{start}, {stop})")
            windows.append((start, stop))
        self.seed = int(seed)
        self.kernel_fault_rate = float(kernel_fault_rate)
        self.corruption_rate = float(corruption_rate)
        self.oom_windows: Tuple[Tuple[int, int], ...] = tuple(windows)
        self.stats = FaultStats()
        self._launch_index = 0

    # -- deterministic decision streams ------------------------------------
    def _rng(self, stream: int, launch_index: int) -> np.random.Generator:
        return np.random.default_rng([self.seed, stream, launch_index])

    def _unit(self, stream: int, launch_index: int) -> float:
        return float(self._rng(stream, launch_index).random())

    def _in_oom_window(self, launch_index: int) -> bool:
        return any(start <= launch_index < stop for start, stop in self.oom_windows)

    # -- consultation API --------------------------------------------------
    @property
    def next_launch_index(self) -> int:
        """The launch index the next :meth:`begin_launch` will consume."""
        return self._launch_index

    def begin_launch(self, name: str = "kernel") -> int:
        """Consume one launch index; raise the fault scheduled for it.

        Returns the launch index (pass it to :meth:`corrupt_rows` /
        :meth:`corrupt_flat` after the launch completes).  Raises
        :class:`DeviceOutOfMemoryError` inside an OOM window, or
        :class:`KernelFault` when the per-launch draw comes up faulty.
        """
        index = self._launch_index
        self._launch_index += 1
        self.stats.launches_seen += 1
        if self._in_oom_window(index):
            self.stats.oom_faults += 1
            raise DeviceOutOfMemoryError(0, 0, 0)
        if (
            self.kernel_fault_rate > 0.0
            and self._unit(_STREAM_KERNEL_FAULT, index) < self.kernel_fault_rate
        ):
            self.stats.kernel_faults += 1
            raise KernelFault(
                f"injected transient fault ({name}, launch {index})",
                block=(-1,),
                thread=(-1,),
            )
        return index

    def begin_trusted_launch(self, name: str = "host") -> int:
        """Consume one launch index without raising device-side faults.

        The resilience layer uses this for its host-side ``np.sort``
        last resort: transient kernel faults and OOM windows model
        *device* events and must not make the last resort unreliable,
        but the launch still advances the schedule and its output buffer
        remains eligible for :meth:`corrupt_rows` (memory corruption is
        not device-specific).
        """
        index = self._launch_index
        self._launch_index += 1
        self.stats.launches_seen += 1
        return index

    def corrupt_rows(self, batch: np.ndarray, launch_index: int) -> np.ndarray:
        """Maybe flip one bit of a 2-D output batch; returns corrupted rows.

        At most one element per launch is hit (an ECC event is rare and
        local); the returned int array holds the affected row indices,
        empty when the launch drew clean.
        """
        batch = np.asarray(batch)
        if (
            self.corruption_rate == 0.0
            or batch.size == 0
            or self._unit(_STREAM_CORRUPT_DECISION, launch_index)
            >= self.corruption_rate
        ):
            return np.empty(0, dtype=np.int64)
        rng = self._rng(_STREAM_CORRUPT_POSITION, launch_index)
        row = int(rng.integers(batch.shape[0]))
        col = int(rng.integers(batch.shape[1]))
        batch[row, col] = _flip_bit(batch[row, col], batch.dtype)
        self.stats.rows_corrupted += 1
        return np.array([row], dtype=np.int64)

    def corrupt_flat(self, arrays: Sequence, launch_index: int) -> Optional[int]:
        """Device-level variant: hit one element of one writable
        :class:`~repro.gpusim.memory.DeviceArray` among ``arrays``.

        Returns the element index corrupted, or ``None``.  Used by the
        executor after a launch so sim-engine pipelines see the same ECC
        model the host-level resilience layer does.
        """
        from .memory import DeviceArray

        candidates = [a for a in arrays if isinstance(a, DeviceArray) and len(a)]
        if (
            self.corruption_rate == 0.0
            or not candidates
            or self._unit(_STREAM_CORRUPT_DECISION, launch_index)
            >= self.corruption_rate
        ):
            return None
        rng = self._rng(_STREAM_CORRUPT_POSITION, launch_index)
        target = candidates[int(rng.integers(len(candidates)))]
        index = int(rng.integers(len(target)))
        target.store(index, _flip_bit(target.load(index), target.dtype))
        self.stats.rows_corrupted += 1
        return index

    def reset(self) -> None:
        """Rewind the launch counter and zero the stats (fresh replay)."""
        self._launch_index = 0
        self.stats = FaultStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(seed={self.seed}, "
            f"kernel_fault_rate={self.kernel_fault_rate}, "
            f"oom_windows={self.oom_windows}, "
            f"corruption_rate={self.corruption_rate})"
        )


def _flip_bit(value, dtype) -> object:
    """Flip one high bit of a scalar — an ECC double-bit-error stand-in.

    For floats the highest exponent bit is flipped, so the corrupted
    value differs wildly (possibly inf/NaN) and a verify pass can catch
    it; integers get their second-highest bit flipped (the sign bit
    would be UB-ish for unsigned).
    """
    dtype = np.dtype(dtype)
    scalar = np.array([value], dtype=dtype)
    if dtype.kind == "f":
        as_int = scalar.view({2: np.uint16, 4: np.uint32, 8: np.uint64}[dtype.itemsize])
        as_int[0] ^= np.array(1, as_int.dtype) << (8 * dtype.itemsize - 2)
    elif dtype.kind in "iu":
        scalar[0] ^= np.array(1, dtype) << (8 * dtype.itemsize - 2)
    else:  # booleans and friends: invert
        scalar[0] = not scalar[0]
    return scalar[0]
