"""CUDA streams, events, and copy engines — a discrete-event timeline.

The paper's Section 9 plan ("hides data transfer latencies in runtime")
is a streams-and-events program: H2D copies on one stream, kernels on
another, D2H on a third, ordered by events.  This module simulates that
scheduling layer:

* a :class:`SimTimeline` owns three engines (H2D copy, compute, D2H
  copy — Kepler's dual copy engines plus the SM array), each a resource
  that processes one operation at a time;
* :class:`Stream` issues operations in FIFO order (CUDA stream
  semantics): an op starts when (a) its stream's previous op finished,
  (b) its engine is free, and (c) every event it waits on has fired;
* :class:`SimEvent` records a completion instant
  (``cudaEventRecord`` / ``cudaStreamWaitEvent``).

The timeline computes start/finish instants for every op, so a
dual-buffered out-of-core schedule can be *constructed* (not just
summed) and its makespan, per-engine utilization, and critical path
inspected.  ``repro.core.pipeline`` offers a closed-form shortcut; this
is the general mechanism and is cross-checked against it in tests.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional

__all__ = ["EngineKind", "SimEvent", "SimOp", "Stream", "SimTimeline"]


class EngineKind:
    """The three hardware engines a Kepler-class device exposes."""

    H2D = "h2d"
    COMPUTE = "compute"
    D2H = "d2h"

    ALL = (H2D, COMPUTE, D2H)


@dataclasses.dataclass
class SimEvent:
    """A recordable marker; fires when the op it follows completes."""

    name: str = ""
    #: Set by the scheduler; None until the timeline is computed.
    fired_at_ms: Optional[float] = None


@dataclasses.dataclass
class SimOp:
    """One enqueued operation (copy or kernel)."""

    engine: str
    duration_ms: float
    label: str = ""
    waits_on: List[SimEvent] = dataclasses.field(default_factory=list)
    records: Optional[SimEvent] = None
    stream_name: str = ""
    #: Scheduler outputs.
    start_ms: float = 0.0
    finish_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.engine not in EngineKind.ALL:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose from {EngineKind.ALL}"
            )
        if self.duration_ms < 0:
            raise ValueError("duration must be >= 0")


class Stream:
    """A FIFO queue of operations, like ``cudaStream_t``."""

    _counter = itertools.count()

    def __init__(self, timeline: "SimTimeline", name: Optional[str] = None) -> None:
        self.timeline = timeline
        self.name = name or f"stream{next(self._counter)}"
        self.ops: List[SimOp] = []

    def enqueue(
        self,
        engine: str,
        duration_ms: float,
        *,
        label: str = "",
        waits_on: Optional[List[SimEvent]] = None,
        record: Optional[SimEvent] = None,
    ) -> SimOp:
        """Append an op; returns it (start/finish filled in by run())."""
        op = SimOp(
            engine=engine,
            duration_ms=float(duration_ms),
            label=label or f"{engine}#{len(self.ops)}",
            waits_on=list(waits_on or ()),
            records=record,
            stream_name=self.name,
        )
        self.ops.append(op)
        self.timeline._register(op)
        return op

    # Convenience wrappers matching the CUDA API shape.
    def copy_h2d(self, duration_ms: float, **kw) -> SimOp:
        return self.enqueue(EngineKind.H2D, duration_ms, **kw)

    def launch(self, duration_ms: float, **kw) -> SimOp:
        return self.enqueue(EngineKind.COMPUTE, duration_ms, **kw)

    def copy_d2h(self, duration_ms: float, **kw) -> SimOp:
        return self.enqueue(EngineKind.D2H, duration_ms, **kw)


class SimTimeline:
    """Schedules all enqueued ops and reports the resulting timeline."""

    def __init__(self) -> None:
        self._ops: List[SimOp] = []
        self._computed = False

    def stream(self, name: Optional[str] = None) -> Stream:
        return Stream(self, name)

    def event(self, name: str = "") -> SimEvent:
        return SimEvent(name=name)

    def _register(self, op: SimOp) -> None:
        self._ops.append(op)
        self._computed = False

    # -- scheduling -----------------------------------------------------
    def run(self) -> float:
        """Compute start/finish for every op; returns the makespan (ms).

        List scheduling in enqueue order with three constraints per op:
        stream FIFO, engine exclusivity, event waits.  Enqueue order is
        the tie-breaker, which matches the driver's submission order
        semantics closely enough for modeling.

        Raises ``ValueError`` if an op waits on an event that is never
        recorded by any earlier-scheduled op (a deadlock in real CUDA).
        """
        engine_free: Dict[str, float] = {k: 0.0 for k in EngineKind.ALL}
        stream_free: Dict[str, float] = {}
        makespan = 0.0
        for op in self._ops:
            earliest = max(
                engine_free[op.engine], stream_free.get(op.stream_name, 0.0)
            )
            for ev in op.waits_on:
                if ev.fired_at_ms is None:
                    raise ValueError(
                        f"op {op.label!r} waits on event {ev.name!r} that no "
                        "earlier op records (would deadlock)"
                    )
                earliest = max(earliest, ev.fired_at_ms)
            op.start_ms = earliest
            op.finish_ms = earliest + op.duration_ms
            engine_free[op.engine] = op.finish_ms
            stream_free[op.stream_name] = op.finish_ms
            if op.records is not None:
                op.records.fired_at_ms = op.finish_ms
            makespan = max(makespan, op.finish_ms)
        self._computed = True
        return makespan

    # -- reporting -------------------------------------------------------
    @property
    def ops(self) -> List[SimOp]:
        return list(self._ops)

    def makespan(self) -> float:
        if not self._computed:
            return self.run()
        return max((op.finish_ms for op in self._ops), default=0.0)

    def engine_busy_ms(self) -> Dict[str, float]:
        """Total busy time per engine (utilization numerator)."""
        busy = {k: 0.0 for k in EngineKind.ALL}
        for op in self._ops:
            busy[op.engine] += op.duration_ms
        return busy

    def utilization(self) -> Dict[str, float]:
        """Busy fraction per engine over the makespan."""
        total = self.makespan()
        if total == 0:
            return {k: 0.0 for k in EngineKind.ALL}
        return {k: v / total for k, v in self.engine_busy_ms().items()}


def build_double_buffered_schedule(
    timeline: SimTimeline,
    upload_ms: List[float],
    compute_ms: List[float],
    download_ms: List[float],
) -> float:
    """Construct the classic dual-buffer schedule and return its makespan.

    Chunk ``i``'s compute waits on its upload; its download waits on its
    compute; copies and kernels ride separate streams so the engines
    overlap across chunks — the schedule the paper's Section 9 sketches.
    """
    k = len(compute_ms)
    if not (len(upload_ms) == len(download_ms) == k):
        raise ValueError("stage lists must have equal length")
    up_stream = timeline.stream("h2d")
    kern_stream = timeline.stream("kernels")
    down_stream = timeline.stream("d2h")
    for i in range(k):
        uploaded = timeline.event(f"up{i}")
        computed = timeline.event(f"comp{i}")
        up_stream.copy_h2d(upload_ms[i], label=f"H2D chunk{i}", record=uploaded)
        kern_stream.launch(
            compute_ms[i], label=f"sort chunk{i}",
            waits_on=[uploaded], record=computed,
        )
        down_stream.copy_d2h(
            download_ms[i], label=f"D2H chunk{i}", waits_on=[computed]
        )
    return timeline.run()
