"""Simulated device memories.

Two memory spaces matter to GPU-ArraySort:

* **Global memory** — the multi-GB device DRAM.  We model it as a byte-
  addressed arena with a bump-pointer allocator, free-list reuse, byte
  accounting (this drives the Table 1 capacity experiment), and typed
  array views handed back to kernels.
* **Shared memory** — the 48 KB per-block scratchpad.  Each simulated block
  gets a private :class:`SharedMemory` sized by the launch config; the
  executor recreates it per block, matching CUDA lifetime rules.

Allocations return :class:`DeviceArray`, a thin typed window over the arena.
Kernels address device arrays by element index; the coalescing analyzer
converts element indices into byte addresses using the array's base offset,
so warp access patterns map onto realistic 128-byte transaction tiles.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from .device import DeviceSpec
from .errors import (
    AllocationError,
    DeviceOutOfMemoryError,
    MemoryAccessError,
    SharedMemoryExceededError,
)

__all__ = ["DeviceArray", "GlobalMemory", "SharedMemory", "MemoryStats"]

#: Allocation granularity of the global allocator, bytes.  The CUDA
#: allocator aligns to at least 256 bytes; matching it keeps our footprint
#: accounting honest for many small allocations.
ALLOC_ALIGN = 256


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


@dataclasses.dataclass
class MemoryStats:
    """Running counters for a :class:`GlobalMemory` arena."""

    total_bytes: int
    allocated_bytes: int = 0
    peak_bytes: int = 0
    allocation_count: int = 0
    free_count: int = 0
    failed_allocations: int = 0

    @property
    def free_bytes(self) -> int:
        return self.total_bytes - self.allocated_bytes


class DeviceArray:
    """A typed 1-D window into a simulated memory arena.

    Supports the small surface kernels need — indexed load/store and bulk
    host<->device copies — while tracking its base byte offset so access
    patterns can be analyzed at the transaction level.
    """

    def __init__(
        self,
        backing: np.ndarray,
        byte_offset: int,
        length: int,
        dtype: np.dtype,
        space: str,
        name: str = "",
    ) -> None:
        self._dtype = np.dtype(dtype)
        self._byte_offset = int(byte_offset)
        self._length = int(length)
        self._space = space
        self._name = name or f"{space}@{byte_offset}"
        nbytes = self._length * self._dtype.itemsize
        self._view = backing[byte_offset : byte_offset + nbytes].view(self._dtype)
        self._freed = False

    # -- metadata ---------------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def itemsize(self) -> int:
        return self._dtype.itemsize

    def __len__(self) -> int:
        return self._length

    @property
    def nbytes(self) -> int:
        return self._length * self._dtype.itemsize

    @property
    def byte_offset(self) -> int:
        """Base byte address of element 0 inside the arena."""
        return self._byte_offset

    @property
    def space(self) -> str:
        """``"global"`` or ``"shared"``."""
        return self._space

    @property
    def name(self) -> str:
        return self._name

    def address_of(self, index: int) -> int:
        """Byte address of ``self[index]`` inside the arena."""
        return self._byte_offset + index * self._dtype.itemsize

    # -- access -----------------------------------------------------------
    def _check(self, index: int) -> int:
        if self._freed:
            raise MemoryAccessError(f"use-after-free on {self._name}")
        idx = int(index)
        if idx < 0 or idx >= self._length:
            raise MemoryAccessError(
                f"index {idx} out of bounds for {self._name} of length {self._length}"
            )
        return idx

    def load(self, index: int):
        """Read one element (kernel-facing; bounds-checked)."""
        return self._view[self._check(index)]

    def store(self, index: int, value) -> None:
        """Write one element (kernel-facing; bounds-checked)."""
        self._view[self._check(index)] = value

    # -- host-side bulk operations -----------------------------------------
    def copy_from_host(self, host: np.ndarray) -> None:
        """Simulated ``cudaMemcpy`` host-to-device."""
        if self._freed:
            raise MemoryAccessError(f"use-after-free on {self._name}")
        host = np.asarray(host, dtype=self._dtype).ravel()
        if host.size != self._length:
            raise MemoryAccessError(
                f"H2D size mismatch: host has {host.size} elements, "
                f"device array {self._name} has {self._length}"
            )
        self._view[:] = host

    def copy_to_host(self) -> np.ndarray:
        """Simulated ``cudaMemcpy`` device-to-host (returns a fresh array)."""
        if self._freed:
            raise MemoryAccessError(f"use-after-free on {self._name}")
        return self._view.copy()

    def as_ndarray(self) -> np.ndarray:
        """Zero-copy view for vectorized engine internals and assertions.

        This is a simulation backdoor: real device memory is not
        host-addressable.  Only host-side orchestration code may use it.
        """
        if self._freed:
            raise MemoryAccessError(f"use-after-free on {self._name}")
        return self._view

    def fill(self, value) -> None:
        """Simulated ``cudaMemset``-style fill."""
        if self._freed:
            raise MemoryAccessError(f"use-after-free on {self._name}")
        self._view[:] = value

    def _mark_freed(self) -> None:
        self._freed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeviceArray({self._name}, len={self._length}, "
            f"dtype={self._dtype.name}, space={self._space})"
        )


class GlobalMemory:
    """The device's global-memory arena with a first-fit allocator.

    The allocator is deliberately simple (sorted free list, first fit,
    coalescing on free) — enough to model fragmentation-free batch
    workloads while making double frees and leaks detectable in tests.
    """

    def __init__(self, device: DeviceSpec, capacity_bytes: Optional[int] = None) -> None:
        self.device = device
        total = int(capacity_bytes if capacity_bytes is not None else device.usable_global_mem_bytes)
        if total <= 0:
            raise AllocationError("global memory capacity must be positive")
        self._backing = np.zeros(total, dtype=np.uint8)
        self.stats = MemoryStats(total_bytes=total)
        #: (offset, size) spans currently free, sorted by offset.
        self._free_spans: List[Tuple[int, int]] = [(0, total)]
        #: offset -> (size, DeviceArray) for live allocations.
        self._live: Dict[int, Tuple[int, DeviceArray]] = {}

    # -- allocation --------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        return self.stats.total_bytes

    @property
    def free_bytes(self) -> int:
        return self.stats.free_bytes

    def alloc(self, length: int, dtype, name: str = "") -> DeviceArray:
        """Allocate a typed array of ``length`` elements.

        Raises :class:`DeviceOutOfMemoryError` when no free span fits,
        which is the mechanism behind the Table 1 capacity measurements.
        """
        if length < 0:
            raise AllocationError(f"negative allocation length {length}")
        dt = np.dtype(dtype)
        nbytes = _align_up(max(length * dt.itemsize, 1), ALLOC_ALIGN)
        for i, (offset, size) in enumerate(self._free_spans):
            if size >= nbytes:
                remainder = size - nbytes
                if remainder:
                    self._free_spans[i] = (offset + nbytes, remainder)
                else:
                    del self._free_spans[i]
                arr = DeviceArray(self._backing, offset, length, dt, "global", name)
                self._live[offset] = (nbytes, arr)
                self.stats.allocated_bytes += nbytes
                self.stats.peak_bytes = max(self.stats.peak_bytes, self.stats.allocated_bytes)
                self.stats.allocation_count += 1
                return arr
        self.stats.failed_allocations += 1
        raise DeviceOutOfMemoryError(nbytes, self.free_bytes, self.capacity_bytes)

    def alloc_like(self, host: np.ndarray, name: str = "") -> DeviceArray:
        """Allocate and copy a host array to the device in one step."""
        host = np.asarray(host)
        arr = self.alloc(host.size, host.dtype, name=name)
        arr.copy_from_host(host.ravel())
        return arr

    def free(self, array: DeviceArray) -> None:
        """Release an allocation, coalescing adjacent free spans."""
        offset = array.byte_offset
        entry = self._live.pop(offset, None)
        if entry is None:
            raise AllocationError(
                f"free of unknown or already-freed allocation at offset {offset}"
            )
        nbytes, arr = entry
        arr._mark_freed()
        self.stats.allocated_bytes -= nbytes
        self.stats.free_count += 1
        self._free_spans.append((offset, nbytes))
        self._free_spans.sort()
        merged: List[Tuple[int, int]] = []
        for span in self._free_spans:
            if merged and merged[-1][0] + merged[-1][1] == span[0]:
                merged[-1] = (merged[-1][0], merged[-1][1] + span[1])
            else:
                merged.append(list(span))  # type: ignore[arg-type]
        self._free_spans = [tuple(s) for s in merged]

    def live_allocations(self) -> int:
        """Number of allocations not yet freed (leak checking in tests)."""
        return len(self._live)

    def reset(self) -> None:
        """Free everything; arena contents become undefined (like a fresh context)."""
        for _, arr in list(self._live.values()):
            arr._mark_freed()
        self._live.clear()
        self.stats.allocated_bytes = 0
        self._free_spans = [(0, self.capacity_bytes)]


class SharedMemory:
    """Per-block scratchpad memory with a bump allocator.

    A fresh instance is created for every simulated block, mirroring the
    block-lifetime semantics of ``__shared__`` storage.  Allocation beyond
    the device's per-block limit raises
    :class:`SharedMemoryExceededError` (a compile-time error in real CUDA).
    """

    def __init__(self, device: DeviceSpec, limit_bytes: Optional[int] = None) -> None:
        self.limit = int(limit_bytes if limit_bytes is not None else device.shared_mem_per_block)
        if self.limit <= 0 or self.limit > device.shared_mem_per_block:
            raise SharedMemoryExceededError(self.limit, device.shared_mem_per_block)
        self._backing = np.zeros(self.limit, dtype=np.uint8)
        self._cursor = 0
        self.alloc_count = 0

    @property
    def used_bytes(self) -> int:
        return self._cursor

    @property
    def free_bytes(self) -> int:
        return self.limit - self._cursor

    def alloc(self, length: int, dtype, name: str = "") -> DeviceArray:
        """Allocate a typed array in shared memory (4-byte aligned)."""
        if length < 0:
            raise AllocationError(f"negative allocation length {length}")
        dt = np.dtype(dtype)
        start = _align_up(self._cursor, max(dt.itemsize, 4))
        nbytes = length * dt.itemsize
        if start + nbytes > self.limit:
            raise SharedMemoryExceededError(start + nbytes, self.limit)
        self._cursor = start + nbytes
        self.alloc_count += 1
        return DeviceArray(self._backing, start, length, dt, "shared", name)
