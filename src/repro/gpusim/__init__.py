"""``repro.gpusim`` — a SIMT GPU simulator substrate.

This package stands in for the NVIDIA Tesla K40c + CUDA runtime the paper
evaluates on.  It provides:

* :class:`~repro.gpusim.device.DeviceSpec` hardware models (K40c, C2050, a
  micro test device),
* global and per-block shared memory with allocation tracking and OOM
  semantics (:mod:`repro.gpusim.memory`),
* a lock-step warp interpreter for generator-style kernels
  (:mod:`repro.gpusim.executor`, :mod:`repro.gpusim.warp`),
* coalescing, bank-conflict, divergence, occupancy, and cycle-cost models
  (:mod:`repro.gpusim.coalescing`, :mod:`repro.gpusim.timing`,
  :mod:`repro.gpusim.occupancy`),
* profiler-style launch reports (:mod:`repro.gpusim.profiler`).

See DESIGN.md section 2 for why this substitution preserves the paper's
claims.
"""

from .coalescing import classify_pattern, coalesce_transactions
from .device import DEVICE_CATALOG, K40C, MICRO, C2050, DeviceSpec, get_device
from .errors import (
    AllocationError,
    DeviceOutOfMemoryError,
    GpuSimError,
    InvalidLaunchError,
    KernelFault,
    MemoryAccessError,
    SharedMemoryExceededError,
    SynchronizationError,
)
from .executor import GpuDevice
from .faults import FaultPlan, FaultStats
from .grid import Dim3, LaunchConfig
from .memcheck import MemcheckReport, RaceFinding, check_races
from .memory import DeviceArray, GlobalMemory, MemoryStats, SharedMemory
from .occupancy import Occupancy, compute_occupancy
from .profiler import LaunchReport, PipelineReport
from .streams import (
    EngineKind,
    SimEvent,
    SimOp,
    SimTimeline,
    Stream,
    build_double_buffered_schedule,
)
from .thread import ThreadContext
from .timing import CostModel, LaunchTiming
from .tracing import AccessRecord, Tracer

__all__ = [
    "AllocationError",
    "CostModel",
    "DEVICE_CATALOG",
    "DeviceArray",
    "DeviceOutOfMemoryError",
    "DeviceSpec",
    "Dim3",
    "FaultPlan",
    "FaultStats",
    "GlobalMemory",
    "GpuDevice",
    "GpuSimError",
    "InvalidLaunchError",
    "K40C",
    "KernelFault",
    "LaunchConfig",
    "LaunchReport",
    "LaunchTiming",
    "MICRO",
    "C2050",
    "MemoryAccessError",
    "MemoryStats",
    "Occupancy",
    "PipelineReport",
    "EngineKind",
    "SimEvent",
    "SimOp",
    "SimTimeline",
    "Stream",
    "SharedMemory",
    "build_double_buffered_schedule",
    "SharedMemoryExceededError",
    "SynchronizationError",
    "ThreadContext",
    "AccessRecord",
    "MemcheckReport",
    "RaceFinding",
    "Tracer",
    "check_races",
    "classify_pattern",
    "coalesce_transactions",
    "compute_occupancy",
    "get_device",
]
