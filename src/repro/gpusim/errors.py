"""Error hierarchy for the GPU simulator.

The simulator is deliberately strict: the real CUDA runtime fails loudly on
out-of-memory and silently corrupts on out-of-bounds.  We make *both* loud,
because a reproduction substrate that silently corrupts would hide exactly
the class of bugs (bucket overlap, bad write-back offsets) that the paper's
in-place design has to get right.
"""

from __future__ import annotations


class GpuSimError(Exception):
    """Base class for all simulator errors."""


class DeviceOutOfMemoryError(GpuSimError):
    """Raised when a global-memory allocation exceeds remaining capacity.

    Mirrors ``cudaErrorMemoryAllocation``.  Carries the request and the
    remaining capacity so capacity experiments (Table 1) can introspect how
    far an allocation overshot.
    """

    def __init__(self, requested: int, free: int, total: int) -> None:
        self.requested = int(requested)
        self.free = int(free)
        self.total = int(total)
        super().__init__(
            f"device out of memory: requested {requested} bytes, "
            f"free {free} of {total} bytes"
        )


class SharedMemoryExceededError(GpuSimError):
    """Raised when a block requests more shared memory than the device has."""

    def __init__(self, requested: int, limit: int) -> None:
        self.requested = int(requested)
        self.limit = int(limit)
        super().__init__(
            f"shared memory request of {requested} bytes exceeds the "
            f"per-block limit of {limit} bytes"
        )


class InvalidLaunchError(GpuSimError):
    """Raised for launch configurations the device cannot schedule.

    Mirrors ``cudaErrorInvalidConfiguration`` (e.g. more threads per block
    than the hardware maximum, zero-sized grids).
    """


class MemoryAccessError(GpuSimError):
    """Raised on out-of-bounds or misaligned accesses to simulated memory."""


class AllocationError(GpuSimError):
    """Raised for malformed allocation requests (negative size, bad dtype)."""


class SynchronizationError(GpuSimError):
    """Raised when threads of a block disagree about a barrier.

    Real hardware deadlocks when only part of a block reaches
    ``__syncthreads()``; the simulator turns the deadlock into an error so
    tests can assert on it.
    """


class KernelFault(GpuSimError):
    """Wraps an exception raised inside user kernel code with its context."""

    def __init__(self, message: str, block: tuple, thread: tuple) -> None:
        self.block = block
        self.thread = thread
        super().__init__(f"kernel fault in block {block}, thread {thread}: {message}")
