"""Warp state machine: lock-step execution of up to 32 lanes.

A :class:`Warp` owns the generator objects for its lanes and advances them
one instruction slot at a time.  In each step it:

1. resumes every runnable lane (delivering the previous slot's load result),
2. groups the yielded events by opcode signature — more than one group in a
   step means the warp has *diverged* and the groups serialize (Section 3.2
   of the paper),
3. coalesces the global accesses of each group into memory transactions
   (Section 3.1) and counts shared-memory bank conflicts,
4. charges the step to the warp's :class:`~repro.gpusim.timing.StepCost`.

Lanes that yield a :class:`SyncBarrier` park until the block-level executor
releases the barrier; lanes whose generators return are finished.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Any, Dict, Generator, List

from .coalescing import coalesce_transactions
from .errors import KernelFault
from .thread import Event, SyncBarrier
from .timing import CostModel, StepCost

__all__ = ["LaneState", "Warp", "WarpStats"]

RUNNING = "running"
AT_BARRIER = "at_barrier"
FINISHED = "finished"


@dataclasses.dataclass
class LaneState:
    """Execution state of a single lane (thread) inside a warp."""

    gen: Generator[Event, Any, None]
    thread_index: tuple
    status: str = RUNNING
    #: Value to deliver into the generator at the next resume.
    inbox: Any = None


@dataclasses.dataclass
class WarpStats:
    """Observable hardware behaviour of one warp, for the profiler."""

    steps: int = 0
    divergent_steps: int = 0
    global_transactions: int = 0
    global_bytes: int = 0
    shared_accesses: int = 0
    bank_conflict_replays: int = 0
    alu_ops: int = 0
    syncs: int = 0
    atomic_ops: int = 0
    atomic_serializations: int = 0


class Warp:
    """Lock-step interpreter for one warp of lanes.

    ``trace_ctx`` (optional) is ``(tracer, kernel_name, block_idx,
    warp_index)``; when present, every memory-access group is recorded
    as an :class:`repro.gpusim.tracing.AccessRecord`.
    """

    def __init__(self, lanes: List[LaneState], cost_model: CostModel,
                 trace_ctx=None) -> None:
        if not lanes:
            raise ValueError("a warp needs at least one lane")
        self.lanes = lanes
        self.cost = StepCost()
        self.stats = WarpStats()
        self._model = cost_model
        self._trace_ctx = trace_ctx

    def _trace(self, op: str, addresses: List[int], space: str = None) -> None:
        if self._trace_ctx is None:
            return
        if space is None:
            space = "shared" if op in ("SLD", "SST") else "global"
        tracer, kernel, block, warp_index = self._trace_ctx
        tracer.record(
            kernel, block, warp_index, self.stats.steps, op, addresses,
            self._model.device.transaction_bytes,
            epoch=self.stats.syncs,
            space=space,
        )

    # -- status ----------------------------------------------------------------
    @property
    def runnable(self) -> bool:
        return any(l.status == RUNNING for l in self.lanes)

    @property
    def all_parked_or_done(self) -> bool:
        return all(l.status in (AT_BARRIER, FINISHED) for l in self.lanes)

    @property
    def finished(self) -> bool:
        return all(l.status == FINISHED for l in self.lanes)

    def release_barrier(self) -> None:
        """Return all barrier-parked lanes to the runnable state."""
        for lane in self.lanes:
            if lane.status == AT_BARRIER:
                lane.status = RUNNING

    # -- stepping ----------------------------------------------------------------
    def step(self) -> bool:
        """Advance every runnable lane one instruction slot.

        Returns ``True`` if any lane made progress.  Raises
        :class:`KernelFault` when user kernel code throws.
        """
        active: List[tuple] = []  # (lane, event)
        for lane in self.lanes:
            if lane.status != RUNNING:
                continue
            try:
                event = lane.gen.send(lane.inbox)
            except StopIteration:
                lane.status = FINISHED
                continue
            except Exception as exc:  # noqa: BLE001 - surface with context
                raise KernelFault(repr(exc), block=(-1,), thread=lane.thread_index) from exc
            lane.inbox = None
            if not isinstance(event, Event):
                raise KernelFault(
                    f"kernel yielded {type(event).__name__}, expected an Event",
                    block=(-1,),
                    thread=lane.thread_index,
                )
            if isinstance(event, SyncBarrier):
                lane.status = AT_BARRIER
                self.stats.syncs += 1
                self.cost.sync_cycles += self._model.sync()
                continue
            active.append((lane, event))

        if not active:
            return False

        self.stats.steps += 1
        groups: Dict[str, List[tuple]] = defaultdict(list)
        for lane, event in active:
            groups[event.signature()].append((lane, event))
        if len(groups) > 1:
            self.stats.divergent_steps += 1
            self.cost.divergence_cycles += self._model.divergence(len(groups))

        # Each divergent group serializes: costs add across groups.
        for signature, members in groups.items():
            self._execute_group(signature, members)
        return True

    # -- group execution -----------------------------------------------------------
    def _execute_group(self, signature: str, members: List[tuple]) -> None:
        kind = signature
        if kind == "GLD":
            addrs = [ev.address for _, ev in members]
            txns = coalesce_transactions(addrs, self._model.device.transaction_bytes)
            self.stats.global_transactions += txns
            self.stats.global_bytes += sum(ev.nbytes for _, ev in members)
            self.cost.global_cycles += self._model.global_access(txns)
            self._trace("GLD", addrs)
            for lane, ev in members:
                lane.inbox = ev.array.load(ev.index)
        elif kind == "GST":
            addrs = [ev.address for _, ev in members]
            txns = coalesce_transactions(addrs, self._model.device.transaction_bytes)
            self.stats.global_transactions += txns
            self.stats.global_bytes += sum(ev.nbytes for _, ev in members)
            self.cost.global_cycles += self._model.global_access(txns)
            self._trace("GST", addrs)
            for lane, ev in members:
                ev.array.store(ev.index, ev.value)
        elif kind in ("SLD", "SST"):
            conflicts = self._bank_conflicts([ev for _, ev in members])
            self.stats.shared_accesses += len(members)
            self.stats.bank_conflict_replays += conflicts
            self.cost.shared_cycles += self._model.shared_access(conflicts)
            self._trace(kind, [ev.array.address_of(ev.index) for _, ev in members])
            for lane, ev in members:
                if kind == "SLD":
                    lane.inbox = ev.array.load(ev.index)
                else:
                    ev.array.store(ev.index, ev.value)
        elif kind == "ATOM":
            # Same-address atomics from different lanes serialize: the
            # step costs one memory round trip per distinct address plus
            # one serialization replay per colliding lane.
            by_addr: Dict[int, List[tuple]] = defaultdict(list)
            for lane, ev in members:
                by_addr[ev.address].append((lane, ev))
            worst_collision = max(len(v) for v in by_addr.values())
            self.stats.atomic_ops += len(members)
            self.stats.atomic_serializations += worst_collision - 1
            self._trace("ATOM", [ev.address for _, ev in members],
                        space=members[0][1].array.space)
            if members[0][1].array.space == "shared":
                self.cost.shared_cycles += self._model.shared_access(0) * worst_collision
            else:
                txns = coalesce_transactions(
                    [ev.address for _, ev in members],
                    self._model.device.transaction_bytes,
                )
                self.stats.global_transactions += txns
                self.cost.global_cycles += (
                    self._model.global_access(txns) * worst_collision
                )
            # Execute in lane order (deterministic; hardware order is
            # unspecified, any serial order is a valid outcome).
            for lane, ev in members:
                old = ev.array.load(ev.index)
                ev.array.store(ev.index, old + ev.value)
                lane.inbox = old
        elif kind == "ALU":
            ops = max(ev.ops for _, ev in members)
            self.stats.alu_ops += ops
            self.cost.alu_cycles += self._model.alu(ops)
        else:  # pragma: no cover - future opcodes
            raise KernelFault(f"unknown event signature {kind}", (-1,), (-1,))

    @staticmethod
    def _bank_conflicts(events: List) -> int:
        """Replays required when multiple lanes hit the same bank at
        different addresses (same-address broadcasts are free)."""
        by_bank: Dict[int, set] = defaultdict(set)
        for ev in events:
            by_bank[ev.bank].add(ev.array.address_of(ev.index))
        worst = max((len(addrs) for addrs in by_bank.values()), default=1)
        return worst - 1
