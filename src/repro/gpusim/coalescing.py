"""Per-warp global-memory transaction analysis.

Section 3.1 of the paper: once a warp issues a global load/store, the device
coalesces the 32 per-thread addresses into as few 128-byte transactions as
possible.  Scattered addresses cost one transaction each; consecutive
addresses from consecutive lanes cost one transaction per 128-byte segment.

The analyzer here receives the byte addresses touched by the active lanes of
a warp in one lock step and returns the number of distinct transaction
segments — the quantity the timing model charges for.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

__all__ = ["coalesce_transactions", "AccessPattern", "classify_pattern"]


def coalesce_transactions(addresses: Sequence[int], transaction_bytes: int = 128) -> int:
    """Number of memory transactions needed to service one warp access.

    ``addresses`` are the byte addresses of the active lanes (inactive lanes
    contribute nothing).  Each distinct ``transaction_bytes``-aligned segment
    touched costs one transaction, which is precisely the coalescing rule of
    compute-capability >= 2.0 devices.

    >>> coalesce_transactions([0, 4, 8, 12])   # same 128B line
    1
    >>> coalesce_transactions([0, 128, 256])   # one line each
    3
    """
    if transaction_bytes <= 0:
        raise ValueError("transaction_bytes must be positive")
    segments = {int(addr) // transaction_bytes for addr in addresses}
    return len(segments)


@dataclasses.dataclass(frozen=True)
class AccessPattern:
    """Summary of one warp-level access used in tests and reports."""

    lanes: int
    transactions: int

    @property
    def efficiency(self) -> float:
        """Fraction of ideal: 1.0 when the warp needed the minimum segments.

        Ideal is ceil(lanes * 4 / 128) for 4-byte elements; we approximate
        by comparing against a single transaction when all lanes fit.
        """
        if self.lanes == 0:
            return 1.0
        return min(1.0, 1.0 / self.transactions * max(1, self.transactions_ideal))

    @property
    def transactions_ideal(self) -> int:
        # 32 lanes x 4B = 128B = exactly one transaction on a 128B-line device
        return max(1, (self.lanes * 4 + 127) // 128)


def classify_pattern(addresses: Iterable[int], itemsize: int = 4) -> str:
    """Classify a warp access as ``"coalesced"``, ``"strided"``, or ``"scattered"``.

    Useful for human-readable profiler output; the timing model uses the
    transaction count directly and does not depend on this label.
    """
    addrs = [int(a) for a in addresses]
    if len(addrs) <= 1:
        return "coalesced"
    deltas = {b - a for a, b in zip(addrs, addrs[1:])}
    if deltas == {itemsize}:
        return "coalesced"
    if len(deltas) == 1:
        return "strided"
    return "scattered"
