"""Project-native static analysis for the repo's three real hazard classes.

The paper's central claim is *in-place safety*: phase 2 writes buckets
back into the storage other threads read.  PRs 3-4 extended that hazard
surface onto the host — :class:`~repro.core.workspace.ScratchArena`
buffers are reused across sorts (``SortResult.scratch=True``),
``copy=False`` service futures hand out views that die at the next
dispatch, and the service stack shares mutable state across threads.
:mod:`repro.gpusim.memcheck` checks the *device*-side contracts at
runtime over traces; ``statan`` checks the *host*-side contracts
statically, over the AST, on every ``make lint``:

* ``guarded-by`` — attributes annotated ``# guarded-by: _lock`` in
  ``__init__`` may only be touched inside a ``with self._lock:`` block
  of that class (:mod:`.guarded_by`);
* ``scratch-escape`` — arena-backed buffers and demux row views must be
  copied before escaping a function, or the escape must be named in the
  checked ``baseline.toml`` (:mod:`.scratch_escape`);
* ``nondeterminism`` / ``silent-except`` / ``mutable-default`` — the
  determinism & hygiene audit (:mod:`.determinism`, :mod:`.hygiene`),
  which also covers ``benchmarks/``;
* ``lock-order`` — cycles in the whole-program may-acquire graph
  (:mod:`.lockorder`), diffable against the runtime-observed graph;
* ``crash-safety`` — durable writes in ``outofcore/``/``planner/``
  outside the tmp-write → fsync → rename shape (:mod:`.crashsafety`).

The same contracts are enforced at runtime by the checked-build
sanitizer (:mod:`.runtime`, ``REPRO_SANITIZE=1`` / ``make sanitize``):
instrumented locks validate every guarded-by access and record the
acquisition graph, and region epochs catch zero-copy views used after
their storage was reused.

Entry points: :func:`analyze_paths` (the pytest gate uses it) and the
``repro statan`` CLI subcommand (:mod:`.cli`).
"""

from __future__ import annotations

from .baseline import Baseline, load_baseline
from .engine import AnalysisResult, analyze_paths, analyze_source, iter_python_files
from .findings import RULES, Finding

__all__ = [
    "AnalysisResult",
    "Baseline",
    "Finding",
    "RULES",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "load_baseline",
]
