"""Whole-program lock-order analysis: the static may-acquire graph.

A deadlock needs a cycle in the lock *acquisition order*: thread A
holds L1 and wants L2 while thread B holds L2 and wants L1.  This pass
builds the may-acquire graph from the AST of every analyzed file and
reports any cycle as a ``lock-order`` finding — before a run ever
interleaves badly enough to hang.

The graph is built in three passes over the whole file set (it is a
*program* property — the edge ``SortService._lock ->
StatsRecorder._lock`` spans two modules):

1. **Index classes.**  For every class: which attributes are locks
   (``self.X = threading.Lock()`` / ``RLock`` /
   :func:`repro.statan.runtime.make_lock` / ``make_rlock`` in any
   method), which are Condition aliases (``self.X =
   threading.Condition(self.Y)`` — acquiring X *is* acquiring Y), and
   which are fields holding instances of other indexed classes
   (``self._recorder = StatsRecorder(...)``).
2. **Transitive may-acquire sets.**  Per method, the locks it may
   acquire directly (``with self.X:``) or through calls it can reach:
   ``self.m()`` (same class) and ``self.field.m()`` (the field's
   class), to a fixpoint.  Nested functions contribute to the set
   (over-approximation is the right direction for a may-analysis) but
   never inherit the caller's held locks.
3. **Edges.**  Walking each method with the lexically held set, every
   acquisition — direct or through a call's may-acquire set — while
   another lock is held adds ``held -> acquired`` with the site.

Nodes are named ``ClassName._lockattr``, the same names
:func:`repro.statan.runtime.make_lock` stamps on instrumented locks —
so the runtime-observed graph diffs directly against this one
(:func:`unexplained_runtime_edges`): a runtime edge the static pass
cannot explain means the index missed a call path and the analysis
needs teaching, not the code.
"""

from __future__ import annotations

import ast
import dataclasses
import json
from typing import Dict, List, Optional, Set, Tuple

from .findings import Finding

__all__ = [
    "LockGraph",
    "build_lock_graph",
    "check_lock_order",
    "unexplained_runtime_edges",
]

#: Call names that create a lock when assigned to ``self.<attr>``.
_LOCK_FACTORIES = {"Lock", "RLock", "make_lock", "make_rlock", "allocate_lock"}


@dataclasses.dataclass(frozen=True)
class Site:
    """Where an edge was observed in the source."""

    path: str
    line: int
    qualname: str


@dataclasses.dataclass
class LockGraph:
    """May-acquire graph: nodes ``Class._lock``, edges held -> acquired."""

    nodes: Set[str] = dataclasses.field(default_factory=set)
    edges: Dict[Tuple[str, str], Site] = dataclasses.field(default_factory=dict)

    def as_json(self) -> str:
        return json.dumps(
            {
                "schema": "statan-lockgraph/v1",
                "nodes": sorted(self.nodes),
                "edges": [
                    {
                        "held": a,
                        "acquired": b,
                        "path": site.path,
                        "line": site.line,
                        "qualname": site.qualname,
                    }
                    for (a, b), site in sorted(self.edges.items())
                ],
            },
            indent=2,
            sort_keys=True,
        )


class _ClassInfo:
    """Everything pass 1 learns about one class."""

    def __init__(self, name: str, path: str) -> None:
        self.name = name
        self.path = path
        self.locks: Set[str] = set()
        #: Condition attr -> underlying lock attr.
        self.aliases: Dict[str, str] = {}
        #: field attr -> constructor name (resolved against the index).
        self.fields: Dict[str, str] = {}
        self.methods: Dict[str, ast.AST] = {}

    def lock_node(self, attr: str) -> Optional[str]:
        """Graph node for ``self.<attr>``, following Condition aliases."""
        attr = self.aliases.get(attr, attr)
        if attr in self.locks:
            return f"{self.name}.{attr}"
        return None


def _self_attr(node: ast.AST) -> str:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _call_name(func: ast.AST) -> str:
    """Trailing name of a call target: ``threading.Lock`` -> ``Lock``."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _index_class(cls: ast.ClassDef, path: str) -> _ClassInfo:
    info = _ClassInfo(cls.name, path)
    for method in cls.body:
        if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[method.name] = method
    for method in info.methods.values():
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            name = _call_name(node.value.func)
            for target in node.targets:
                attr = _self_attr(target)
                if not attr:
                    continue
                if name in _LOCK_FACTORIES:
                    info.locks.add(attr)
                elif name == "Condition":
                    args = node.value.args
                    underlying = _self_attr(args[0]) if args else ""
                    if underlying:
                        info.aliases[attr] = underlying
                    else:
                        # A Condition with its own hidden lock is a
                        # lock in its own right.
                        info.locks.add(attr)
                elif name and name[0].isupper():
                    info.fields[attr] = name
    return info


def _callee(call: ast.Call, info: _ClassInfo, index: Dict[str, _ClassInfo]):
    """Resolve ``self.m()`` / ``self.field.m()`` to (class info, method)."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    owner = func.value
    attr = _self_attr(owner)
    if isinstance(owner, ast.Name) and owner.id == "self":
        method = info.methods.get(func.attr)
        if method is not None:
            return (info, func.attr)
        return None
    if attr:  # self.<field>.<method>()
        field_cls = info.fields.get(attr)
        if field_cls is None:
            return None
        target = index.get(field_cls)
        if target is not None and func.attr in target.methods:
            return (target, func.attr)
    return None


def _direct_locks(info: _ClassInfo, method: ast.AST) -> Set[str]:
    """Lock nodes acquired by ``with self.X:`` anywhere in ``method``."""
    nodes: Set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.With):
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr:
                    lock = info.lock_node(attr)
                    if lock:
                        nodes.add(lock)
    return nodes


def _acquire_sets(
    index: Dict[str, _ClassInfo],
) -> Dict[Tuple[str, str], Set[str]]:
    """Transitive may-acquire set per (class name, method name), fixpoint."""
    acquires: Dict[Tuple[str, str], Set[str]] = {}
    calls: Dict[Tuple[str, str], List[Tuple[str, str]]] = {}
    for info in index.values():
        for method_name, method in info.methods.items():
            key = (info.name, method_name)
            acquires[key] = _direct_locks(info, method)
            out: List[Tuple[str, str]] = []
            for node in ast.walk(method):
                if isinstance(node, ast.Call):
                    resolved = _callee(node, info, index)
                    if resolved is not None:
                        out.append((resolved[0].name, resolved[1]))
            calls[key] = out
    changed = True
    while changed:
        changed = False
        for key, callees in calls.items():
            mine = acquires[key]
            before = len(mine)
            for callee_key in callees:
                mine |= acquires.get(callee_key, set())
            if len(mine) != before:
                changed = True
    return acquires


class _EdgeWalker:
    """Walk one method with the lexically held lock set, emitting edges."""

    def __init__(
        self,
        info: _ClassInfo,
        method_name: str,
        index: Dict[str, _ClassInfo],
        acquires: Dict[Tuple[str, str], Set[str]],
        graph: LockGraph,
    ) -> None:
        self.info = info
        self.index = index
        self.acquires = acquires
        self.graph = graph
        self.qualname = f"{info.name}.{method_name}"

    def _edge(self, held: str, acquired: str, line: int) -> None:
        if held == acquired:
            return
        self.graph.nodes.update((held, acquired))
        self.graph.edges.setdefault(
            (held, acquired), Site(self.info.path, line, self.qualname)
        )

    def walk(self, node: ast.AST, held: Tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    def _visit(self, node: ast.AST, held: Tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A closure may run on another thread: no inherited locks.
            self.walk(node, ())
            return
        if isinstance(node, ast.With):
            inner = list(held)
            for item in node.items:
                self._visit(item.context_expr, held)
                attr = _self_attr(item.context_expr)
                lock = self.info.lock_node(attr) if attr else None
                if lock:
                    self.graph.nodes.add(lock)
                    for h in held:
                        self._edge(h, lock, node.lineno)
                    if lock not in inner:
                        inner.append(lock)
            for stmt in node.body:
                self._visit(stmt, tuple(inner))
            return
        if isinstance(node, ast.Call) and held:
            resolved = _callee(node, self.info, self.index)
            if resolved is not None:
                key = (resolved[0].name, resolved[1])
                for lock in sorted(self.acquires.get(key, ())):
                    if lock not in held:
                        for h in held:
                            self._edge(h, lock, node.lineno)
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)


def build_lock_graph(trees: Dict[str, ast.Module]) -> LockGraph:
    """The may-acquire graph over ``{path label: parsed module}``."""
    index: Dict[str, _ClassInfo] = {}
    for path, tree in trees.items():
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                info = _index_class(node, path)
                existing = index.get(info.name)
                if existing is None:
                    index[info.name] = info
                else:
                    # Same class name in two modules: union
                    # conservatively rather than guess which one a
                    # call site means.
                    existing.locks |= info.locks
                    existing.aliases.update(info.aliases)
                    existing.fields.update(info.fields)
                    existing.methods.update(info.methods)
    acquires = _acquire_sets(index)
    graph = LockGraph()
    for info in index.values():
        for attr in info.locks:
            graph.nodes.add(f"{info.name}.{attr}")
        for method_name, method in info.methods.items():
            _EdgeWalker(info, method_name, index, acquires, graph).walk(
                method, ()
            )
    return graph


def _find_cycles(graph: LockGraph) -> List[List[str]]:
    """Elementary cycles in the edge set (DFS, deduplicated by node set)."""
    adjacency: Dict[str, List[str]] = {}
    for a, b in graph.edges:
        adjacency.setdefault(a, []).append(b)
    cycles: List[List[str]] = []
    seen_sets: Set[frozenset] = set()

    def walk(start: str, node: str, path: List[str], on_path: Set[str]) -> None:
        for nxt in sorted(adjacency.get(node, ())):
            if nxt == start:
                key = frozenset(path)
                if key not in seen_sets:
                    seen_sets.add(key)
                    cycles.append(list(path))
            elif nxt not in on_path and nxt > start:
                # Only explore nodes ordered after start so each cycle
                # is found once, from its smallest node.
                path.append(nxt)
                on_path.add(nxt)
                walk(start, nxt, path, on_path)
                on_path.discard(nxt)
                path.pop()

    for start in sorted(graph.nodes):
        walk(start, start, [start], {start})
    return cycles


def check_lock_order(trees: Dict[str, ast.Module]) -> List[Finding]:
    """``lock-order`` findings: one per acquisition-order cycle."""
    graph = build_lock_graph(trees)
    findings: List[Finding] = []
    for cycle in _find_cycles(graph):
        path_str = " -> ".join(cycle + [cycle[0]])
        # Pin the finding to the first edge of the cycle that has a
        # recorded site (every edge does, by construction).
        first_edge = (cycle[0], cycle[1] if len(cycle) > 1 else cycle[0])
        site = graph.edges.get(first_edge)
        if site is None:  # self-loop cannot happen; defensive
            continue
        findings.append(Finding(
            rule="lock-order",
            path=site.path,
            line=site.line,
            message=(
                f"lock acquisition order cycle {path_str}: two threads "
                "taking these locks in different orders can deadlock"
            ),
            qualname=site.qualname,
        ))
    return findings


def unexplained_runtime_edges(
    graph: LockGraph, runtime_edges
) -> List[Tuple[str, str]]:
    """Runtime-observed edges the static graph cannot account for.

    ``runtime_edges`` is an iterable of ``(held, acquired)`` pairs (the
    keys of :func:`repro.statan.runtime.lock_order_edges`).  An edge
    here means the may-acquire index missed a call path — teach the
    analysis, don't suppress the diff.
    """
    return sorted(
        (a, b) for (a, b) in set(runtime_edges) if (a, b) not in graph.edges
    )
