"""Scratch-escape lint: reused storage must not leak without a copy.

:meth:`ScratchArena.get` hands out views that die at the next same-key
request, and demuxed service rows are views into a batch buffer the next
dispatch overwrites.  The bug class this catches is *retaining* such a
view: returning it, storing it on ``self``, appending it to a container
on ``self``, or resolving a future with it.

Taint model (intra-procedural, per function):

* **sources** — calls to ``.get(...)`` / ``.get_shared(...)`` on a
  receiver whose dotted name mentions ``arena`` or ``workspace``
  (``self.workspace.get(...)``, ``arena.get_shared(...)``), and any
  assignment whose line carries a ``# statan: scratch-view`` marker (the
  project convention for "this expression is a view of reused storage"
  where the lint cannot see it, e.g. ``out = result.batch``);
* **propagation** — through names, attributes, subscripts/slices,
  ndarray view methods (``reshape``/``ravel``/``view``/``transpose``/
  ``squeeze``/``swapaxes``), conditional expressions, tuples/lists, and
  through any call that receives a tainted value, and through lowercase
  helper calls that receive an arena object (``fused_bucket_sort(...,
  workspace=...)`` returns arena-backed results; a *constructor* given
  the arena merely owns it, so ``GpuArraySort(..., workspace=ws)`` is
  not a view);
* **sanitizers** — ``.copy()``, ``np.array(...)`` (unless
  ``copy=False``), ``.astype(...)`` (unless ``copy=False``), and other
  allocating/aggregating calls kill taint;
* **sinks** — ``return``/``yield`` of a tainted expression, ``self.X =
  tainted``, ``self.X...append(tainted)``, and ``*.set_result(tainted)``.

A sink firing is only *sometimes* a bug: ``GpuArraySort.sort`` returning
an arena-backed batch is the documented ``SortResult.scratch`` contract.
Such contracts are allowlisted per function in ``baseline.toml`` — with
a reason — and the baseline is itself checked for staleness.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from .findings import Finding
from .suppress import CommentMarkers

__all__ = ["check_scratch_escape"]

#: Receiver substrings that make ``X.get(...)`` an arena checkout.
_ARENA_HINTS = ("arena", "workspace")

#: ndarray methods whose result aliases the receiver's storage.
_VIEW_METHODS = {"reshape", "ravel", "view", "transpose", "squeeze", "swapaxes"}

#: Call names (final dotted component) whose result is fresh storage or
#: a scalar — taint does not pass through them.
_SANITIZERS = {
    "array", "copy", "deepcopy", "astype", "tolist", "item", "copyto",
    "sort", "sorted", "concatenate", "vstack", "hstack", "stack",
    "zeros_like", "ones_like", "empty_like", "full_like",
    "sum", "mean", "std", "min", "max", "all", "any", "nonzero",
    "len", "int", "float", "bool", "str", "repr", "list", "dict", "set",
    "tuple", "range", "enumerate", "zip", "isinstance", "getattr",
}


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name: ``self.workspace``, ``np.random``, ..."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_arena_expr(node: ast.AST) -> bool:
    dotted = _dotted(node).lower()
    return bool(dotted) and any(hint in dotted for hint in _ARENA_HINTS)


def _copy_kw_false(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "copy" and isinstance(kw.value, ast.Constant):
            return kw.value.value is False
    return False


class _FunctionTaint:
    """Fixpoint taint of local names, then a sink scan, for one function."""

    def __init__(
        self,
        fn: ast.AST,
        qualname: str,
        path: str,
        markers: CommentMarkers,
    ) -> None:
        self.fn = fn
        self.qualname = qualname
        self.path = path
        self.markers = markers
        self.tainted: Set[str] = set()

    # -- taint predicate ---------------------------------------------------
    def is_tainted(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            return self.is_tainted(node.value)
        if isinstance(node, ast.Subscript):
            return self.is_tainted(node.value)
        if isinstance(node, ast.Starred):
            return self.is_tainted(node.value)
        if isinstance(node, ast.IfExp):
            return self.is_tainted(node.body) or self.is_tainted(node.orelse)
        if isinstance(node, ast.BoolOp):
            return any(self.is_tainted(v) for v in node.values)
        if isinstance(node, (ast.Tuple, ast.List)):
            return any(self.is_tainted(elt) for elt in node.elts)
        if isinstance(node, ast.NamedExpr):
            return self.is_tainted(node.value)
        if isinstance(node, ast.Call):
            return self._call_tainted(node)
        return False

    def _call_tainted(self, call: ast.Call) -> bool:
        func = call.func
        name = ""
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        # Source: arena.get(...) / arena.get_shared(...).
        if (
            isinstance(func, ast.Attribute)
            and name in ("get", "get_shared")
            and _is_arena_expr(func.value)
        ):
            return True
        # Sanitizers allocate fresh storage (np.array(x, copy=False) and
        # x.astype(..., copy=False) keep the alias, so they stay tainted).
        if name in _SANITIZERS:
            if name in ("array", "astype", "asarray") and _copy_kw_false(call):
                pass  # copy=False: still a view
            else:
                return False
        # View methods alias the receiver.
        if (
            isinstance(func, ast.Attribute)
            and name in _VIEW_METHODS
            and self.is_tainted(func.value)
        ):
            return True
        # Propagation: a call fed a tainted value may hand it back.
        args = list(call.args) + [kw.value for kw in call.keywords]
        if any(self.is_tainted(arg) for arg in args):
            return True
        # A call fed the arena *object* propagates only for lowercase
        # helpers (select_splitters, fused_bucket_sort — they return
        # arena-backed results).  Capitalized names are constructors:
        # the instance *owns* the arena, it is not a view of it.
        if name and not name[0].isupper():
            if any(_is_arena_expr(arg) for arg in args):
                return True
        return False

    # -- passes ------------------------------------------------------------
    def _walk_within(self):
        """Walk this function's own body, not nested defs (they get their
        own analysis with their own taint set)."""

        def inner(node: ast.AST):
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                     ast.ClassDef),
                ):
                    continue
                yield child
                yield from inner(child)

        yield from inner(self.fn)

    def _collect(self) -> None:
        for _ in range(8):  # fixpoint: taint through later-defined names
            before = len(self.tainted)
            for node in self._walk_within():
                if isinstance(node, ast.Assign):
                    tainted = (
                        node.lineno in self.markers.scratch_view_lines
                        or self.is_tainted(node.value)
                    )
                    if tainted:
                        for target in node.targets:
                            self._taint_target(target)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    if (
                        node.lineno in self.markers.scratch_view_lines
                        or self.is_tainted(node.value)
                    ):
                        self._taint_target(node.target)
                elif isinstance(node, ast.AugAssign):
                    if self.is_tainted(node.value):
                        self._taint_target(node.target)
                elif isinstance(node, ast.NamedExpr):
                    if self.is_tainted(node.value):
                        self._taint_target(node.target)
            if len(self.tainted) == before:
                break

    def _taint_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._taint_target(elt)
        # self.X = tainted is a sink, handled in the sink pass.

    def findings(self) -> List[Finding]:
        self._collect()
        out: List[Finding] = []

        def add(node: ast.AST, what: str) -> None:
            out.append(Finding(
                rule="scratch-escape",
                path=self.path,
                line=node.lineno,
                message=(
                    f"{what} in {self.qualname} without .copy(); copy it "
                    "or allowlist the contract in statan/baseline.toml"
                ),
                qualname=self.qualname,
            ))

        for node in self._walk_within():
            if isinstance(node, ast.Return) and node.value is not None:
                if self.is_tainted(node.value):
                    add(node, "arena-backed value returned")
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                value = getattr(node, "value", None)
                if value is not None and self.is_tainted(value):
                    add(node, "arena-backed value yielded")
            elif isinstance(node, ast.Assign):
                value_tainted = (
                    self.is_tainted(node.value)
                    or node.lineno in self.markers.scratch_view_lines
                )
                if value_tainted:
                    for target in node.targets:
                        attr_root = target
                        if (
                            isinstance(attr_root, ast.Attribute)
                            and isinstance(attr_root.value, ast.Name)
                            and attr_root.value.id == "self"
                        ):
                            add(node, f"scratch view stored on self.{attr_root.attr}")
            elif isinstance(node, ast.Call):
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                args_tainted = any(self.is_tainted(a) for a in node.args)
                if not args_tainted:
                    continue
                if func.attr == "set_result":
                    add(node, "scratch view delivered via set_result")
                elif func.attr in ("append", "extend") and _dotted(
                    func.value
                ).startswith("self."):
                    add(node, f"scratch view retained in {_dotted(func.value)}")
        return out


def _walk_functions(tree: ast.Module, path: str, markers: CommentMarkers):
    """Yield (function node, dotted qualname) for every def in the module."""

    def visit(node: ast.AST, prefix: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield child, qual
                yield from visit(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")


def check_scratch_escape(
    tree: ast.Module, path: str, markers: CommentMarkers
) -> List[Finding]:
    findings: List[Finding] = []
    for fn, qualname in _walk_functions(tree, path, markers):
        findings.extend(
            _FunctionTaint(fn, qualname, path, markers).findings()
        )
    return findings
