"""Hygiene audit, repo-wide: ``silent-except`` and ``mutable-default``.

* ``silent-except`` — a bare ``except:`` (catches ``KeyboardInterrupt``
  and ``SystemExit``), or an ``except Exception:`` / ``except
  BaseException:`` whose body is only ``pass``.  CONTRIBUTING's "faults
  must stay loud" rule, enforced.  A handler that logs, counts,
  re-raises, or falls back is fine — it is the silent swallow that is
  forbidden.
* ``mutable-default`` — ``def f(x=[])`` / ``={}`` / ``=set()`` share one
  object across calls; the classic aliasing bug.
"""

from __future__ import annotations

import ast
from typing import List

from .findings import Finding

__all__ = ["check_silent_except", "check_mutable_default"]


def _is_pass_only(body: List[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or ellipsis
        return False
    return True


def _broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    if isinstance(handler.type, ast.Name):
        return handler.type.id in ("Exception", "BaseException")
    return False


def check_silent_except(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            findings.append(Finding(
                rule="silent-except", path=path, line=node.lineno,
                message=(
                    "bare 'except:' catches KeyboardInterrupt/SystemExit; "
                    "name the exception types"
                ),
            ))
        elif _broad_handler(node) and _is_pass_only(node.body):
            findings.append(Finding(
                rule="silent-except", path=path, line=node.lineno,
                message=(
                    "'except Exception: pass' swallows every error "
                    "silently; handle, count, or narrow it"
                ),
            ))
    return findings


_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "OrderedDict", "deque"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


def check_mutable_default(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                findings.append(Finding(
                    rule="mutable-default", path=path, line=default.lineno,
                    message=(
                        f"mutable default argument in {node.name}() is "
                        "shared across calls; default to None and build "
                        "inside the function"
                    ),
                ))
    return findings
