"""Suppression comments: ``# statan: ignore[rule] -- reason``.

A suppression silences matching findings **on its own line** and must
carry a reason after ``--`` — an allowlist entry that does not say *why*
the contract is safe is itself a finding.  Unused suppressions are also
findings (``unused-suppression``), so a fix cannot leave an expired
ignore behind.

The related marker ``# statan: scratch-view`` (no rule list) is not a
suppression: it *taints* the names assigned on its line for the
scratch-escape checker, documenting "this is a view into reused
storage" at the point the view is created.
"""

from __future__ import annotations

import dataclasses
import io
import re
import tokenize
from typing import Dict, List, Set, Tuple

_IGNORE_RE = re.compile(
    r"#\s*statan:\s*ignore\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<reason>.*\S))?"
)
_SCRATCH_VIEW_RE = re.compile(r"#\s*statan:\s*scratch-view\b")
_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*(?P<locks>[\w.,|\s]+)")


@dataclasses.dataclass
class Suppression:
    """One ``# statan: ignore[...]`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str
    used: bool = False


@dataclasses.dataclass
class CommentMarkers:
    """Every statan comment marker found in one source file."""

    suppressions: List[Suppression]
    #: Lines carrying ``# statan: scratch-view``.
    scratch_view_lines: Set[int]
    #: ``# guarded-by: _lock`` annotations: line -> lock attribute names.
    #: Multiple names (``# guarded-by: _wakeup, _lock``) mean holding any
    #: one of them suffices — the idiom for a Condition sharing its lock.
    guarded_by: Dict[int, Tuple[str, ...]]

    def suppressions_by_line(self) -> Dict[int, List[Suppression]]:
        by_line: Dict[int, List[Suppression]] = {}
        for sup in self.suppressions:
            by_line.setdefault(sup.line, []).append(sup)
        return by_line


def scan_markers(source: str) -> CommentMarkers:
    """Extract statan comment markers via ``tokenize`` (never from strings)."""
    suppressions: List[Suppression] = []
    scratch_lines: Set[int] = set()
    guarded: Dict[int, Tuple[str, ...]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return CommentMarkers(
            suppressions=[], scratch_view_lines=set(), guarded_by={}
        )
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _IGNORE_RE.search(tok.string)
        if match:
            rules = tuple(
                r.strip() for r in match.group("rules").split(",") if r.strip()
            )
            suppressions.append(
                Suppression(
                    line=tok.start[0],
                    rules=rules,
                    reason=(match.group("reason") or "").strip(),
                )
            )
        if _SCRATCH_VIEW_RE.search(tok.string):
            scratch_lines.add(tok.start[0])
        guard = _GUARDED_BY_RE.search(tok.string)
        if guard:
            locks = tuple(
                name.strip()
                for name in re.split(r"[,|]", guard.group("locks"))
                if name.strip()
            )
            if locks:
                guarded[tok.start[0]] = locks
    return CommentMarkers(
        suppressions=suppressions,
        scratch_view_lines=scratch_lines,
        guarded_by=guarded,
    )
