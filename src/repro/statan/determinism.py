"""Determinism audit for the kernel layers (``nondeterminism``).

CONTRIBUTING's rule — "every generator takes a ``seed``; tests must not
depend on unseeded randomness" — only binds if something checks it.
Inside the algorithm layers (``core/``, ``gpusim/``, ``baselines/``)
and the benchmark harnesses (``benchmarks/``) statan forbids:

* ``time.time()`` — wall-clock reads make phase timings and cache keys
  irreproducible (``time.perf_counter``/``monotonic`` stay legal: they
  measure *intervals*, which the benchmarks are supposed to do);
* the stdlib ``random`` module in any form — it draws from unseeded
  process-global state;
* ``np.random.default_rng()`` **without a seed argument**, and the
  legacy global-state samplers (``np.random.rand`` & co.).

Seeded randomness (``default_rng(seed)``, ``default_rng([seed, ...])``)
is the sanctioned pattern and passes.
"""

from __future__ import annotations

import ast
import re
from typing import List

from .findings import Finding

__all__ = ["check_nondeterminism", "in_determinism_scope"]

#: Directories the audit applies to: the algorithm layers under
#: ``src/repro/`` plus the benchmark harnesses — a bench cell drawing
#: from unseeded global state cannot be re-run for a regression bisect.
_SCOPE_RE = re.compile(r"(^|/)(repro/(core|gpusim|baselines)|benchmarks)/")

#: ``np.random.<name>`` members that are *not* global-state samplers.
_NP_RANDOM_OK = {"default_rng", "Generator", "BitGenerator", "SeedSequence",
                 "PCG64", "Philox", "SFC64", "MT19937"}


def in_determinism_scope(path: str) -> bool:
    return bool(_SCOPE_RE.search(path.replace("\\", "/")))


def _dotted(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def check_nondeterminism(tree: ast.Module, path: str) -> List[Finding]:
    if not in_determinism_scope(path):
        return []
    findings: List[Finding] = []

    def add(node: ast.AST, message: str) -> None:
        findings.append(Finding(
            rule="nondeterminism", path=path, line=node.lineno, message=message
        ))

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    add(node, "stdlib 'random' draws from unseeded global "
                             "state; use np.random.default_rng(seed)")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                add(node, "stdlib 'random' draws from unseeded global "
                         "state; use np.random.default_rng(seed)")
        elif isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted == "time.time":
                add(node, "time.time() is wall-clock; use "
                         "time.perf_counter() for intervals or take a "
                         "timestamp parameter")
            elif dotted.startswith("random."):
                add(node, f"{dotted}() uses the unseeded global RNG; use "
                         "np.random.default_rng(seed)")
            elif dotted.endswith("random.default_rng") or dotted == "default_rng":
                if not node.args and not node.keywords:
                    add(node, "np.random.default_rng() without a seed is "
                             "irreproducible; pass an explicit seed")
            elif ".random." in dotted or dotted.startswith("np.random"):
                member = dotted.rsplit(".", 1)[-1]
                if member not in _NP_RANDOM_OK:
                    add(node, f"{dotted}() samples numpy's global RNG; use "
                             "a np.random.default_rng(seed) Generator")
    return findings
