"""Finding records and the rule catalog shared by every statan checker."""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

#: Rule id -> one-line description.  ``statan``'s analysis rules are the
#: first five; the remaining ids are *meta* rules the engine itself
#: emits about suppressions and the baseline — they cannot be
#: suppressed, otherwise a stale allowlist could silence itself.
RULES: Dict[str, str] = {
    "guarded-by": (
        "attribute annotated '# guarded-by: <lock>' accessed outside a "
        "'with self.<lock>:' block of its class"
    ),
    "scratch-escape": (
        "arena-backed buffer or scratch row view escapes a function "
        "(returned, stored on self, or delivered) without .copy()"
    ),
    "nondeterminism": (
        "wall-clock or unseeded randomness inside core/, gpusim/, or "
        "baselines/ (time.time, random.*, np.random.default_rng())"
    ),
    "silent-except": (
        "bare 'except:' or 'except Exception: pass' swallows errors"
    ),
    "mutable-default": (
        "mutable default argument ([], {}, set()) shared across calls"
    ),
    "lock-order": (
        "cycle in the whole-program lock acquisition (may-acquire) "
        "graph — two threads taking the locks in different orders can "
        "deadlock"
    ),
    "crash-safety": (
        "durable write in outofcore/ or planner/ outside the tmp-write "
        "-> fsync -> rename shape (torn or empty file after a crash)"
    ),
    "parse-error": (
        "file does not parse or cannot be read; nothing was checked"
    ),
    "suppression-missing-reason": (
        "'# statan: ignore[...]' without a '-- reason' clause"
    ),
    "unused-suppression": (
        "'# statan: ignore[...]' that suppresses no finding (expired)"
    ),
    "unknown-rule": (
        "suppression or baseline entry names a rule statan does not have"
    ),
    "stale-baseline": (
        "baseline.toml entry that no longer matches any finding"
    ),
}

#: Meta rules are emitted by the engine and are never suppressable.
META_RULES = frozenset(
    {
        "parse-error",
        "suppression-missing-reason",
        "unused-suppression",
        "unknown-rule",
        "stale-baseline",
    }
)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One statan diagnostic, pinned to ``file:line``."""

    rule: str
    path: str
    line: int
    message: str
    #: ``module.Class.method`` the finding sits in (baseline key part).
    qualname: Optional[str] = None

    @property
    def baseline_key(self) -> str:
        """``path::qualname`` — how ``baseline.toml`` names an escape."""
        return f"{self.path}::{self.qualname or '<module>'}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "qualname": self.qualname,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"
