"""Crash-safety lint for durable-write paths (spill and calibration).

The out-of-core tier's whole resumability story rests on one shape:
**tmp-write → fsync → rename**.  A chunk or manifest written with a
bare ``open(path, "w")`` can be torn by a crash mid-write, and a
rename without an fsync can land an *empty* file after power loss —
the manifest then points at garbage and the "resume from checkpoint"
promise is broken.

This pass checks every function in the durable-write scope
(``repro/outofcore/`` and ``repro/planner/`` — the spill store and the
calibration profile cache) for that shape:

* a write-mode ``open()`` / ``os.fdopen()`` in a function with **no**
  ``os.replace`` / ``os.rename`` is a bare durable write (the data is
  written in place; a crash tears it);
* a write in a function that renames but never calls ``os.fsync`` /
  ``os.fdatasync`` is renamed-without-fsync (the rename can be durable
  before the data is);
* ``Path.write_text`` / ``Path.write_bytes`` are always flagged in
  scope — they cannot express the staged shape at all.

Read-mode opens are exempt.  Functions, not files, are the unit: the
repo's idiom stages and renames inside one function
(``_atomic_write_bytes``, ``commit_chunk``), so a function-local check
matches how the code is actually written while staying simple enough
to trust.  A legitimately non-durable write (a debug dump) takes a
same-line ``# statan: ignore[crash-safety] -- reason``.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Set

from .findings import Finding

__all__ = ["check_crash_safety"]

#: Files whose writes must be durable: the spill store and the
#: calibration profile cache (both are consulted on resume).
_SCOPE_RE = re.compile(r"(^|/)repro/(outofcore|planner)/")

_WRITE_MODE_RE = re.compile(r"[wax+]")


def _call_name(func: ast.AST) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _dotted(func: ast.AST) -> str:
    """``os.replace`` for ``Attribute(Name('os'), 'replace')``, else ''. """
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
    ):
        return f"{func.value.id}.{func.attr}"
    return ""


def _open_mode(call: ast.Call) -> Optional[str]:
    """The mode string of an ``open``/``fdopen`` call, if statically known."""
    name = _call_name(call.func)
    if name == "open":
        mode_pos = 1
    elif name == "fdopen":
        mode_pos = 1
    else:
        return None
    for kw in call.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
            value = kw.value.value
            return value if isinstance(value, str) else None
    if len(call.args) > mode_pos:
        arg = call.args[mode_pos]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return "r"  # open() without a mode reads


class _FunctionFacts:
    """Durability-relevant calls inside one function body."""

    def __init__(self) -> None:
        self.write_opens: List[ast.Call] = []
        self.path_writes: List[ast.Call] = []
        self.has_rename = False
        self.has_fsync = False


def _own_nodes(fn: ast.AST):
    """Every node of ``fn``'s body, not descending into nested defs."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


def _collect(fn: ast.AST) -> _FunctionFacts:
    facts = _FunctionFacts()
    for node in _own_nodes(fn):
        if not isinstance(node, ast.Call):
            continue
        mode = _open_mode(node)
        if mode is not None and _WRITE_MODE_RE.search(mode):
            facts.write_opens.append(node)
        name = _call_name(node.func)
        if name in ("write_text", "write_bytes"):
            facts.path_writes.append(node)
        dotted = _dotted(node.func)
        if dotted in ("os.replace", "os.rename"):
            facts.has_rename = True
        if dotted in ("os.fsync", "os.fdatasync"):
            facts.has_fsync = True
    return facts


def _functions(tree: ast.Module):
    """Every (qualname, function node) in the module, classes included."""

    def walk(node: ast.AST, prefix: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield (qualname, child)
                yield from walk(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)

    yield from walk(tree, "")


def check_crash_safety(tree: ast.Module, path: str) -> List[Finding]:
    if not _SCOPE_RE.search(path):
        return []
    findings: List[Finding] = []
    seen: Set[int] = set()
    for qualname, fn in _functions(tree):
        if id(fn) in seen:
            continue
        seen.add(id(fn))
        facts = _collect(fn)
        for call in facts.path_writes:
            findings.append(Finding(
                rule="crash-safety",
                path=path,
                line=call.lineno,
                message=(
                    "Path.write_text/write_bytes on a durable path cannot "
                    "stage through tmp-write -> fsync -> rename; use "
                    "_atomic_write_bytes or the open/fsync/os.replace shape"
                ),
                qualname=qualname,
            ))
        for call in facts.write_opens:
            if not facts.has_rename:
                findings.append(Finding(
                    rule="crash-safety",
                    path=path,
                    line=call.lineno,
                    message=(
                        f"bare durable write in {qualname}: open(..., "
                        "write mode) with no os.replace/os.rename in the "
                        "function — a crash mid-write tears the file; "
                        "write a tmp file, fsync it, then os.replace"
                    ),
                    qualname=qualname,
                ))
            elif not facts.has_fsync:
                findings.append(Finding(
                    rule="crash-safety",
                    path=path,
                    line=call.lineno,
                    message=(
                        f"rename without fsync in {qualname}: the rename "
                        "can become durable before the data does (an empty "
                        "file after power loss); os.fsync the tmp file "
                        "before os.replace"
                    ),
                    qualname=qualname,
                ))
    return findings
