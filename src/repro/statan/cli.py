"""``repro statan`` — the CLI face of the analysis suite.

Used three ways:

* ``make lint`` / CI gate: ``repro statan src`` — exit 1 on any finding;
* machine consumption: ``--format=json`` (``statan/v1`` schema);
* pre-commit: ``--changed`` analyzes only files named by
  ``git diff --name-only HEAD`` (staleness of the baseline is not
  checked on partial runs).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import DEFAULT_BASELINE_PATH, load_baseline
from .engine import analyze_paths

__all__ = ["add_statan_arguments", "run_statan"]


def add_statan_arguments(parser) -> None:
    """Attach statan's options to an argparse (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="analyze only files changed vs HEAD (git diff --name-only); "
             "fast pre-commit mode, skips baseline staleness checking",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="TOML",
        help=f"allowlist file (default: {DEFAULT_BASELINE_PATH})",
    )
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="directory findings paths are reported relative to "
             "(default: current directory)",
    )
    parser.add_argument(
        "--lock-graph", action="store_true",
        help="print the whole-program may-acquire lock graph as JSON "
             "(statan-lockgraph/v1) instead of findings, and exit 0; "
             "diffable against the runtime-observed graph",
    )


def _changed_files(root: Path) -> List[Path]:
    """Python files changed vs HEAD (staged + unstaged + untracked)."""
    out: List[Path] = []
    for args in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        proc = subprocess.run(
            args, cwd=root, capture_output=True, text=True, check=False
        )
        if proc.returncode != 0:
            detail = proc.stderr.strip() or "not a git repository?"
            raise RuntimeError(f"{' '.join(args)} failed: {detail}")
        for line in proc.stdout.splitlines():
            line = line.strip()
            if line.endswith(".py"):
                out.append(root / line)
    return sorted({p.resolve(): p for p in out if p.exists()}.values())


def _lock_graph_json(paths: List[Path], root: Path) -> str:
    """The static may-acquire graph over ``paths``, as JSON."""
    import ast

    from .engine import _HYGIENE_ONLY_RE, iter_python_files
    from .lockorder import build_lock_graph

    trees = {}
    for file_path in iter_python_files(paths):
        try:
            label = file_path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            label = file_path.as_posix()
        if _HYGIENE_ONLY_RE.search(label):
            continue
        try:
            source = file_path.read_text(encoding="utf-8")
            trees[label] = ast.parse(source)
        except (OSError, SyntaxError):
            continue  # parse-errors are the findings run's business
    return build_lock_graph(trees).as_json()


def run_statan(args) -> int:
    """Execute the subcommand; returns the process exit code."""
    root = Path(args.root) if args.root else Path.cwd()
    baseline_path = Path(args.baseline) if args.baseline else None
    baseline = load_baseline(baseline_path)

    if args.changed:
        try:
            paths = _changed_files(root)
        except RuntimeError as exc:
            print(f"statan: {exc}", file=sys.stderr)
            return 2
        if not paths:
            print("statan: CLEAN — no changed python files")
            return 0
    else:
        paths = [Path(p) for p in args.paths]
        missing = [p for p in paths if not p.exists()]
        if missing:
            print(
                f"statan: no such path(s): "
                f"{', '.join(str(p) for p in missing)}",
                file=sys.stderr,
            )
            return 2

    if getattr(args, "lock_graph", False):
        print(_lock_graph_json(paths, root))
        return 0

    result = analyze_paths(
        paths,
        root=root,
        baseline=baseline,
        check_baseline_staleness=not args.changed,
    )
    if args.format == "json":
        print(result.as_json())
    else:
        print(result.render_text())
    return 0 if result.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.statan.cli``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro statan",
        description="project-native static analysis (see docs/static-analysis.md)",
    )
    add_statan_arguments(parser)
    return run_statan(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
