"""The checked allowlist: ``statan/baseline.toml``.

The scratch-escape rule is intentionally strict — handing out a view of
reused storage is only correct when a *documented contract* covers it
(``SortResult.scratch``, the ``copy=False`` demux hand-out, the
streaming ``on_batch`` window).  Those contracts are named here, one
entry per escaping function:

.. code-block:: toml

    [["scratch-escape"]]
    key = "src/repro/core/array_sort.py::GpuArraySort.sort"
    reason = "SortResult.scratch=True: batch valid until next sort()"

The baseline is *checked* both ways: an escape not in the baseline is a
finding, and a baseline entry matching no finding is a
``stale-baseline`` finding — the allowlist can never rot silently.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, List, Optional

from .findings import RULES, Finding

#: Shipped allowlist, next to this module.
DEFAULT_BASELINE_PATH = Path(__file__).resolve().parent / "baseline.toml"


@dataclasses.dataclass
class BaselineEntry:
    """One allowlisted finding site."""

    rule: str
    key: str  # "path::qualname", path repo-relative with forward slashes
    reason: str
    used: bool = False


@dataclasses.dataclass
class Baseline:
    """All allowlist entries, keyed ``(rule, path::qualname)``."""

    entries: Dict[str, BaselineEntry] = dataclasses.field(default_factory=dict)
    path: Optional[str] = None

    @staticmethod
    def _key(rule: str, baseline_key: str) -> str:
        return f"{rule}|{baseline_key}"

    def add(self, entry: BaselineEntry) -> None:
        self.entries[self._key(entry.rule, entry.key)] = entry

    def covers(self, finding: Finding) -> bool:
        """True (and marks the entry used) when ``finding`` is allowlisted."""
        entry = self.entries.get(self._key(finding.rule, finding.baseline_key))
        if entry is None or not entry.reason:
            return False
        entry.used = True
        return True

    def problems(self) -> List[Finding]:
        """Meta findings: unknown rules, missing reasons, stale entries."""
        out: List[Finding] = []
        path = self.path or str(DEFAULT_BASELINE_PATH)
        for entry in self.entries.values():
            if entry.rule not in RULES:
                out.append(Finding(
                    rule="unknown-rule", path=path, line=0,
                    message=(
                        f"baseline entry {entry.key!r} names unknown rule "
                        f"{entry.rule!r}"
                    ),
                ))
            elif not entry.reason:
                out.append(Finding(
                    rule="suppression-missing-reason", path=path, line=0,
                    message=(
                        f"baseline entry {entry.key!r} has no reason; name "
                        "the contract that makes the escape safe"
                    ),
                ))
            elif not entry.used:
                out.append(Finding(
                    rule="stale-baseline", path=path, line=0,
                    message=(
                        f"baseline entry {entry.key!r} ({entry.rule}) matched "
                        "no finding; delete it"
                    ),
                ))
        return out


def load_baseline(path: Optional[Path] = None) -> Baseline:
    """Parse ``baseline.toml`` (stdlib ``tomllib``; empty when absent)."""
    import tomllib

    resolved = Path(path) if path is not None else DEFAULT_BASELINE_PATH
    baseline = Baseline(path=str(resolved))
    if not resolved.exists():
        return baseline
    with open(resolved, "rb") as handle:
        data = tomllib.load(handle)
    for rule, rows in data.items():
        if not isinstance(rows, list):
            raise ValueError(
                f"{resolved}: expected [[{rule!r}]] array-of-tables, got "
                f"{type(rows).__name__}"
            )
        for row in rows:
            baseline.add(BaselineEntry(
                rule=str(rule),
                key=str(row.get("key", "")),
                reason=str(row.get("reason", "")).strip(),
            ))
    return baseline
