"""The statan engine: discover files, run rules, apply suppressions.

Pipeline per file: parse → run the per-file analysis rules → drop
findings silenced by a valid same-line ``# statan: ignore[rule] --
reason`` comment → drop findings covered by a ``baseline.toml`` entry.
Then the engine audits the silencers themselves: reason-less
suppressions are *ineffective* (the original finding stays **and** a
``suppression-missing-reason`` finding is added), unused suppressions
and stale baseline entries are findings, unknown rule names are
findings.  Meta findings cannot be suppressed — an allowlist must never
be able to silence its own decay.

Two scopes of analysis:

* ``src`` trees get the full rule set, including the whole-program
  lock-order pass (:mod:`repro.statan.lockorder`), which runs once
  over *all* parsed files because its edges span modules;
* ``benchmarks/`` files get the hygiene and determinism rules only —
  bench harnesses legitimately return views, hold no annotated locks,
  and write throwaway artifacts, but they must still be deterministic
  and must not swallow errors.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .baseline import Baseline
from .crashsafety import check_crash_safety
from .determinism import check_nondeterminism
from .findings import META_RULES, RULES, Finding
from .guarded_by import check_guarded_by
from .hygiene import check_mutable_default, check_silent_except
from .lockorder import check_lock_order
from .scratch_escape import check_scratch_escape
from .suppress import CommentMarkers, scan_markers

__all__ = ["AnalysisResult", "analyze_paths", "analyze_source",
           "iter_python_files"]

#: Paths analyzed hygiene/determinism-only (no concurrency/lifetime
#: rules): benchmark harnesses.
_HYGIENE_ONLY_RE = re.compile(r"(^|/)benchmarks/")


@dataclasses.dataclass
class AnalysisResult:
    """Everything one statan run produced."""

    findings: List[Finding]
    files_analyzed: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_rule(self) -> dict:
        counts: dict = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def as_json(self) -> str:
        return json.dumps(
            {
                "schema": "statan/v1",
                "files_analyzed": self.files_analyzed,
                "findings": [f.as_dict() for f in self.findings],
                "by_rule": self.by_rule(),
                "clean": self.clean,
            },
            indent=2,
            sort_keys=True,
        )

    def render_text(self) -> str:
        if self.clean:
            return (
                f"statan: CLEAN — {self.files_analyzed} file(s), "
                "0 findings"
            )
        lines = [str(f) for f in self.findings]
        summary = ", ".join(
            f"{rule}={count}" for rule, count in sorted(self.by_rule().items())
        )
        lines.append(
            f"statan: {len(self.findings)} finding(s) in "
            f"{self.files_analyzed} file(s) ({summary})"
        )
        return "\n".join(lines)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories to ``.py`` files, sorted, deduplicated."""
    seen = set()
    for path in paths:
        path = Path(path)
        candidates: Iterable[Path]
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _file_rule_findings(
    tree: ast.Module, path: str, markers: CommentMarkers
) -> List[Finding]:
    """Raw per-file findings, scoped by path (see module docstring)."""
    raw: List[Finding] = []
    raw.extend(check_nondeterminism(tree, path))
    raw.extend(check_silent_except(tree, path))
    raw.extend(check_mutable_default(tree, path))
    if not _HYGIENE_ONLY_RE.search(path):
        raw.extend(check_guarded_by(tree, path, markers))
        raw.extend(check_scratch_escape(tree, path, markers))
        raw.extend(check_crash_safety(tree, path))
    return raw


def _apply_suppressions(
    raw: List[Finding],
    markers: CommentMarkers,
    baseline: Optional[Baseline],
) -> List[Finding]:
    """Drop suppressed/baselined findings, marking suppressions used."""
    by_line = markers.suppressions_by_line()
    kept: List[Finding] = []
    for finding in raw:
        suppressed = False
        if finding.rule not in META_RULES:
            for sup in by_line.get(finding.line, []):
                if finding.rule in sup.rules:
                    sup.used = True
                    if sup.reason:
                        suppressed = True
                    # A reason-less suppression is ineffective: the
                    # finding stays, and the meta audit below flags it.
        if suppressed:
            continue
        if baseline is not None and baseline.covers(finding):
            continue
        kept.append(finding)
    return kept


def _audit_markers(markers: CommentMarkers, path: str) -> List[Finding]:
    """Meta findings about the file's suppression comments themselves."""
    found: List[Finding] = []
    for sup in markers.suppressions:
        for rule in sup.rules:
            if rule not in RULES:
                found.append(Finding(
                    rule="unknown-rule", path=path, line=sup.line,
                    message=f"suppression names unknown rule {rule!r}",
                ))
            elif rule in META_RULES:
                found.append(Finding(
                    rule="unknown-rule", path=path, line=sup.line,
                    message=(
                        f"meta rule {rule!r} cannot be suppressed (the "
                        "allowlist must not silence its own audit)"
                    ),
                ))
        if not sup.reason:
            found.append(Finding(
                rule="suppression-missing-reason", path=path, line=sup.line,
                message=(
                    "suppression has no reason; write "
                    "'# statan: ignore[rule] -- why this is safe'"
                ),
            ))
        elif not sup.used:
            found.append(Finding(
                rule="unused-suppression", path=path, line=sup.line,
                message=(
                    "suppression matches no finding (expired); delete it"
                ),
            ))
    return found


def analyze_source(
    source: str,
    path: str,
    *,
    baseline: Optional[Baseline] = None,
) -> List[Finding]:
    """Run every rule over one source string; ``path`` scopes and labels.

    Returns post-suppression findings, including the meta findings about
    this file's suppression comments.  The lock-order pass sees only
    this one file here (single-module cycles); cross-module edges need
    :func:`analyze_paths`.  Baseline staleness is a *run* property —
    :func:`analyze_paths` checks it, not this.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding(
            rule="parse-error", path=path, line=exc.lineno or 0,
            message=f"file does not parse: {exc.msg}",
        )]
    markers = scan_markers(source)
    raw = _file_rule_findings(tree, path, markers)
    if not _HYGIENE_ONLY_RE.search(path):
        raw.extend(check_lock_order({path: tree}))
    kept = _apply_suppressions(raw, markers, baseline)
    kept.extend(_audit_markers(markers, path))
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept


def analyze_paths(
    paths: Sequence[Path],
    *,
    root: Optional[Path] = None,
    baseline: Optional[Baseline] = None,
    check_baseline_staleness: bool = True,
) -> AnalysisResult:
    """Analyze files/directories; paths in findings are ``root``-relative.

    The lock-order pass runs once over every parsed (non-benchmark)
    file, because its edges cross modules — then its findings flow
    through the owning file's suppressions and the baseline exactly
    like per-file findings.

    ``check_baseline_staleness=False`` is for partial runs (``--changed``):
    an entry for an unanalyzed file is not stale evidence.
    """
    root = Path(root) if root is not None else Path.cwd()
    findings: List[Finding] = []
    files = 0
    parsed: List[Tuple[str, ast.Module, CommentMarkers, List[Finding]]] = []
    for file_path in iter_python_files(paths):
        try:
            label = file_path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            label = file_path.as_posix()
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(Finding(
                rule="parse-error", path=label, line=0,
                message=f"unreadable file: {exc}",
            ))
            continue
        files += 1
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            findings.append(Finding(
                rule="parse-error", path=label, line=exc.lineno or 0,
                message=f"file does not parse: {exc.msg}",
            ))
            continue
        markers = scan_markers(source)
        parsed.append((
            label, tree, markers, _file_rule_findings(tree, label, markers)
        ))

    lock_trees: Dict[str, ast.Module] = {
        label: tree for label, tree, _, _ in parsed
        if not _HYGIENE_ONLY_RE.search(label)
    }
    lock_findings_by_path: Dict[str, List[Finding]] = {}
    for finding in check_lock_order(lock_trees):
        lock_findings_by_path.setdefault(finding.path, []).append(finding)

    for label, _tree, markers, raw in parsed:
        raw = raw + lock_findings_by_path.get(label, [])
        kept = _apply_suppressions(raw, markers, baseline)
        kept.extend(_audit_markers(markers, label))
        findings.extend(kept)

    if baseline is not None:
        problems = baseline.problems()
        if not check_baseline_staleness:
            problems = [p for p in problems if p.rule != "stale-baseline"]
        findings.extend(problems)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return AnalysisResult(findings=findings, files_analyzed=files)
