"""The guarded-by checker: lock discipline as an enforced annotation.

A class declares which of its attributes a lock protects by trailing
the attribute's ``__init__`` assignment with a comment::

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pools = {}      # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

Every other read or write of ``self._pools`` / ``self._closed``
*anywhere in the class* must then sit lexically inside a
``with self._lock:`` block.  Conventions the checker understands:

* ``# guarded-by: _wakeup, _lock`` — holding **any** listed lock
  suffices;
* ``self._wakeup = threading.Condition(self._lock)`` makes holding
  ``_wakeup`` count as holding ``_lock`` automatically (acquiring the
  condition IS acquiring the lock — the runtime sanitizer resolves the
  same alias via the condition's underlying lock object);
* ``__init__`` is exempt (construction happens-before publication);
* methods whose name ends in ``_locked`` are exempt — the suffix is
  this repo's contract for "caller already holds the lock";
* nested functions and lambdas are analyzed with **no** locks held:
  a closure may run after the enclosing ``with`` exits.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Tuple

from .findings import Finding
from .suppress import CommentMarkers

__all__ = ["check_guarded_by"]


def _self_attr(node: ast.AST) -> str:
    """``X`` for ``self.X`` expressions, else ``""``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _guarded_attrs(
    cls: ast.ClassDef, markers: CommentMarkers
) -> Dict[str, Tuple[str, ...]]:
    """Map annotated attribute name -> acceptable lock names, from __init__."""
    guarded: Dict[str, Tuple[str, ...]] = {}
    for method in cls.body:
        if not isinstance(method, ast.FunctionDef) or method.name != "__init__":
            continue
        for node in ast.walk(method):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            locks = markers.guarded_by.get(node.lineno)
            if locks is None:
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attr = _self_attr(target)
                if attr:
                    guarded[attr] = locks
    return guarded


def _condition_aliases(cls: ast.ClassDef) -> Dict[str, str]:
    """``{condition attr: underlying lock attr}`` from Condition(self.X)."""
    aliases: Dict[str, str] = {}
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            call = node.value
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, (ast.Attribute, ast.Name))
            ):
                continue
            name = (
                call.func.attr
                if isinstance(call.func, ast.Attribute)
                else call.func.id
            )
            if name != "Condition" or not call.args:
                continue
            underlying = _self_attr(call.args[0])
            if not underlying:
                continue
            for target in node.targets:
                attr = _self_attr(target)
                if attr:
                    aliases[attr] = underlying
    return aliases


def _with_locks(stmt: ast.With, aliases: Dict[str, str]) -> FrozenSet[str]:
    """Lock attribute names acquired by ``with self.<name>: ...``.

    Acquiring a Condition built over another lock acquires that lock:
    both names count as held.
    """
    names = set()
    for item in stmt.items:
        attr = _self_attr(item.context_expr)
        if attr:
            names.add(attr)
            if attr in aliases:
                names.add(aliases[attr])
    return frozenset(names)


class _MethodChecker:
    """Walk one method, tracking which ``self.<lock>`` are lexically held."""

    def __init__(
        self,
        guarded: Dict[str, Tuple[str, ...]],
        aliases: Dict[str, str],
        cls_name: str,
        method_name: str,
        path: str,
        findings: List[Finding],
    ) -> None:
        self.guarded = guarded
        self.aliases = aliases
        self.qualname = f"{cls_name}.{method_name}"
        self.path = path
        self.findings = findings

    def run(self, fn: ast.AST, held: FrozenSet[str]) -> None:
        for child in ast.iter_child_nodes(fn):
            self._visit(child, held)

    def _visit(self, node: ast.AST, held: FrozenSet[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A closure can outlive the with-block: locks held here do
            # not guard its eventual execution.
            self.run(node, frozenset())
            return
        if isinstance(node, ast.With):
            inner = held | _with_locks(node, self.aliases)
            for item in node.items:
                self._visit(item.context_expr, held)
            for stmt in node.body:
                self._visit(stmt, inner)
            return
        attr = _self_attr(node)
        if attr:
            locks = self.guarded.get(attr)
            if locks is not None and not (held & set(locks)):
                want = " or ".join(f"self.{name}" for name in locks)
                self.findings.append(Finding(
                    rule="guarded-by",
                    path=self.path,
                    line=node.lineno,
                    message=(
                        f"self.{attr} is guarded by {want} but is accessed "
                        f"without holding it in {self.qualname}"
                    ),
                    qualname=self.qualname,
                ))
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)


def check_guarded_by(
    tree: ast.Module, path: str, markers: CommentMarkers
) -> List[Finding]:
    findings: List[Finding] = []
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        guarded = _guarded_attrs(cls, markers)
        if not guarded:
            continue
        aliases = _condition_aliases(cls)
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__" or method.name.endswith("_locked"):
                continue
            _MethodChecker(
                guarded, aliases, cls.name, method.name, path, findings
            ).run(method, frozenset())
    return findings
