"""Checked-build concurrency sanitizer: statan's contracts, at runtime.

statan's static passes (``guarded_by``, ``scratch_escape``, the
whole-program lock-order analysis) prove what they can from the AST;
this module enforces the same contracts on a *running* process, the way
TSan/Eraser complement a compiler's lock annotations.  Three detectors:

* **Lockset / guarded-by** — :func:`sanitize_guarded` installs data
  descriptors for every attribute annotated ``# guarded-by: <lock>`` in
  a class's ``__init__``, and :func:`make_lock` / :func:`make_rlock`
  return instrumented locks that maintain a per-thread held-lock stack.
  An access to a guarded attribute without any acceptable lock held
  raises :class:`GuardedAccessError` carrying *both* stacks: the
  violating access and the most recent access from another thread.
* **Lock order** — every instrumented acquisition records edges
  ``held lock -> acquired lock`` in a global graph (with the stack that
  first created each edge).  An acquisition that completes a cycle
  raises :class:`LockOrderError` naming the cycle and showing the
  conflicting first-seen stacks.  The observed graph is exported by
  :func:`lock_order_edges` so tests can diff it against the static
  may-acquire graph (:mod:`repro.statan.lockorder`).
* **View lifetime** — zero-copy hazards are modeled as *epochs* on
  named regions.  Producers call :func:`new_epoch` when storage is
  about to be reused (ScratchArena handing out the same pooled buffer,
  the service dispatching its next batch, a spill chunk being
  recommitted) and :func:`track_view` to wrap the views they hand out;
  any element access through a wrapped view whose region has moved on
  raises :class:`StaleViewError` with the creation and invalidation
  stacks.  :func:`guard_readonly` additionally write-protects regions
  one side of a protocol must never touch (the fleet's input slab
  half).

Everything is gated on ``REPRO_SANITIZE=1`` (or :func:`enable` in
tests).  When disabled — the default — every hook is a cheap boolean
check or an identity function: ``make_lock`` returns a plain
``threading.Lock``, ``sanitize_guarded`` returns the class untouched,
``track_view`` returns its argument.  ``make sanitize`` runs the
concurrency test subset with the environment variable set.

Violations raise by default (a checked build should fail loudly at the
bug, not at the end); :func:`set_raise_on_violation` switches to
record-only mode, and every violation — raised or not — is appended to
the report readable via :func:`violations`.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "GuardedAccessError",
    "LockOrderError",
    "RegionWriteError",
    "SanitizerError",
    "StaleViewError",
    "enable",
    "disable",
    "enabled",
    "guard_readonly",
    "lock_order_edges",
    "make_lock",
    "make_rlock",
    "new_epoch",
    "reset",
    "sanitize_guarded",
    "set_raise_on_violation",
    "track_view",
    "violations",
]

_ENV_VAR = "REPRO_SANITIZE"
_STACK_LIMIT = 12


def _env_enabled() -> bool:
    return os.environ.get(_ENV_VAR, "").strip().lower() not in (
        "", "0", "false", "no", "off",
    )


class _State:
    """All sanitizer bookkeeping; guarded by ``meta_lock`` (leaf lock)."""

    def __init__(self) -> None:
        self.enabled = _env_enabled()
        self.raise_on_violation = True
        self.meta_lock = threading.Lock()
        self.violations: List["SanitizerError"] = []
        #: (held name, acquired name) -> first-seen stack string.
        self.lock_edges: Dict[Tuple[str, str], str] = {}
        #: region key -> (epoch, stack that invalidated the previous one).
        self.regions: Dict[object, Tuple[int, str]] = {}
        #: (object id, attr) -> (thread name, stack) of the last access.
        self.last_access: Dict[Tuple[int, str], Tuple[str, str]] = {}
        #: read-only region labels, for reporting.
        self.readonly_regions: List[str] = []


_STATE = _State()
_HELD = threading.local()  # .stack: List[_SanitizedLockBase]


def _held_stack() -> List["_SanitizedLockBase"]:
    stack = getattr(_HELD, "stack", None)
    if stack is None:
        stack = []
        _HELD.stack = stack
    return stack


def _format_stack(skip: int = 2) -> str:
    """The current stack rendered compactly, dropping sanitizer frames.

    Walks frames directly instead of ``traceback.format_stack`` — this
    runs on every guarded access in a sanitized build, so it must be
    cheap (no source-line reads).
    """
    import sys

    try:
        frame = sys._getframe(skip)
    except ValueError:
        frame = sys._getframe(1)
    parts = []
    while frame is not None and len(parts) < _STACK_LIMIT:
        code = frame.f_code
        parts.append(f"  {code.co_filename}:{frame.f_lineno} in {code.co_name}")
        frame = frame.f_back
    return "\n".join(parts)


# -- switches ---------------------------------------------------------------

def enabled() -> bool:
    """Is the sanitizer active for this process?"""
    return _STATE.enabled


def enable() -> None:
    """Turn the sanitizer on (tests; production uses ``REPRO_SANITIZE=1``)."""
    _STATE.enabled = True


def disable() -> None:
    _STATE.enabled = False


def set_raise_on_violation(flag: bool) -> None:
    """``False`` switches to record-only mode (see :func:`violations`)."""
    _STATE.raise_on_violation = bool(flag)


def violations() -> List["SanitizerError"]:
    """Every violation recorded since the last :func:`reset`."""
    with _STATE.meta_lock:
        return list(_STATE.violations)


def reset() -> None:
    """Clear recorded violations, the lock-order graph, and region epochs."""
    with _STATE.meta_lock:
        _STATE.violations.clear()
        _STATE.lock_edges.clear()
        _STATE.regions.clear()
        _STATE.last_access.clear()
        _STATE.readonly_regions.clear()


# -- violations -------------------------------------------------------------

class SanitizerError(RuntimeError):
    """Base of every sanitizer violation.

    ``report`` is a plain-data dict (strings/ints only) so it survives
    the fleet's ``(kind, message, fields)`` error serialization.
    """

    check = "sanitizer"

    def __init__(self, message: str, report: Optional[Dict[str, object]] = None):
        super().__init__(message)
        self.report: Dict[str, object] = dict(report or {})
        self.report.setdefault("check", self.check)
        self.report.setdefault("message", message)


class GuardedAccessError(SanitizerError):
    """Guarded attribute accessed without holding an acceptable lock."""

    check = "guarded-access"


class LockOrderError(SanitizerError):
    """A lock acquisition completed a cycle in the acquisition graph."""

    check = "lock-order"


class StaleViewError(SanitizerError):
    """A zero-copy view was used after its region's epoch moved on."""

    check = "stale-view"


class RegionWriteError(SanitizerError):
    """A write landed in a region registered read-only for this side."""

    check = "region-write"


def _record_violation(error: SanitizerError) -> None:
    with _STATE.meta_lock:
        _STATE.violations.append(error)
    if _STATE.raise_on_violation:
        raise error


# -- instrumented locks -----------------------------------------------------

class _SanitizedLockBase:
    """Shared acquire/release bookkeeping for both lock flavours.

    ``name`` should be ``ClassName._lockattr`` so runtime edges line up
    with the static may-acquire graph's node names.
    """

    __slots__ = ("name", "_inner")

    def __init__(self, name: str, inner) -> None:
        self.name = name
        self._inner = inner

    # threading.Condition(lock) support: Condition copies these.
    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} inner={self._inner!r}>"

    def _note_acquired(self) -> None:
        stack = _held_stack()
        held_names = [lock.name for lock in stack]
        if self.name not in held_names:
            for held in held_names:
                if held != self.name:
                    self._add_edge(held, self.name)
        stack.append(self)

    def _note_released(self) -> None:
        stack = _held_stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is self:
                del stack[i]
                break

    def _add_edge(self, held: str, acquired: str) -> None:
        edge = (held, acquired)
        with _STATE.meta_lock:
            if edge in _STATE.lock_edges:
                return
            here = _format_stack(skip=4)
            _STATE.lock_edges[edge] = here
            cycle = _find_cycle(_STATE.lock_edges, acquired, held)
        if cycle is not None:
            path = " -> ".join(cycle + [cycle[0]])
            with _STATE.meta_lock:
                stacks = {
                    f"{a}->{b}": _STATE.lock_edges.get((a, b), "")
                    for a, b in zip(cycle, cycle[1:] + [cycle[0]])
                }
            _record_violation(LockOrderError(
                f"lock acquisition order cycle: {path} (acquiring "
                f"{acquired!r} while holding {held!r})",
                report={
                    "cycle": path,
                    "edge": f"{held}->{acquired}",
                    "stacks": stacks,
                },
            ))

    def acquire(self, blocking: bool = True, timeout: float = -1):
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._note_acquired()
        return got

    def release(self) -> None:
        self._inner.release()
        self._note_released()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()


class SanitizedLock(_SanitizedLockBase):
    """Instrumented ``threading.Lock``."""

    __slots__ = ()

    def __init__(self, name: str) -> None:
        super().__init__(name, threading.Lock())


class SanitizedRLock(_SanitizedLockBase):
    """Instrumented ``threading.RLock`` (re-entry adds no edges)."""

    __slots__ = ()

    def __init__(self, name: str) -> None:
        super().__init__(name, threading.RLock())

    def _is_owned(self) -> bool:  # Condition(RLock) uses this fast path
        return self._inner._is_owned()


def _find_cycle(
    edges: Dict[Tuple[str, str], str], start: str, goal: str
) -> Optional[List[str]]:
    """A path ``start -> ... -> goal`` in ``edges`` (DFS), else ``None``.

    Called right after adding edge ``goal -> start``; a path back from
    ``start`` to ``goal`` therefore closes a cycle through that edge.
    """
    adjacency: Dict[str, List[str]] = {}
    for a, b in edges:
        adjacency.setdefault(a, []).append(b)
    path = [goal, start]
    seen = {start}

    def walk(node: str) -> Optional[List[str]]:
        for nxt in adjacency.get(node, ()):
            if nxt == goal:
                return list(path)
            if nxt not in seen:
                seen.add(nxt)
                path.append(nxt)
                found = walk(nxt)
                if found is not None:
                    return found
                path.pop()
        return None

    return walk(start)


def make_lock(name: str):
    """A lock for ``self.<attr> = make_lock("Class._attr")`` hook sites.

    Plain ``threading.Lock`` when the sanitizer is off (zero overhead,
    identical semantics); a :class:`SanitizedLock` when on.
    """
    if not _STATE.enabled:
        return threading.Lock()
    return SanitizedLock(name)


def make_rlock(name: str):
    """Re-entrant variant of :func:`make_lock`."""
    if not _STATE.enabled:
        return threading.RLock()
    return SanitizedRLock(name)


def holds(lock) -> bool:
    """Does the calling thread hold ``lock`` (instrumented locks only)?"""
    return any(held is lock for held in _held_stack())


def lock_order_edges() -> Dict[Tuple[str, str], str]:
    """Observed acquisition edges ``(held, acquired) -> first-seen stack``."""
    with _STATE.meta_lock:
        return dict(_STATE.lock_edges)


# -- guarded-by field checking ----------------------------------------------

def _resolve_lock(candidate):
    """The instrumented lock behind ``candidate`` (Condition unwraps)."""
    if isinstance(candidate, _SanitizedLockBase):
        return candidate
    inner = getattr(candidate, "_lock", None)  # threading.Condition
    if isinstance(inner, _SanitizedLockBase):
        return inner
    return None


class _GuardedField:
    """Data descriptor enforcing a guarded-by annotation at access time.

    Internal accesses (``self.X`` from a method of the owning instance)
    must hold one of the annotated locks; external reads are exempt,
    mirroring the static checker, which only examines ``self.X``
    expressions inside the class.  ``__init__`` is exempt via the
    published flag (construction happens-before publication).
    """

    __slots__ = ("attr", "locks", "slot", "cls_name")

    def __init__(self, cls_name: str, attr: str, locks: Sequence[str]) -> None:
        self.cls_name = cls_name
        self.attr = attr
        self.locks = tuple(locks)
        self.slot = f"_san_slot_{attr}"

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        self._check(obj, "read")
        try:
            return obj.__dict__[self.slot]
        except KeyError:
            raise AttributeError(self.attr) from None

    def __set__(self, obj, value) -> None:
        self._check(obj, "write")
        obj.__dict__[self.slot] = value

    def _check(self, obj, mode: str) -> None:
        import sys

        if not obj.__dict__.get("_san_published", False):
            return
        frame = sys._getframe(2)
        if frame.f_locals.get("self") is not obj:
            return  # external access — outside the annotation's contract
        for name in self.locks:
            lock = _resolve_lock(obj.__dict__.get(name))
            if lock is not None and holds(lock):
                self._note(obj)
                return
        key = (id(obj), self.attr)
        with _STATE.meta_lock:
            prev = _STATE.last_access.get(key)
        here = _format_stack(skip=3)
        other = ""
        if prev is not None and prev[0] != threading.current_thread().name:
            other = prev[1]
        want = " or ".join(f"self.{name}" for name in self.locks)
        _record_violation(GuardedAccessError(
            f"{self.cls_name}.{self.attr} ({mode}) without holding {want} "
            f"in thread {threading.current_thread().name!r}",
            report={
                "class": self.cls_name,
                "attr": self.attr,
                "mode": mode,
                "thread": threading.current_thread().name,
                "stack": here,
                "other_thread_stack": other,
            },
        ))
        self._note(obj)

    def _note(self, obj) -> None:
        key = (id(obj), self.attr)
        entry = (threading.current_thread().name, _format_stack(skip=4))
        with _STATE.meta_lock:
            _STATE.last_access[key] = entry


def _guarded_map_for_class(cls) -> Dict[str, Tuple[str, ...]]:
    """attr -> lock names, parsed from the class source annotations.

    Reuses the static checker's extraction (same comments, same
    semantics) so the runtime and static passes can never drift.
    """
    import ast
    import inspect
    import textwrap

    from .guarded_by import _guarded_attrs
    from .suppress import scan_markers

    try:
        source = textwrap.dedent(inspect.getsource(cls))
    except (OSError, TypeError):
        return {}
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return {}
    markers = scan_markers(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == cls.__name__:
            return _guarded_attrs(node, markers)
    return {}


def sanitize_guarded(cls=None, *, force: bool = False):
    """Class decorator enforcing ``# guarded-by`` annotations at runtime.

    Identity when the sanitizer is disabled at class-definition time
    (import time for product classes — ``REPRO_SANITIZE=1`` must be in
    the environment before import).  ``force=True`` instruments
    regardless; tests use it to build fixtures without flipping the
    global switch before importing the module under test.
    """

    def instrument(target):
        if not (_STATE.enabled or force):
            return target
        guarded = _guarded_map_for_class(target)
        if not guarded:
            return target
        for attr, locks in guarded.items():
            setattr(target, attr, _GuardedField(target.__name__, attr, locks))
        original_init = target.__init__

        def __init__(self, *args, **kwargs):
            self.__dict__["_san_published"] = False
            original_init(self, *args, **kwargs)
            self.__dict__["_san_published"] = True

        __init__.__wrapped__ = original_init
        __init__.__name__ = "__init__"
        target.__init__ = __init__
        target._san_guarded = dict(guarded)
        return target

    if cls is not None:
        return instrument(cls)
    return instrument


# -- view lifetime (epochs) -------------------------------------------------

def new_epoch(key: object, label: str = "") -> None:
    """Storage behind ``key`` is being reused; outstanding views go stale."""
    if not _STATE.enabled:
        return
    stack = _format_stack(skip=2)
    with _STATE.meta_lock:
        epoch, _ = _STATE.regions.get(key, (0, ""))
        _STATE.regions[key] = (epoch + 1, stack)


def _region_epoch(key: object) -> Tuple[int, str]:
    with _STATE.meta_lock:
        return _STATE.regions.setdefault(key, (0, ""))


class SanitizedView(np.ndarray):
    """An ndarray that checks its region's epoch on element access.

    Derived views (slices, reshapes) inherit the region; computed
    results (ufuncs, ``np.concatenate``...) are plain ndarrays — a copy
    of stale-checked data is by definition not stale.
    """

    def __array_finalize__(self, obj) -> None:
        if obj is not None and isinstance(obj, SanitizedView):
            self._san_key = getattr(obj, "_san_key", None)
            self._san_epoch = getattr(obj, "_san_epoch", 0)
            self._san_label = getattr(obj, "_san_label", "")
            self._san_created = getattr(obj, "_san_created", "")

    def _san_check(self) -> None:
        key = getattr(self, "_san_key", None)
        if key is None or not _STATE.enabled:
            return
        with _STATE.meta_lock:
            entry = _STATE.regions.get(key)
        if entry is None:
            return
        epoch, invalidated_at = entry
        if epoch != getattr(self, "_san_epoch", 0):
            _record_violation(StaleViewError(
                f"stale zero-copy view {self._san_label or key!r}: region "
                f"epoch moved {getattr(self, '_san_epoch', 0)} -> {epoch} "
                "(storage was reused; copy before the next dispatch/get)",
                report={
                    "label": str(self._san_label or key),
                    "view_epoch": int(getattr(self, "_san_epoch", 0)),
                    "region_epoch": int(epoch),
                    "created_at": str(getattr(self, "_san_created", "")),
                    "invalidated_at": invalidated_at,
                    "use_at": _format_stack(skip=3),
                },
            ))

    def __getitem__(self, item):
        self._san_check()
        return super().__getitem__(item)

    def __setitem__(self, item, value) -> None:
        self._san_check()
        super().__setitem__(item, value)

    def __array_ufunc__(self, ufunc, method, *inputs, out=None, **kwargs):
        for value in inputs:
            if isinstance(value, SanitizedView):
                value._san_check()
        plain_inputs = tuple(
            value.view(np.ndarray) if isinstance(value, SanitizedView) else value
            for value in inputs
        )
        if out is not None:
            for value in out:
                if isinstance(value, SanitizedView):
                    value._san_check()
            kwargs["out"] = tuple(
                value.view(np.ndarray)
                if isinstance(value, SanitizedView) else value
                for value in out
            )
        return getattr(ufunc, method)(*plain_inputs, **kwargs)

    def __array_function__(self, func, types, args, kwargs):
        def unwrap(value):
            if isinstance(value, SanitizedView):
                value._san_check()
                return value.view(np.ndarray)
            if isinstance(value, (list, tuple)):
                return type(value)(unwrap(v) for v in value)
            return value

        return func(*unwrap(list(args)), **{
            key: unwrap(value) for key, value in kwargs.items()
        })

    def copy(self, order="C"):
        self._san_check()
        return self.view(np.ndarray).copy(order)

    def astype(self, dtype, *args, **kwargs):
        self._san_check()
        return self.view(np.ndarray).astype(dtype, *args, **kwargs)


def track_view(array: np.ndarray, key: object, label: str = "") -> np.ndarray:
    """Wrap ``array`` so use after :func:`new_epoch(key)` is a violation.

    Identity when the sanitizer is off.  The wrapped array shares the
    original storage (``.base`` chains through), so zero-copy semantics
    are preserved.
    """
    if not _STATE.enabled:
        return array
    epoch, _ = _region_epoch(key)
    view = array.view(SanitizedView)
    view._san_key = key
    view._san_epoch = epoch
    view._san_label = label
    view._san_created = _format_stack(skip=2)
    return view


def guard_readonly(array: np.ndarray, label: str) -> np.ndarray:
    """Write-protect a region one side of a protocol must never touch.

    The fleet worker's input slab half, for instance: failover
    re-dispatch is only byte-correct because the worker never writes
    it.  NumPy raises ``ValueError`` on writes to a non-writeable
    array; the label is recorded so reports can name the region.
    """
    if not _STATE.enabled:
        return array
    array.flags.writeable = False
    with _STATE.meta_lock:
        _STATE.readonly_regions.append(label)
    return array
