"""Allow ``python -m repro`` as an alias for the ``gpu-arraysort`` CLI."""

import sys

from .cli import main

sys.exit(main())
