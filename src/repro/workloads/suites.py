"""Workload suite registry: named, reproducible experiment inputs.

Benchmarks, tests, the CLI and downstream users all need the same
datasets by name.  A :class:`WorkloadSpec` couples a generator with its
parameters and a documentation string; :data:`STANDARD_SUITE` covers the
paper's evaluation recipes plus the stress families DESIGN.md calls out.

>>> batch = get_workload("paper_uniform_small").generate(seed=1)
>>> batch.data.shape[1]
1000
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional

import numpy as np

from .datasets import ArrayBatch
from . import generators
from .spectra import generate_spectra

__all__ = ["WorkloadSpec", "STANDARD_SUITE", "get_workload", "list_workloads"]


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """A named, parameterized workload."""

    name: str
    description: str
    builder: Callable[..., np.ndarray]
    num_arrays: int
    array_size: int
    params: dict = dataclasses.field(default_factory=dict)

    def generate(self, *, seed: Optional[int] = 0,
                 num_arrays: Optional[int] = None,
                 array_size: Optional[int] = None) -> ArrayBatch:
        """Materialize the workload (shape overridable for scaling runs)."""
        N = num_arrays if num_arrays is not None else self.num_arrays
        n = array_size if array_size is not None else self.array_size
        data = self.builder(N, n, seed=seed, **self.params)
        return ArrayBatch(data, description=self.description, seed=seed)


def _spectra_intensity(N: int, n: int, *, seed=None, **params) -> np.ndarray:
    return generate_spectra(N, n, seed=seed, **params).intensity


STANDARD_SUITE: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        WorkloadSpec(
            "paper_uniform_small",
            "Section 7.2 recipe at laptop scale: uniform floats in "
            "[0, 2^31), n = 1000",
            generators.uniform_arrays, 2_000, 1000,
        ),
        WorkloadSpec(
            "paper_uniform_large_arrays",
            "Section 7.2's biggest arrays (n = 4000, the shared-memory "
            "limit of Section 4)",
            generators.uniform_arrays, 500, 4000,
        ),
        WorkloadSpec(
            "spectra_intensity",
            "synthetic tandem-MS spectra, intensity view (the paper's "
            "motivating data)",
            _spectra_intensity, 1_000, 2000,
        ),
        WorkloadSpec(
            "presorted",
            "already-sorted rows: insertion-sort best case",
            generators.sorted_arrays, 2_000, 1000,
        ),
        WorkloadSpec(
            "reverse_sorted",
            "descending rows: per-bucket insertion-sort worst case",
            generators.reverse_sorted_arrays, 2_000, 1000,
        ),
        WorkloadSpec(
            "nearly_sorted",
            "sorted rows perturbed by pre-processing (Section 9's "
            "motivation)",
            generators.nearly_sorted_arrays, 2_000, 1000,
        ),
        WorkloadSpec(
            "duplicate_heavy",
            "8 distinct values: splitter-tie torture",
            generators.duplicate_heavy_arrays, 2_000, 1000,
        ),
        WorkloadSpec(
            "clustered",
            "tight value clusters: regular-sampling stress (Section 9 "
            "multi-sampling motivation)",
            generators.clustered_arrays, 2_000, 1000,
        ),
    ]
}


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload by name; raises with choices on a miss."""
    try:
        return STANDARD_SUITE[name]
    except KeyError:
        known = ", ".join(sorted(STANDARD_SUITE))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None


def list_workloads() -> Dict[str, str]:
    """Mapping of workload name -> description."""
    return {name: spec.description for name, spec in sorted(STANDARD_SUITE.items())}
