"""Synthetic mass-spectrometry spectra (the paper's motivating workload).

The paper's design targets proteomics datasets: "each spectrum can have up
to 4000 peaks including the background noise and peaks due to impurities"
(Section 4), and downstream algorithms "require these spectra to be sorted
either with respect to intensities or mass to charge ratios" (Section 1).

This generator produces a plausible synthetic stand-in (DESIGN.md section
2's substitution table): each spectrum mixes

* a few dozen *true peptide-fragment peaks* — high intensity, clustered
  around fragment-ladder m/z positions,
* *impurity peaks* — moderate intensity at random positions,
* dense low-intensity *background noise* across the m/z range.

Peaks arrive in acquisition (roughly m/z-interleaved) order, so neither
the intensity view nor the m/z view is sorted — the batch sorter has real
work on both.  Only distributional properties matter to the algorithm
(value spread for splitter sampling, array length for shared-memory fit),
and those are preserved.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

__all__ = ["SpectrumBatch", "generate_spectra", "MAX_PEAKS_PER_SPECTRUM"]

#: Paper Section 4: at most ~4000 peaks per spectrum.
MAX_PEAKS_PER_SPECTRUM = 4000

#: Typical m/z acquisition window of a tandem MS run (Thermo-style).
MZ_RANGE = (200.0, 2000.0)


@dataclasses.dataclass
class SpectrumBatch:
    """A batch of equally-sized synthetic spectra.

    ``mz`` and ``intensity`` are parallel ``(N, n)`` matrices: column ``j``
    of row ``i`` is one peak of spectrum ``i``.  Sorting "with respect to
    intensities or mass to charge ratios" means row-sorting one matrix and
    (in full pipelines) permuting the other alongside; for the sorting
    benchmarks each view is sorted independently, as in the paper.
    """

    mz: np.ndarray
    intensity: np.ndarray

    @property
    def num_spectra(self) -> int:
        return self.mz.shape[0]

    @property
    def peaks_per_spectrum(self) -> int:
        return self.mz.shape[1]

    def view(self, by: str) -> np.ndarray:
        """The matrix to sort: ``by`` is ``"mz"`` or ``"intensity"``."""
        if by == "mz":
            return self.mz
        if by == "intensity":
            return self.intensity
        raise ValueError(f"unknown view {by!r}; use 'mz' or 'intensity'")


def generate_spectra(
    num_spectra: int,
    peaks_per_spectrum: int = 2000,
    *,
    true_peak_fraction: float = 0.02,
    impurity_fraction: float = 0.08,
    seed: Optional[int] = None,
) -> SpectrumBatch:
    """Generate a batch of synthetic tandem-MS spectra.

    Composition per spectrum: ``true_peak_fraction`` fragment peaks (high
    intensity, lognormal), ``impurity_fraction`` impurity peaks (medium),
    remainder background noise (low, exponential).  Fractions must sum to
    less than 1.

    >>> batch = generate_spectra(4, 100, seed=1)
    >>> batch.mz.shape
    (4, 100)
    """
    if peaks_per_spectrum < 1 or peaks_per_spectrum > MAX_PEAKS_PER_SPECTRUM:
        raise ValueError(
            f"peaks_per_spectrum must be in [1, {MAX_PEAKS_PER_SPECTRUM}], "
            f"got {peaks_per_spectrum}"
        )
    if num_spectra < 0:
        raise ValueError("num_spectra must be >= 0")
    if true_peak_fraction < 0 or impurity_fraction < 0:
        raise ValueError("fractions must be non-negative")
    if true_peak_fraction + impurity_fraction >= 1.0:
        raise ValueError("true + impurity fractions must be < 1")

    rng = np.random.default_rng(seed)
    N, n = num_spectra, peaks_per_spectrum
    n_true = max(1, int(true_peak_fraction * n)) if n >= 1 else 0
    n_imp = int(impurity_fraction * n)
    n_noise = n - n_true - n_imp

    lo, hi = MZ_RANGE

    # Fragment-ladder peaks: clustered at multiples of an average residue
    # mass (~110 Da) from a random precursor offset, with small jitter.
    offsets = rng.uniform(lo, lo + 110.0, (N, 1))
    ladder = offsets + 110.0 * rng.integers(0, int((hi - lo) / 110.0), (N, n_true))
    mz_true = np.clip(ladder + rng.normal(0, 0.5, (N, n_true)), lo, hi)
    int_true = rng.lognormal(mean=10.0, sigma=0.8, size=(N, n_true))

    mz_imp = rng.uniform(lo, hi, (N, n_imp))
    int_imp = rng.lognormal(mean=7.5, sigma=0.7, size=(N, n_imp))

    mz_noise = rng.uniform(lo, hi, (N, n_noise))
    int_noise = rng.exponential(scale=50.0, size=(N, n_noise))

    mz = np.concatenate([mz_true, mz_imp, mz_noise], axis=1)
    intensity = np.concatenate([int_true, int_imp, int_noise], axis=1)

    # Acquisition interleave: peaks are reported in scan order, which is
    # neither m/z- nor intensity-sorted. A fixed permutation per spectrum.
    perm = rng.permuted(np.tile(np.arange(n), (max(N, 1), 1)), axis=1)[:N]
    rows = np.arange(N)[:, None]
    return SpectrumBatch(
        mz=mz[rows, perm].astype(np.float32),
        intensity=intensity[rows, perm].astype(np.float32),
    )
