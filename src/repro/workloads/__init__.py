"""``repro.workloads`` — dataset generators and batch containers."""

from .datasets import ArrayBatch, RaggedBatch
from .io import load_batch, read_mgf, read_mgf_ragged, save_batch, write_mgf
from .generators import (
    PAPER_VALUE_MAX,
    adversarial_constant_arrays,
    clustered_arrays,
    duplicate_heavy_arrays,
    exponential_arrays,
    nearly_sorted_arrays,
    normal_arrays,
    reverse_sorted_arrays,
    sorted_arrays,
    uniform_arrays,
    zipf_arrays,
)
from .spectra import MAX_PEAKS_PER_SPECTRUM, SpectrumBatch, generate_spectra
from .suites import STANDARD_SUITE, WorkloadSpec, get_workload, list_workloads

__all__ = [
    "ArrayBatch",
    "MAX_PEAKS_PER_SPECTRUM",
    "PAPER_VALUE_MAX",
    "RaggedBatch",
    "SpectrumBatch",
    "adversarial_constant_arrays",
    "clustered_arrays",
    "duplicate_heavy_arrays",
    "exponential_arrays",
    "zipf_arrays",
    "generate_spectra",
    "load_batch",
    "nearly_sorted_arrays",
    "read_mgf",
    "read_mgf_ragged",
    "save_batch",
    "write_mgf",
    "STANDARD_SUITE",
    "WorkloadSpec",
    "get_workload",
    "list_workloads",
    "normal_arrays",
    "reverse_sorted_arrays",
    "sorted_arrays",
    "uniform_arrays",
]
