"""Batch containers: uniform (N, n) batches and ragged batches.

:class:`ArrayBatch` wraps the ``(N, n)`` matrix everything else consumes
and remembers how it was generated (useful in benchmark reports).
:class:`RaggedBatch` holds variable-length arrays in a flat buffer +
offsets layout (the CSR-style layout segmented sorts use); the paper's
algorithm assumes uniform sizes, so :meth:`RaggedBatch.padded` converts
by padding with +inf, and :meth:`RaggedBatch.unpad` strips the padding
after sorting (padding sorts to the tail, so unpadding is a slice).
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional, Sequence

import numpy as np

__all__ = ["ArrayBatch", "RaggedBatch"]


@dataclasses.dataclass
class ArrayBatch:
    """A uniform batch of N arrays of n elements plus provenance."""

    data: np.ndarray
    description: str = ""
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data)
        if self.data.ndim != 2:
            raise ValueError(f"expected (N, n) data, got shape {self.data.shape}")

    @property
    def num_arrays(self) -> int:
        return self.data.shape[0]

    @property
    def array_size(self) -> int:
        return self.data.shape[1]

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def copy(self) -> "ArrayBatch":
        return ArrayBatch(self.data.copy(), self.description, self.seed)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.data)

    def __len__(self) -> int:
        return self.num_arrays


class RaggedBatch:
    """Variable-length arrays in flat-values + offsets (CSR) layout."""

    def __init__(self, values: np.ndarray, offsets: np.ndarray) -> None:
        self.values = np.asarray(values)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        if self.values.ndim != 1:
            raise ValueError("values must be 1-D")
        if (
            self.offsets.ndim != 1
            or self.offsets.size < 1
            or self.offsets[0] != 0
            or self.offsets[-1] != self.values.size
            or np.any(np.diff(self.offsets) < 0)
        ):
            raise ValueError("offsets must be non-decreasing from 0 to len(values)")

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_arrays(cls, arrays: Sequence[np.ndarray]) -> "RaggedBatch":
        """Build from a list of 1-D arrays (possibly different lengths)."""
        arrays = [np.asarray(a).ravel() for a in arrays]
        lengths = np.array([a.size for a in arrays], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        values = (
            np.concatenate(arrays)
            if arrays
            else np.empty(0, dtype=np.float32)
        )
        return cls(values, offsets)

    # -- shape ------------------------------------------------------------
    @property
    def num_arrays(self) -> int:
        return self.offsets.size - 1

    def lengths(self) -> np.ndarray:
        return np.diff(self.offsets)

    def __len__(self) -> int:
        return self.num_arrays

    def __getitem__(self, i: int) -> np.ndarray:
        return self.values[self.offsets[i] : self.offsets[i + 1]]

    def to_list(self) -> List[np.ndarray]:
        return [self[i] for i in range(self.num_arrays)]

    # -- conversion for the uniform-batch sorter --------------------------------
    def padded(self, pad_value: Optional[float] = None) -> np.ndarray:
        """Dense ``(N, max_len)`` matrix padded with ``pad_value``.

        Defaults to +inf for float dtypes (pads sort to the tail) and the
        dtype max for integers.
        """
        if self.num_arrays == 0:
            return np.empty((0, 0), dtype=self.values.dtype)
        max_len = int(self.lengths().max(initial=0))
        if pad_value is None:
            if self.values.dtype.kind == "f":
                pad_value = np.inf
            else:
                pad_value = np.iinfo(self.values.dtype).max
        out = np.full((self.num_arrays, max(max_len, 1)), pad_value, dtype=self.values.dtype)
        for i in range(self.num_arrays):
            seg = self[i]
            out[i, : seg.size] = seg
        return out

    def unpad(self, dense: np.ndarray) -> "RaggedBatch":
        """Recover a ragged batch from a (sorted) padded matrix.

        Assumes the padding sorts to the tail (true for +inf / int max),
        so row ``i``'s real data is its first ``lengths()[i]`` entries.
        """
        lengths = self.lengths()
        parts = [dense[i, : lengths[i]] for i in range(self.num_arrays)]
        return RaggedBatch.from_arrays(parts) if parts else RaggedBatch(
            np.empty(0, dtype=self.values.dtype), np.zeros(1, dtype=np.int64)
        )
