"""Dataset persistence: NPZ batches and MGF-style spectra files.

Real proteomics pipelines exchange spectra as text (MGF — Mascot Generic
Format — being the lingua franca).  To make the examples and benchmarks
round-trippable against files, this module provides:

* :func:`save_batch` / :func:`load_batch` — ``(N, n)`` batches with
  provenance metadata in compressed ``.npz``;
* :func:`write_mgf` / :func:`read_mgf` — a faithful-enough MGF subset
  (``BEGIN IONS`` / ``TITLE`` / ``PEPMASS`` / peak list / ``END IONS``)
  for :class:`~repro.workloads.spectra.SpectrumBatch` objects;
* :func:`read_mgf_ragged` — MGF to a :class:`RaggedBatch` of
  intensities (spectra in the wild have unequal peak counts).

Everything is plain text / NumPy — no external dependencies.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from .datasets import ArrayBatch, RaggedBatch
from .spectra import SpectrumBatch

__all__ = [
    "save_batch",
    "load_batch",
    "write_mgf",
    "read_mgf",
    "read_mgf_ragged",
]

PathLike = Union[str, Path]


def save_batch(path: PathLike, batch: ArrayBatch) -> None:
    """Write an :class:`ArrayBatch` to compressed ``.npz`` with metadata."""
    meta = json.dumps({
        "description": batch.description,
        "seed": batch.seed,
    })
    np.savez_compressed(path, data=batch.data, meta=np.array(meta))


def load_batch(path: PathLike) -> ArrayBatch:
    """Load an :class:`ArrayBatch` written by :func:`save_batch`."""
    with np.load(path, allow_pickle=False) as archive:
        data = archive["data"]
        meta = json.loads(str(archive["meta"]))
    return ArrayBatch(data, description=meta.get("description", ""),
                      seed=meta.get("seed"))


def write_mgf(path: PathLike, spectra: SpectrumBatch,
              *, precursor_mz: Optional[np.ndarray] = None) -> None:
    """Write a :class:`SpectrumBatch` as MGF text.

    Peaks are emitted in stored (acquisition) order — MGF does not
    require sorted peak lists, which is precisely why downstream tools
    need a batch sorter.
    """
    path = Path(path)
    N = spectra.num_spectra
    if precursor_mz is None:
        precursor_mz = spectra.mz.mean(axis=1) if N else np.empty(0)
    lines: List[str] = []
    for i in range(N):
        lines.append("BEGIN IONS")
        lines.append(f"TITLE=spectrum_{i}")
        lines.append(f"PEPMASS={float(precursor_mz[i]):.4f}")
        lines.append("CHARGE=2+")
        for mz, inten in zip(spectra.mz[i], spectra.intensity[i]):
            lines.append(f"{float(mz):.4f} {float(inten):.4f}")
        lines.append("END IONS")
    path.write_text("\n".join(lines) + ("\n" if lines else ""))


def _parse_mgf(path: PathLike) -> List[Tuple[List[float], List[float]]]:
    """Parse MGF into per-spectrum (mz list, intensity list) pairs."""
    spectra: List[Tuple[List[float], List[float]]] = []
    mz: List[float] = []
    inten: List[float] = []
    in_ions = False
    for raw_line in Path(path).read_text().splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line == "BEGIN IONS":
            if in_ions:
                raise ValueError("nested BEGIN IONS")
            in_ions = True
            mz, inten = [], []
        elif line == "END IONS":
            if not in_ions:
                raise ValueError("END IONS without BEGIN IONS")
            spectra.append((mz, inten))
            in_ions = False
        elif in_ions:
            if "=" in line:
                continue  # TITLE= / PEPMASS= / CHARGE= headers
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed peak line: {raw_line!r}")
            mz.append(float(parts[0]))
            inten.append(float(parts[1]))
    if in_ions:
        raise ValueError("unterminated BEGIN IONS block")
    return spectra


def read_mgf(path: PathLike) -> SpectrumBatch:
    """Read MGF into a uniform :class:`SpectrumBatch`.

    All spectra in the file must have the same peak count (use
    :func:`read_mgf_ragged` otherwise).
    """
    parsed = _parse_mgf(path)
    if not parsed:
        return SpectrumBatch(
            mz=np.empty((0, 0), dtype=np.float32),
            intensity=np.empty((0, 0), dtype=np.float32),
        )
    lengths = {len(mz) for mz, _ in parsed}
    if len(lengths) != 1:
        raise ValueError(
            f"spectra have differing peak counts {sorted(lengths)}; "
            "use read_mgf_ragged"
        )
    mz = np.array([m for m, _ in parsed], dtype=np.float32)
    inten = np.array([i for _, i in parsed], dtype=np.float32)
    return SpectrumBatch(mz=mz, intensity=inten)


def read_mgf_ragged(path: PathLike, *, view: str = "intensity") -> RaggedBatch:
    """Read MGF with unequal peak counts into a :class:`RaggedBatch`.

    ``view`` selects which column becomes the batch values
    (``"intensity"`` or ``"mz"``).
    """
    if view not in ("intensity", "mz"):
        raise ValueError(f"view must be 'intensity' or 'mz', got {view!r}")
    parsed = _parse_mgf(path)
    column = 0 if view == "mz" else 1
    arrays = [np.asarray(pair[column], dtype=np.float32) for pair in parsed]
    return RaggedBatch.from_arrays(arrays)
