"""Workload generators for batch-sorting experiments.

:func:`uniform_arrays` reproduces the paper's Section 7.2 dataset recipe
verbatim: "Each array was randomly generated using a uniform distribution
between 0 and 2^31 - 1 ... using float as the data type".

The remaining generators stress the parts of the design the uniform
dataset cannot: regular sampling assumes value spread (skewed/clustered
data unbalances buckets), presortedness changes insertion-sort cost, and
duplicates exercise the splitter tie handling.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "uniform_arrays",
    "normal_arrays",
    "sorted_arrays",
    "reverse_sorted_arrays",
    "nearly_sorted_arrays",
    "duplicate_heavy_arrays",
    "clustered_arrays",
    "adversarial_constant_arrays",
    "zipf_arrays",
    "exponential_arrays",
    "PAPER_VALUE_MAX",
]

#: Upper bound of the paper's uniform value range (2^31 - 1).
PAPER_VALUE_MAX = float(2**31 - 1)


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def uniform_arrays(
    num_arrays: int,
    array_size: int,
    *,
    low: float = 0.0,
    high: float = PAPER_VALUE_MAX,
    dtype=np.float32,
    seed: Optional[int] = None,
) -> np.ndarray:
    """The paper's evaluation dataset: uniform floats in [0, 2^31 - 1).

    >>> uniform_arrays(2, 3, seed=0).shape
    (2, 3)
    """
    if num_arrays < 0 or array_size < 1:
        raise ValueError("need num_arrays >= 0 and array_size >= 1")
    return _rng(seed).uniform(low, high, (num_arrays, array_size)).astype(dtype)


def normal_arrays(
    num_arrays: int,
    array_size: int,
    *,
    mean: float = 0.0,
    std: float = 1e6,
    dtype=np.float32,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Gaussian values: mild central clustering, sampling still effective."""
    if num_arrays < 0 or array_size < 1:
        raise ValueError("need num_arrays >= 0 and array_size >= 1")
    return _rng(seed).normal(mean, std, (num_arrays, array_size)).astype(dtype)


def sorted_arrays(num_arrays: int, array_size: int, *, dtype=np.float32,
                  seed: Optional[int] = None) -> np.ndarray:
    """Already-sorted rows: best case for insertion sort, worst for naive
    quicksort-style baselines."""
    return np.sort(uniform_arrays(num_arrays, array_size, dtype=dtype, seed=seed), axis=1)


def reverse_sorted_arrays(num_arrays: int, array_size: int, *, dtype=np.float32,
                          seed: Optional[int] = None) -> np.ndarray:
    """Descending rows: worst case for insertion sort within buckets."""
    return sorted_arrays(num_arrays, array_size, dtype=dtype, seed=seed)[:, ::-1].copy()


def nearly_sorted_arrays(
    num_arrays: int,
    array_size: int,
    *,
    swap_fraction: float = 0.05,
    dtype=np.float32,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Sorted rows with a fraction of random adjacent transpositions.

    Models the paper's proteomics motivation (Section 9): pre-processing
    steps that "render this data out of sequence" starting from sorted
    spectra.
    """
    if not 0.0 <= swap_fraction <= 1.0:
        raise ValueError("swap_fraction must be in [0, 1]")
    rng = _rng(seed)
    batch = sorted_arrays(num_arrays, array_size, dtype=dtype, seed=seed)
    swaps = int(swap_fraction * array_size)
    for _ in range(swaps):
        cols = rng.integers(0, max(1, array_size - 1), size=num_arrays)
        rows = np.arange(num_arrays)
        tmp = batch[rows, cols].copy()
        batch[rows, cols] = batch[rows, cols + 1]
        batch[rows, cols + 1] = tmp
    return batch


def duplicate_heavy_arrays(
    num_arrays: int,
    array_size: int,
    *,
    distinct_values: int = 8,
    dtype=np.float32,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Rows drawn from very few distinct values.

    Stresses splitter ties: with fewer distinct values than buckets, most
    splitters coincide and most buckets are empty — the regular-sampling
    worst case the half-open bucket ranges must survive.
    """
    if distinct_values < 1:
        raise ValueError("distinct_values must be >= 1")
    rng = _rng(seed)
    palette = rng.uniform(0, PAPER_VALUE_MAX, distinct_values).astype(dtype)
    idx = rng.integers(0, distinct_values, (num_arrays, array_size))
    return palette[idx]


def clustered_arrays(
    num_arrays: int,
    array_size: int,
    *,
    num_clusters: int = 4,
    cluster_std: float = 1e3,
    dtype=np.float32,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Tight value clusters separated by wide gaps.

    Breaks the uniformity assumption behind "10 % regular sampling gave
    most evenly balanced buckets": clusters concentrate many elements
    between adjacent splitters.  Used by the sampling-rate ablation.
    """
    if num_clusters < 1:
        raise ValueError("num_clusters must be >= 1")
    rng = _rng(seed)
    centers = rng.uniform(0, PAPER_VALUE_MAX, num_clusters)
    which = rng.integers(0, num_clusters, (num_arrays, array_size))
    values = rng.normal(centers[which], cluster_std)
    return np.clip(values, 0, PAPER_VALUE_MAX).astype(dtype)


def adversarial_constant_arrays(num_arrays: int, array_size: int, *,
                                value: float = 42.0, dtype=np.float32) -> np.ndarray:
    """Every element identical: all splitters equal, one bucket gets all.

    The extreme degenerate case — correctness must hold even though load
    balancing collapses to a single thread per array.
    """
    return np.full((num_arrays, array_size), value, dtype=dtype)


def zipf_arrays(
    num_arrays: int,
    array_size: int,
    *,
    exponent: float = 2.0,
    dtype=np.float32,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Zipf-distributed positive values: heavy head, long sparse tail.

    The canonical real-world skew (word frequencies, peak intensities):
    most elements are small and dense, a few are enormous.  Regular
    sampling concentrates splitters in the dense head, starving the
    tail's buckets — the stress the adaptive oversampling strategy
    targets.
    """
    if exponent <= 1.0:
        raise ValueError("zipf exponent must be > 1")
    if num_arrays < 0 or array_size < 1:
        raise ValueError("need num_arrays >= 0 and array_size >= 1")
    values = _rng(seed).zipf(exponent, (num_arrays, array_size))
    return np.minimum(values, 2**31 - 1).astype(dtype)


def exponential_arrays(
    num_arrays: int,
    array_size: int,
    *,
    scale: float = 1e6,
    dtype=np.float32,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Exponentially distributed values: moderate, realistic skew.

    Matches the background-noise intensity profile of the
    mass-spectrometry generator; a middle ground between uniform and
    Zipf for the distribution-sensitivity study.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    if num_arrays < 0 or array_size < 1:
        raise ValueError("need num_arrays >= 0 and array_size >= 1")
    return _rng(seed).exponential(scale, (num_arrays, array_size)).astype(dtype)
