"""GPU-ArraySort reproduction library.

Reproduces Awan & Saeed, *GPU-ArraySort: A Parallel, In-Place Algorithm
for Sorting Large Number of Arrays* (2016), including:

* :mod:`repro.core` — the three-phase GPU-ArraySort algorithm;
* :mod:`repro.gpusim` — the SIMT GPU simulator standing in for the paper's
  Tesla K40c (see DESIGN.md for the substitution rationale);
* :mod:`repro.baselines` — the STA (tagged Thrust-style) baseline and
  friends;
* :mod:`repro.workloads` — dataset generators, incl. synthetic
  mass-spectrometry spectra;
* :mod:`repro.analysis` — complexity/memory/performance models behind the
  paper's figures and Table 1.

Quickstart::

    import numpy as np
    from repro import sort_arrays

    batch = np.random.default_rng(0).uniform(0, 2**31 - 1, (1000, 500))
    sorted_batch = sort_arrays(batch.astype(np.float32))
"""

from ._version import __version__
from .core import (
    DEFAULT_CONFIG,
    GpuArraySort,
    PairSortResult,
    SortConfig,
    SortResult,
    sort_arrays,
    sort_pairs,
    top_k,
)
from .fleet import FleetStats, SortFleet
from .gpusim.faults import FaultPlan
from .outofcore import (
    CapacityResult,
    CapacitySorter,
    CapacityStats,
    SpillStore,
    parse_memory_size,
)
from .planner import ExecutionPlan, ExecutionPlanner, StaticPlanner
from .resilience import ResilienceStats, ResilientSorter
from .service import (
    DeadlineExceededError,
    QuarantinedError,
    RejectedError,
    ServiceClosedError,
    ServiceError,
    ServiceStats,
    SortService,
)

__all__ = [
    "CapacityResult",
    "CapacitySorter",
    "CapacityStats",
    "DEFAULT_CONFIG",
    "DeadlineExceededError",
    "ExecutionPlan",
    "ExecutionPlanner",
    "FaultPlan",
    "FleetStats",
    "GpuArraySort",
    "PairSortResult",
    "QuarantinedError",
    "RejectedError",
    "ResilienceStats",
    "ResilientSorter",
    "ServiceClosedError",
    "ServiceError",
    "ServiceStats",
    "SortConfig",
    "SortFleet",
    "SortResult",
    "SortService",
    "SpillStore",
    "StaticPlanner",
    "__version__",
    "parse_memory_size",
    "sort_arrays",
    "sort_pairs",
    "top_k",
]
