"""One-time host micro-calibration backing the execution planner.

ISSUE 3's planner is "seeded by a one-time micro-calibration whose
results persist to a JSON cache (``~/.cache/repro/planner.json``,
overridable)".  This module owns that lifecycle:

* :func:`calibrate_host` — a ~quarter-second micro-benchmark measuring
  the scalars of :class:`~repro.planner.model.HostProfile` (in-place
  sort throughput, memcpy bandwidth, gather cost, thread pool/task
  overhead, 2-way thread efficiency).  Process spawn cost is *not*
  measured — forking a pool just to time it would cost more than every
  planning decision it informs — so the conservative default stands
  until online observation corrects it.
* :func:`load_profile` / :func:`save_profile` — JSON cache round-trip
  with a host fingerprint guard, so a cache copied between machines (or
  surviving a core-count change inside a container) is discarded rather
  than trusted.
* :func:`load_or_calibrate` — the planner's entry point: cache hit if
  fingerprints match, else calibrate and persist best-effort.

The cache path resolves as ``$REPRO_PLANNER_CACHE`` ->
``~/.cache/repro/planner.json``; the file also stores the planner's
observed per-shape timings (see ``ExecutionPlanner.save``), which is why
its schema is versioned independently of the bench schema.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from .model import ENGINE_NAMES, HostProfile

__all__ = [
    "CACHE_ENV",
    "CACHE_SCHEMA",
    "default_cache_path",
    "host_fingerprint",
    "calibrate_host",
    "load_profile",
    "save_profile",
    "load_or_calibrate",
]

#: Environment variable overriding the cache file location.
CACHE_ENV = "REPRO_PLANNER_CACHE"
#: Schema tag written into the cache file.  v2: the host fingerprint
#: gained the engine set, so a v1 cache (calibrated before the radix
#: engine existed, hence without ``radix_pass_ns``) reads as a miss and
#: is recalibrated instead of silently reused.
CACHE_SCHEMA = "repro-planner-cache/v2"


def default_cache_path() -> Path:
    """``$REPRO_PLANNER_CACHE`` if set, else ``~/.cache/repro/planner.json``."""
    override = os.environ.get(CACHE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "planner.json"


def host_fingerprint() -> str:
    """Stable identifier for "same host, same toolchain" cache validity.

    Includes the planner's engine set: a profile calibrated when the
    planner knew fewer engines is missing cost terms for the new ones,
    so an engine-set change must invalidate the cache exactly like a
    core-count change would.
    """
    return "|".join(
        [
            platform.machine(),
            platform.system(),
            f"cpus={os.cpu_count() or 1}",
            f"numpy={np.__version__}",
            f"engines={','.join(ENGINE_NAMES)}",
        ]
    )


def _best_of(fn, repeats: int = 3) -> float:
    """Minimum wall seconds of ``fn()`` over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def calibrate_host(*, rows: int = 256, row_len: int = 1024) -> HostProfile:
    """Measure this host's :class:`HostProfile` (~0.2-0.3 s).

    Sizes are chosen so each probe runs in single-digit milliseconds but
    exceeds L2, which is what the planner's batches look like.
    """
    rng = np.random.default_rng(0xC0FFEE)
    base = rng.random((rows, row_len), dtype=np.float32)
    work = np.empty_like(base)
    n_elems = rows * row_len
    log_n = max(1.0, np.log2(row_len))

    # In-place row sort: ns per element*log2(n).
    def probe_sort() -> None:
        work[:] = base
        work.sort(axis=1)

    # Subtract the copy so the sort term is isolated below.
    copy_s = _best_of(lambda: np.copyto(work, base))
    sort_s = max(1e-9, _best_of(probe_sort) - copy_s)
    sort_ns = sort_s * 1e9 / (n_elems * log_n)
    copy_ns_per_byte = copy_s * 1e9 / base.nbytes

    # Fancy-index gather, the shape phase 1 and metadata recovery use.
    cols = np.arange(0, row_len, 8)
    gather_out = np.empty((rows, cols.size), dtype=np.float32)
    gather_s = _best_of(lambda: np.take(base, cols, axis=1, out=gather_out))
    gather_ns = gather_s * 1e9 / (rows * cols.size)

    # Thread pool construction + per-task dispatch overhead.
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=2) as pool:
        pool_up = time.perf_counter() - t0
        t0 = time.perf_counter()
        list(pool.map(lambda _: None, range(32)))
        task_s = (time.perf_counter() - t0) / 32

        # 2-way thread efficiency on the actual workload shape.
        half = rows // 2

        def shard(lo_hi: Tuple[int, int]) -> None:
            lo, hi = lo_hi
            work[lo:hi].sort(axis=1)

        def probe_threads() -> None:
            work[:] = base
            list(pool.map(shard, [(0, half), (half, rows)]))

        threaded_s = max(1e-9, _best_of(probe_threads) - copy_s)
    efficiency = min(1.0, max(0.1, sort_s / (2.0 * threaded_s)))

    # One interpreted LSD digit-pass round on a small key batch: prices
    # the radix engine's non-comparison strategy honestly (it is slow on
    # a NumPy host — that is the point of measuring rather than hoping).
    from ..core.radix import radix_sort_rows  # local: avoids import cycle

    radix_rows, radix_len = 64, 512
    radix_work = rng.integers(
        0, 2**32, (radix_rows, radix_len), dtype=np.uint32
    )
    radix_buf = np.empty_like(radix_work)
    radix_passes = 4  # uint32 keys, byte digits

    def probe_radix() -> None:
        np.copyto(radix_buf, radix_work)
        radix_sort_rows(radix_buf, strategy="lsd", digit_bits=8)

    radix_copy_s = _best_of(lambda: np.copyto(radix_buf, radix_work))
    radix_s = max(1e-9, _best_of(probe_radix) - radix_copy_s)
    radix_pass_ns = radix_s * 1e9 / (radix_rows * radix_len * radix_passes)

    return HostProfile(
        cpu_count=max(1, os.cpu_count() or 1),
        sort_ns=float(sort_ns),
        copy_ns_per_byte=float(copy_ns_per_byte),
        gather_ns=float(gather_ns),
        thread_efficiency=float(efficiency),
        thread_task_us=float(task_s * 1e6),
        thread_pool_us=float(pool_up * 1e6),
        radix_pass_ns=float(radix_pass_ns),
        calibrated=True,
    )


def load_profile(
    path: Optional[Path] = None,
) -> Tuple[Optional[HostProfile], Dict[str, object]]:
    """``(profile, observations)`` from the cache, or ``(None, {})``.

    Rejects unreadable files, wrong schemas, and fingerprint mismatches
    — every rejection means "recalibrate", never an exception.
    """
    path = path or default_cache_path()
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None, {}
    if not isinstance(data, dict) or data.get("schema") != CACHE_SCHEMA:
        return None, {}
    if data.get("fingerprint") != host_fingerprint():
        return None, {}
    profile_data = data.get("profile")
    if not isinstance(profile_data, dict):
        return None, {}
    try:
        profile = HostProfile.from_dict(profile_data)
    except TypeError:
        return None, {}
    observations = data.get("observations")
    if not isinstance(observations, dict):
        observations = {}
    return profile, observations


def save_profile(
    profile: HostProfile,
    observations: Optional[Dict[str, object]] = None,
    path: Optional[Path] = None,
) -> bool:
    """Best-effort atomic write of the cache; returns success.

    Concurrency contract: the payload is staged in a per-call unique
    temp file *in the target directory* (``tempfile.mkstemp``, so
    racing threads never share a staging path — a per-PID name is not
    enough once the sort service's worker threads autosave) and
    published with ``os.replace``.  Any number of processes or threads
    racing can only ever leave one writer's complete file — never an
    interleaving.  Readers either see a whole valid cache or, per
    :func:`load_profile`, treat anything else as a cache miss.

    A read-only cache dir (CI sandboxes) silently disables persistence —
    the planner still works, it just recalibrates next process.
    """
    path = Path(path or default_cache_path())
    payload = {
        "schema": CACHE_SCHEMA,
        "fingerprint": host_fingerprint(),
        "profile": profile.as_dict(),
        "observations": observations or {},
    }
    tmp = None
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".tmp", dir=path.parent
        )
        tmp = Path(tmp_name)
        with os.fdopen(fd, "w") as handle:
            handle.write(json.dumps(payload, indent=2, sort_keys=True))
            handle.flush()
            # fsync before the rename: otherwise the rename can become
            # durable before the data and a crash leaves an empty cache
            # that fingerprints as valid JSON truncation, not a miss.
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return True
    except OSError:
        # Don't leave a stale temp file behind a failed publish.
        if tmp is not None:
            try:
                tmp.unlink()
            except OSError:
                pass
        return False


def load_or_calibrate(
    path: Optional[Path] = None,
) -> Tuple[HostProfile, Dict[str, object]]:
    """Cached profile when valid for this host, else calibrate and persist."""
    profile, observations = load_profile(path)
    if profile is not None and profile.calibrated:
        return profile, observations
    profile = calibrate_host()
    save_profile(profile, observations, path)
    return profile, observations
