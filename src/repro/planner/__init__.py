"""Adaptive execution planning for the batch-sort hot path.

One fixed dispatch strategy does not win across the whole ``(N, n)``
grid (see ``BENCH_hotpath.json``); this package picks the engine per
batch shape instead:

* :mod:`repro.planner.model` — calibrated host cost model that *ranks*
  candidate engines before any measurement exists;
* :mod:`repro.planner.calibrate` — the one-time micro-calibration and
  its JSON cache (``~/.cache/repro/planner.json``, overridable via
  ``$REPRO_PLANNER_CACHE``);
* :mod:`repro.planner.planner` — :class:`ExecutionPlanner` (model-seeded,
  exploration-guarded, EMA-refined) and :class:`StaticPlanner` (the
  forced ``"fused"``/``"sharded"`` escape hatches).

Entry point for users: ``GpuArraySort(planner="auto")``.
"""

from .calibrate import (
    CACHE_ENV,
    CACHE_SCHEMA,
    calibrate_host,
    default_cache_path,
    host_fingerprint,
    load_or_calibrate,
    load_profile,
    save_profile,
)
from .model import DEFAULT_PROFILE, ENGINE_NAMES, HostProfile, predict_ms
from .planner import (
    ExecutionPlan,
    ExecutionPlanner,
    StaticPlanner,
    get_default_planner,
    resolve_planner,
    set_default_planner,
    shape_class_key,
)

__all__ = [
    "CACHE_ENV",
    "CACHE_SCHEMA",
    "DEFAULT_PROFILE",
    "ENGINE_NAMES",
    "ExecutionPlan",
    "ExecutionPlanner",
    "HostProfile",
    "StaticPlanner",
    "calibrate_host",
    "default_cache_path",
    "get_default_planner",
    "host_fingerprint",
    "load_or_calibrate",
    "load_profile",
    "predict_ms",
    "resolve_planner",
    "save_profile",
    "set_default_planner",
    "shape_class_key",
]
