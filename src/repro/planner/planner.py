"""Adaptive execution planner: pick an engine per batch shape.

``BENCH_hotpath.json`` killed the one-size-fits-all dispatch: the
sharded executor lost to serial at ``ref-f32-mid`` (0.90×) while winning
at other cells.  Following Dehne & Zaboli's approach of choosing
sampling/partition parameters per input shape, the planner chooses the
*engine* per batch shape:

1.  **Model seed** — a calibrated host cost model
    (:mod:`repro.planner.model`) prices each candidate (serial-fused,
    thread-sharded, process-sharded, flat-radix — see
    :data:`~repro.planner.model.ENGINE_NAMES`) for the batch's
    ``(N, n, dtype)``.
2.  **Guarded exploration** — candidates are tried once each, cheapest
    predicted first, skipping any predicted worse than
    ``explore_factor``× the best (no point timing a plan the model says
    is hopeless).  Exploration is what makes the planner robust to
    effects no core-count model predicts — NUMA placement, SMT siblings,
    cache-partition interference.
3.  **Online refinement** — every sorted batch reports its wall time
    back via :meth:`ExecutionPlanner.observe`; an EMA per (shape-class,
    engine) then drives an argmin dispatch, so the planner converges on
    the measured winner within a few batches of each shape and tracks
    slow drift afterwards.

Shape classes quantize ``log2`` of both dimensions, so a streaming
workload with jittering batch sizes still shares one learned entry.
Learned timings persist in the same JSON cache as the calibration
(:mod:`repro.planner.calibrate`), making the second process start
already warm.
"""

from __future__ import annotations

import dataclasses
import math
import threading
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from ..core.config import DEFAULT_CONFIG, SortConfig
from ..statan import runtime as _sanitizer
from ..core.radix import supports_dtype as _radix_supports_dtype
from ..parallel.plan import DEFAULT_MIN_ROWS_PER_WORKER, plan_shards
from .calibrate import calibrate_host, load_or_calibrate, save_profile
from .model import DEFAULT_PROFILE, HostProfile, predict_ms

__all__ = [
    "ExecutionPlan",
    "ExecutionPlanner",
    "StaticPlanner",
    "resolve_planner",
    "get_default_planner",
    "set_default_planner",
]

#: plan() sources, in the order a fresh shape progresses through them.
PLAN_SOURCES = ("static", "model", "explore", "observed")


@dataclasses.dataclass(frozen=True)
class ExecutionPlan:
    """One dispatch decision: how to sort the next batch."""

    #: One of :data:`~repro.planner.model.ENGINE_NAMES`: ``"serial"``
    #: (fused vectorized path), ``"thread"``, ``"process"``, or
    #: ``"radix"`` (flat non-comparison row sort, no bucket metadata).
    engine: str
    #: Worker count for the sharded engines (1 for serial).
    workers: int = 1
    #: Fuse phases 2+3 (always the fast choice; kept explicit so an
    #: unfused plan remains expressible for ablations).
    fused: bool = True
    #: Cost-model estimate for this engine on this shape, milliseconds.
    predicted_ms: float = 0.0
    #: Why this plan was chosen — one of :data:`PLAN_SOURCES`.
    source: str = "model"
    #: Shape-class key the decision was filed under.
    shape_key: str = ""
    #: Fan-out guard forwarded to the executors' shard planning.
    min_rows_per_worker: int = DEFAULT_MIN_ROWS_PER_WORKER


def shape_class_key(num_rows: int, row_len: int, dtype) -> str:
    """Quantized shape-class key: dtype + rounded log2 of each dimension."""
    dtype = np.dtype(dtype)
    big_n = round(math.log2(max(1, num_rows)))
    small_n = round(math.log2(max(1, row_len)))
    return f"{dtype.str}|N{big_n}|n{small_n}"


@_sanitizer.sanitize_guarded
class _PlannerBase:
    """Engine-instance caching + decision counting shared by all planners."""

    def __init__(self) -> None:
        self._engines: Dict[tuple, object] = {}
        self._lock = _sanitizer.make_lock("_PlannerBase._lock")
        #: shape key -> engine -> times plan() chose it.  The service's
        #: metrics surface exports this, so live traffic shows *which*
        #: engine each shape class actually dispatches to.
        self._plan_counts: Dict[str, Dict[str, int]] = {}  # guarded-by: _lock

    def _record_plan(self, shape_key: str, engine: str) -> None:
        with self._lock:
            slot = self._plan_counts.setdefault(shape_key, {})
            slot[engine] = slot.get(engine, 0) + 1

    def plan_counts(self) -> Dict[str, Dict[str, int]]:
        """Engine-selection counts per shape class (a copy)."""
        with self._lock:
            return {key: dict(slot) for key, slot in self._plan_counts.items()}

    def executor_for(self, plan: ExecutionPlan):
        """The (cached) executor instance realizing ``plan``.

        ``None`` for serial and radix plans — both run inside the
        caller (serial keeps full phase-1 diagnostics; radix is the
        sorter's own flat row-sort path).  Thread/process engines are
        constructed once per (engine, workers) and reused, so the
        planner adds no per-batch object churn.
        """
        if plan.engine in ("serial", "radix"):
            return None
        key = (plan.engine, plan.workers, plan.min_rows_per_worker)
        engine = self._engines.get(key)
        if engine is None:
            from ..parallel.executors import ProcessPoolEngine, ThreadPoolEngine

            cls = ThreadPoolEngine if plan.engine == "thread" else ProcessPoolEngine
            engine = cls(
                workers=plan.workers,
                min_rows_per_worker=plan.min_rows_per_worker,
            )
            self._engines[key] = engine
        return engine

    def observe(self, plan: ExecutionPlan, elapsed_ms: float) -> None:
        """Feed back a measured batch time (no-op unless adaptive)."""

    def save(self) -> bool:
        """Persist learned state (no-op unless adaptive)."""
        return False


class ExecutionPlanner(_PlannerBase):
    """Cost-model seeded, observation-refined engine chooser.

    Parameters
    ----------
    profile:
        A :class:`HostProfile` to use directly.  ``None`` (default)
        defers to the JSON cache: load if valid for this host, else run
        the one-time micro-calibration and persist it.
    cache_path:
        Override the cache file (default honors ``$REPRO_PLANNER_CACHE``
        then ``~/.cache/repro/planner.json``).  Pass ``cache_path=None``
        explicitly to disable persistence entirely.
    explore_factor:
        A candidate is only explored while its model prediction is
        within this factor of the cheapest candidate's.
    ema_alpha:
        Weight of the newest observation in the per-(shape, engine) EMA.
    """

    _UNSET = object()

    def __init__(
        self,
        profile: Optional[HostProfile] = None,
        *,
        cache_path=_UNSET,
        explore_factor: float = 8.0,
        ema_alpha: float = 0.3,
        min_rows_per_worker: int = DEFAULT_MIN_ROWS_PER_WORKER,
        autosave_every: int = 32,
    ) -> None:
        super().__init__()
        if explore_factor < 1.0:
            raise ValueError(f"explore_factor must be >= 1.0, got {explore_factor}")
        if not 0.0 < ema_alpha <= 1.0:
            raise ValueError(f"ema_alpha must be in (0, 1], got {ema_alpha}")
        self.explore_factor = float(explore_factor)
        self.ema_alpha = float(ema_alpha)
        self.min_rows_per_worker = int(min_rows_per_worker)
        self.autosave_every = int(autosave_every)
        self._cache_path: Optional[Path]
        if cache_path is self._UNSET:
            self._cache_path = None  # resolved lazily via default_cache_path
            self._persist = True
        else:
            self._cache_path = Path(cache_path) if cache_path is not None else None
            self._persist = cache_path is not None
        self._profile = profile
        #: shape key -> engine -> {"ema_ms": float, "count": int}
        self._observations: Dict[str, Dict[str, Dict[str, float]]] = {}
        self._unsaved = 0

    # -- profile lifecycle -------------------------------------------------
    @property
    def profile(self) -> HostProfile:
        """The host profile, calibrating (and caching) on first access."""
        if self._profile is None:
            if self._persist:
                self._profile, persisted = load_or_calibrate(self._cache_path)
                self._merge_observations(persisted)
            else:
                self._profile = calibrate_host()
        return self._profile

    def _merge_observations(self, persisted: Dict[str, object]) -> None:
        for key, engines in persisted.items():
            if not isinstance(engines, dict):
                continue
            slot = self._observations.setdefault(str(key), {})
            for engine, entry in engines.items():
                if (
                    engine not in slot
                    and isinstance(entry, dict)
                    and isinstance(entry.get("ema_ms"), (int, float))
                ):
                    slot[str(engine)] = {
                        "ema_ms": float(entry["ema_ms"]),
                        "count": int(entry.get("count", 1)),
                    }

    # -- planning ----------------------------------------------------------
    def _candidates(
        self,
        num_rows: int,
        row_len: int,
        dtype,
        config: SortConfig,
        key: str,
    ) -> list:
        profile = self.profile
        plans = [
            ExecutionPlan(
                engine="serial",
                workers=1,
                predicted_ms=predict_ms(
                    profile, "serial", num_rows, row_len, dtype, config=config
                ),
                shape_key=key,
                min_rows_per_worker=self.min_rows_per_worker,
            )
        ]
        if _radix_supports_dtype(dtype):
            plans.append(
                ExecutionPlan(
                    engine="radix",
                    workers=1,
                    predicted_ms=predict_ms(
                        profile, "radix", num_rows, row_len, dtype, config=config
                    ),
                    shape_key=key,
                    min_rows_per_worker=self.min_rows_per_worker,
                )
            )
        workers = max(2, profile.cpu_count)
        shards = len(
            plan_shards(
                num_rows, workers, min_rows_per_worker=self.min_rows_per_worker
            )
        )
        if shards > 1:
            for engine in ("thread", "process"):
                plans.append(
                    ExecutionPlan(
                        engine=engine,
                        workers=workers,
                        predicted_ms=predict_ms(
                            profile,
                            engine,
                            num_rows,
                            row_len,
                            dtype,
                            workers=workers,
                            shards=shards,
                            config=config,
                        ),
                        shape_key=key,
                        min_rows_per_worker=self.min_rows_per_worker,
                    )
                )
        return plans

    def plan(
        self,
        num_rows: int,
        row_len: int,
        dtype,
        *,
        config: SortConfig = DEFAULT_CONFIG,
    ) -> ExecutionPlan:
        """Choose the engine for one ``(num_rows, row_len, dtype)`` batch."""
        key = shape_class_key(num_rows, row_len, dtype)
        candidates = self._candidates(num_rows, row_len, dtype, config, key)
        chosen = self._choose(key, candidates)
        self._record_plan(key, chosen.engine)
        return chosen

    def _choose(self, key: str, candidates: list) -> ExecutionPlan:
        if len(candidates) == 1:
            return candidates[0]
        observed = self._observations.get(key, {})
        best_predicted = min(c.predicted_ms for c in candidates)
        cutoff = self.explore_factor * max(best_predicted, 1e-9)
        unexplored = [
            c
            for c in candidates
            if c.engine not in observed and c.predicted_ms <= cutoff
        ]
        if unexplored:
            choice = min(unexplored, key=lambda c: c.predicted_ms)
            source = "explore" if observed else "model"
            return dataclasses.replace(choice, source=source)
        choice = min(
            candidates,
            key=lambda c: observed.get(c.engine, {}).get("ema_ms", c.predicted_ms),
        )
        return dataclasses.replace(choice, source="observed")

    def observe(self, plan: ExecutionPlan, elapsed_ms: float) -> None:
        """Fold one measured batch wall time into the per-shape EMA."""
        if not plan.shape_key or elapsed_ms < 0:
            return
        slot = self._observations.setdefault(plan.shape_key, {})
        entry = slot.get(plan.engine)
        if entry is None:
            slot[plan.engine] = {"ema_ms": float(elapsed_ms), "count": 1}
        else:
            entry["ema_ms"] += self.ema_alpha * (elapsed_ms - entry["ema_ms"])
            entry["count"] += 1
        self._unsaved += 1
        if self._persist and self._unsaved >= self.autosave_every:
            self.save()

    def observations(self, shape_key: Optional[str] = None):
        """Learned timings (a copy), for diagnostics and the benchmark."""
        import copy

        if shape_key is not None:
            return copy.deepcopy(self._observations.get(shape_key, {}))
        return copy.deepcopy(self._observations)

    def save(self) -> bool:
        """Persist profile + observations to the JSON cache (best effort)."""
        if not self._persist:
            return False
        ok = save_profile(self.profile, self._observations, self._cache_path)
        if ok:
            self._unsaved = 0
        return ok


class StaticPlanner(_PlannerBase):
    """Planner that always returns the same engine — the escape hatch.

    Realizes ``GpuArraySort(planner="fused")`` (always the serial fused
    path), ``planner="sharded"`` (always the thread engine; its shard
    planning still collapses to one shard below the fan-out threshold),
    and ``planner="radix"`` (always the flat non-comparison row sort).
    ``MODES`` covers every engine in
    :data:`~repro.planner.model.ENGINE_NAMES` plus the historical
    aliases, and the error message is derived from it — adding an
    engine updates both automatically.
    """

    MODES = {
        "serial": "serial",
        "fused": "serial",
        "thread": "thread",
        "sharded": "thread",
        "process": "process",
        "radix": "radix",
    }

    def __init__(
        self,
        mode: str,
        *,
        workers: Optional[int] = None,
        min_rows_per_worker: int = DEFAULT_MIN_ROWS_PER_WORKER,
    ) -> None:
        super().__init__()
        try:
            self.engine = self.MODES[mode.lower()]
        except (KeyError, AttributeError):
            raise ValueError(
                f"unknown static planner mode {mode!r}; choose from "
                f"{sorted(set(self.MODES))}"
            ) from None
        self.mode = mode
        if workers is None:
            workers = (
                1
                if self.engine in ("serial", "radix")
                else max(2, DEFAULT_PROFILE.cpu_count)
            )
        self.workers = int(workers)
        self.min_rows_per_worker = int(min_rows_per_worker)

    def plan(
        self,
        num_rows: int,
        row_len: int,
        dtype,
        *,
        config: SortConfig = DEFAULT_CONFIG,
    ) -> ExecutionPlan:
        key = shape_class_key(num_rows, row_len, dtype)
        self._record_plan(key, self.engine)
        return ExecutionPlan(
            engine=self.engine,
            workers=self.workers,
            source="static",
            shape_key=key,
            min_rows_per_worker=self.min_rows_per_worker,
        )


_default_planner: Optional[ExecutionPlanner] = None


def get_default_planner() -> ExecutionPlanner:
    """The process-wide adaptive planner behind ``planner="auto"``.

    Shared so every sorter in the process pools its observations and the
    calibration runs at most once.
    """
    global _default_planner
    if _default_planner is None:
        _default_planner = ExecutionPlanner()
    return _default_planner


def set_default_planner(planner: Optional[ExecutionPlanner]) -> None:
    """Replace (or with ``None`` reset) the process-wide planner."""
    global _default_planner
    _default_planner = planner


def resolve_planner(spec, *, workers: Optional[int] = None):
    """Turn a ``planner=`` spec into a planner instance (or ``None``).

    ``None`` means no planner (legacy dispatch); ``"auto"`` the shared
    adaptive planner; any :attr:`StaticPlanner.MODES` name (``"fused"``/
    ``"serial"``/``"sharded"``/``"thread"``/``"process"``/``"radix"``)
    a :class:`StaticPlanner`; an object with a ``plan`` method passes
    through.
    """
    if spec is None:
        return None
    if hasattr(spec, "plan") and hasattr(spec, "executor_for"):
        return spec
    if isinstance(spec, str):
        key = spec.lower()
        if key in ("none",):
            return None
        if key == "auto":
            return get_default_planner()
        if key in StaticPlanner.MODES:
            return StaticPlanner(key, workers=workers)
        raise ValueError(
            f"unknown planner {spec!r}; choose from "
            f"['auto'] + {sorted(set(StaticPlanner.MODES))} or pass a planner instance"
        )
    raise TypeError(
        "planner must be None, a mode name, or a planner instance; "
        f"got {type(spec).__name__}"
    )
