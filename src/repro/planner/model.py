"""Host cost model: predicted milliseconds per candidate execution plan.

The paper's cost analysis (Section 6) prices the three phases in device
cycles; this module is the host-side analogue the adaptive planner uses
to *rank* candidate engines before it has seen a shape run.  The model
is deliberately coarse — a handful of calibrated scalars
(:class:`HostProfile`), each measured once per host by
:mod:`repro.planner.calibrate` — because it only needs to get the
*ordering* roughly right: the planner's online refinement
(:meth:`~repro.planner.planner.ExecutionPlanner.observe`) replaces model
predictions with measured wall times after the first few batches of a
shape, exactly like Dehne & Zaboli's deterministic sample sort re-tunes
its sampling parameters per input shape.

Terms priced per candidate:

* ``serial``  — work copy + phase 1 (sample gather/sort/pick) + fused
  in-place row sort + metadata recovery (batched binary search);
* ``thread``  — serial work divided by the measured effective
  parallelism, plus pool construction and per-shard dispatch;
* ``process`` — thread-shaped compute plus two full staging memcpys
  (in and back) and pool spawn cost;
* ``radix``   — work copy + flat row sort with *no* phase-1 or metadata
  terms (the non-comparison engine, :mod:`repro.core.radix`), priced as
  the cheaper of the compiled in-place sort (``N·n·log n`` comparisons)
  and the LSD digit passes (``passes × N·n`` linear traffic — the
  paper's STA-style radix cost).  On a NumPy host the compiled sort
  wins; a device backend would flip the min.

The engine list is :data:`ENGINE_NAMES` — every branch and error
message derives from it, so adding an engine cannot leave a stale
hardcoded trio behind.  All constants are in nanoseconds (or
microseconds/milliseconds where named) so the defaults read naturally
against real hardware.
"""

from __future__ import annotations

import dataclasses
import math
import os
from typing import Dict

import numpy as np

from ..core.config import DEFAULT_CONFIG, SortConfig

__all__ = ["HostProfile", "DEFAULT_PROFILE", "predict_ms", "ENGINE_NAMES"]

#: Engines the planner may choose between.
ENGINE_NAMES = ("serial", "thread", "process", "radix")


@dataclasses.dataclass(frozen=True)
class HostProfile:
    """Calibrated per-host constants consumed by :func:`predict_ms`.

    The defaults are conservative laptop-class numbers used when
    calibration has not run (``calibrated=False``); they keep the
    ordering sane (serial preferred until parallelism plausibly pays)
    without any disk or measurement dependency.
    """

    #: Logical cores visible to the process.
    cpu_count: int = 1
    #: ns per element·log2(n): in-place introsort of float32 rows.
    sort_ns: float = 4.0
    #: ns per byte: large contiguous memcpy.
    copy_ns_per_byte: float = 0.12
    #: ns per element: fancy-index gather (``np.take``-shaped traffic).
    gather_ns: float = 2.0
    #: Measured speedup of a 2-thread row sort over serial, divided by 2
    #: (1.0 = perfect scaling; ~0.5 on a single hardware core).
    thread_efficiency: float = 0.75
    #: µs per submitted shard task (future + queue + wakeup).
    thread_task_us: float = 60.0
    #: µs to construct/tear down one ThreadPoolExecutor.
    thread_pool_us: float = 250.0
    #: ms to spin up a process pool (fork/spawn + import).
    process_spawn_ms: float = 120.0
    #: ms per worker added to the spawn cost.
    process_per_worker_ms: float = 25.0
    #: ns per element per digit pass: one interpreted LSD radix pass
    #: (histogram + scan + stable scatter).  Deliberately large by
    #: default — on a NumPy host each pass materializes several
    #: full-batch temporaries, so the radix engine's direct (compiled
    #: row sort) term wins the min in :func:`predict_ms`.
    radix_pass_ns: float = 60.0
    #: True when these numbers came from a real micro-calibration.
    calibrated: bool = False

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HostProfile":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


DEFAULT_PROFILE = HostProfile(cpu_count=max(1, os.cpu_count() or 1))


def _dtype_scale(dtype: np.dtype) -> float:
    """Sort-cost multiplier vs the calibrated float32 baseline.

    Comparison cost is roughly flat across the numeric dtypes; memory
    traffic scales with item size, so wider elements pay a sublinear
    premium.
    """
    return max(1.0, np.dtype(dtype).itemsize / 4.0) ** 0.5


def _serial_ms(
    profile: HostProfile,
    num_rows: int,
    row_len: int,
    dtype: np.dtype,
    config: SortConfig,
    *,
    include_copy: bool = True,
) -> float:
    """Model of the fused serial pipeline over ``num_rows`` rows."""
    n = max(1, row_len)
    s = config.sample_size(n)
    q = config.num_splitters(n)
    scale = _dtype_scale(dtype)
    itemsize = np.dtype(dtype).itemsize

    copy_ns = (
        num_rows * n * itemsize * profile.copy_ns_per_byte if include_copy else 0.0
    )
    # Phase 1: strided gather + in-place sample sort + splitter pick.
    phase1_ns = num_rows * (
        s * profile.gather_ns
        + s * max(1.0, math.log2(max(2, s))) * profile.sort_ns * scale
        + q * profile.gather_ns
    )
    # Fused phases 2+3: one in-place row sort.
    sort_ns = num_rows * n * max(1.0, math.log2(max(2, n))) * profile.sort_ns * scale
    # Metadata recovery: ceil(log2 n) rounds of gather+compare on (N, q).
    meta_ns = num_rows * q * max(1.0, math.log2(max(2, n))) * profile.gather_ns
    return (copy_ns + phase1_ns + sort_ns + meta_ns) / 1e6


def _radix_ms(
    profile: HostProfile,
    num_rows: int,
    row_len: int,
    dtype: np.dtype,
) -> float:
    """Model of the flat radix engine: copy + row sort, no phase terms.

    The sort term is the min of the two strategies
    :func:`repro.core.radix.radix_sort_rows` can run: the compiled
    in-place comparison sort (``N·n·log n``) and the LSD digit passes
    (``passes × N·n`` linear traffic, one pass per ``digit_bits`` of
    key width) — whichever this host's calibrated constants say is
    cheaper.
    """
    n = max(1, row_len)
    itemsize = np.dtype(dtype).itemsize
    copy_ns = num_rows * n * itemsize * profile.copy_ns_per_byte
    direct_ns = (
        num_rows * n * max(1.0, math.log2(max(2, n)))
        * profile.sort_ns * _dtype_scale(dtype)
    )
    passes = max(1, itemsize)  # byte digits: itemsize passes
    lsd_ns = passes * num_rows * n * profile.radix_pass_ns
    return (copy_ns + min(direct_ns, lsd_ns)) / 1e6


def predict_ms(
    profile: HostProfile,
    engine: str,
    num_rows: int,
    row_len: int,
    dtype,
    *,
    workers: int = 1,
    shards: int = 1,
    config: SortConfig = DEFAULT_CONFIG,
) -> float:
    """Predicted wall milliseconds of one engine on an ``(N, n)`` batch."""
    if engine not in ENGINE_NAMES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINE_NAMES}")
    dtype = np.dtype(dtype)
    if num_rows <= 0:
        return 0.0
    if engine == "radix":
        return _radix_ms(profile, num_rows, row_len, dtype)
    serial = _serial_ms(profile, num_rows, row_len, dtype, config)
    if engine == "serial" or shards <= 1 or workers <= 1:
        overhead = 0.0
        if engine == "thread":
            overhead = profile.thread_pool_us / 1e3
        elif engine == "process":
            overhead = profile.process_spawn_ms
        return serial + overhead

    concurrency = min(workers, shards, max(1, profile.cpu_count))
    speedup = max(1.0, concurrency * profile.thread_efficiency)
    compute = _serial_ms(
        profile, num_rows, row_len, dtype, config, include_copy=(engine != "process")
    )
    parallel = compute / speedup
    if engine == "thread":
        return (
            parallel
            + profile.thread_pool_us / 1e3
            + shards * profile.thread_task_us / 1e3
        )
    # Process pool: staging copy in + copy back + spawn.
    staging_ms = 2 * num_rows * row_len * dtype.itemsize * profile.copy_ns_per_byte / 1e6
    spawn_ms = profile.process_spawn_ms + workers * profile.process_per_worker_ms
    return parallel + staging_ms + spawn_ms
