"""Batch Top-K selection via the bucket machinery (MS-REDUCE's real need).

The paper's motivating pipeline (MS-REDUCE, Section 1) sorts spectra by
intensity *in order to keep the most intense peaks*.  Full sorting is
more work than the selection needs: the phase-1/-2 machinery already
partitions every row into value-ordered buckets, so the K largest
elements of a row are exactly "the last few buckets, plus a filtered
slice of the one straddling the cut".

:func:`top_k` runs phases 1-2 unchanged, finds per row the bucket
containing the (n-K)-th order statistic, sorts **only the straddling
bucket** (the tail buckets are kept whole, order restored by one final
small sort over the selected ~K elements), and returns the K largest per
row in ascending order.  Work: O(n) bucketing + O(K log K) finish,
versus O(n log n) for sort-then-slice — the crossover the bench
measures.

This is an extension beyond the paper, built from its own parts; it
exists to demonstrate the claim that the bucket structure "can be
included as an integral part of many existing software" (Section 8).
"""

from __future__ import annotations

import numpy as np

from .bucketing import bucketize
from .config import DEFAULT_CONFIG, SortConfig
from .splitters import select_splitters

__all__ = ["top_k", "top_k_via_sort"]


def top_k_via_sort(batch: np.ndarray, k: int) -> np.ndarray:
    """Reference implementation: full row sort, slice the tail."""
    batch = np.asarray(batch)
    if batch.ndim != 2:
        raise ValueError(f"expected (N, n) batch, got shape {batch.shape}")
    if not 1 <= k <= batch.shape[1]:
        raise ValueError(f"k must be in [1, {batch.shape[1]}], got {k}")
    return np.sort(batch, axis=1)[:, -k:]


def top_k(
    batch: np.ndarray,
    k: int,
    *,
    config: SortConfig = DEFAULT_CONFIG,
    verify: bool = False,
) -> np.ndarray:
    """The K largest elements of every row, ascending, shape ``(N, k)``.

    Uses the GPU-ArraySort bucket partition to avoid sorting the ~n-K
    elements below the cut.  Ties across the cut boundary resolve the
    same way ``np.sort(...)[: , -k:]`` resolves them (by value; equal
    values are interchangeable).

    >>> top_k(np.array([[5., 1., 4., 2., 3.]]), 2).tolist()
    [[4.0, 5.0]]
    """
    batch = np.asarray(batch)
    if batch.ndim != 2:
        raise ValueError(f"expected (N, n) batch, got shape {batch.shape}")
    N, n = batch.shape
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if N == 0:
        return np.empty((0, k), dtype=batch.dtype)
    if batch.dtype.kind == "f" and np.isnan(batch).any():
        raise ValueError("batch contains NaN; no total order")

    # Phases 1-2 unchanged: partition every row into ordered buckets.
    spl = select_splitters(batch, config)
    buckets = bucketize(batch.copy(), spl.splitters, config)
    bucketed, offsets = buckets.bucketed, buckets.offsets

    # Buckets are value-ordered, so each row's top-k candidates form the
    # contiguous region starting at its straddling bucket: region size is
    # k + (partial straddle bucket) <= k + max_bucket.  Gather all
    # regions into one narrow (N, w) matrix and finish with a single
    # small sort — this is the work saving over a full-width sort.
    cut = n - k  # index of the first kept element in fully-sorted order
    rows = np.arange(N)
    # straddling bucket j: last bucket whose start <= cut
    j = (offsets[:, :-1] <= cut).sum(axis=1) - 1
    j = np.clip(j, 0, offsets.shape[1] - 2)
    start = offsets[rows, j]
    width = int((n - start).max(initial=0))
    col = start[:, None] + np.arange(width)[None, :]
    valid = col < n
    if batch.dtype.kind == "f":
        fill = -np.inf
    else:
        fill = np.iinfo(batch.dtype).min
    gathered = np.where(
        valid, bucketed[rows[:, None], np.minimum(col, n - 1)], fill
    )
    out = np.sort(gathered, axis=1)[:, -k:].astype(batch.dtype)

    if verify:
        expected = top_k_via_sort(batch, k)
        if not np.array_equal(out, expected):
            raise AssertionError("top_k diverged from the sort-then-slice oracle")
    return out
