"""CUDA-style per-thread kernels for the gpusim engine (Algorithms 1-3).

These are direct transcriptions of the paper's three per-thread pseudo
codes into the :mod:`repro.gpusim` generator-kernel model.  Every memory
touch is an explicit event, so launch reports expose the hardware
behaviour the paper's Section 3 argues about — coalescing of the staging
loads, divergence-free bucketing thanks to sentinel splitter pairs, and
shared-vs-global traffic ratios.

Layout conventions (all 1-D, row-major):

* ``d_data``   — the N*n element matrix, array ``i`` at ``[i*n, (i+1)*n)``;
* ``d_split``  — the N*q splitter matrix (paper Definition 3's ``S``);
* ``d_sizes``  — the N*p bucket-size matrix (Definition 4's ``Z``).

Phase 1 launches one *single-thread* block per array (the paper: "Per
block, single thread is used for performing all these operations");
phases 2 and 3 launch one block per array with one thread per bucket.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..gpusim import GpuDevice, PipelineReport
from .config import DEFAULT_CONFIG, SortConfig
from .splitters import regular_sample_indices, splitter_pick_indices

__all__ = [
    "splitter_selection_kernel",
    "bucketing_kernel",
    "bucket_sort_kernel",
    "run_arraysort_on_device",
]


def splitter_selection_kernel(ctx, shared, d_data, d_split, n, q, sample_idx, pick_idx):
    """Algorithm 1: regular sampling + insertion sort + splitter pick.

    One thread per block; ``shared`` is the block's sample buffer.
    """
    if ctx.thread_idx.x != 0:  # single-thread phase; spare lanes exit
        return
    base = ctx.block_idx.x * n
    s = len(sample_idx)

    # obtainSamples(Ai): strided gather from global into shared memory.
    for i in range(s):
        v = yield ctx.gload(d_data, base + sample_idx[i])
        yield ctx.sstore(shared, i, v)

    # insertionSort(samples), in shared memory on this single thread.
    for i in range(1, s):
        key = yield ctx.sload(shared, i)
        j = i - 1
        while j >= 0:
            cur = yield ctx.sload(shared, j)
            yield ctx.alu(1)  # the comparison
            if cur <= key:
                break
            yield ctx.sstore(shared, j + 1, cur)
            j -= 1
        yield ctx.sstore(shared, j + 1, key)

    # Gather q splitters at regular intervals of the sorted sample and
    # write them to consecutive global locations (consecutive blocks write
    # to consecutive memory, Section 5.1).
    for k in range(q):
        v = yield ctx.sload(shared, pick_idx[k])
        yield ctx.gstore(d_split, ctx.block_idx.x * q + k, v)


def bucketing_kernel(ctx, shared, d_data, d_split, d_sizes, n, p):
    """Algorithm 2: splitter-pair bucketing with in-place write-back.

    One block per array, one thread per bucket.  ``shared`` is a dict of
    block-shared arrays: the staged input row, the splitter sub-array with
    sentinels, the per-bucket counts, and the exclusive-scan offsets.

    Two scans over the staged row: the first counts this thread's bucket
    (Definition 4's ``zb``), the second emits matches straight to the
    array's own global footprint at the scanned offset — the write-back
    that saves ~50 % of device memory.
    """
    tid = ctx.thread_idx.x
    base = ctx.block_idx.x * n
    row = shared["row"]
    sp = shared["splitters"]  # length p + 1, with -inf / +inf sentinels
    counts = shared["counts"]
    offsets = shared["offsets"]
    q = p - 1

    # Cooperative staging: thread t loads elements t, t+p, t+2p, ...
    # Consecutive threads touch consecutive addresses -> coalesced.
    for i in range(tid, n, p):
        v = yield ctx.gload(d_data, base + i)
        yield ctx.sstore(row, i, v)

    # Stage this array's splitters (tiny but frequently used, Section 5.2)
    # and plant the two sentinels that remove boundary branches.
    if tid == 0:
        yield ctx.sstore(sp, 0, -math.inf)
        yield ctx.sstore(sp, p, math.inf)
    for k in range(tid, q, p):
        v = yield ctx.gload(d_split, ctx.block_idx.x * q + k)
        yield ctx.sstore(sp, k + 1, v)
    yield ctx.sync()

    # Definition 5: thread tid owns the splitter pair (sp[tid], sp[tid+1]).
    lo = yield ctx.sload(sp, tid)
    hi = yield ctx.sload(sp, tid + 1)

    # Scan 1: count. Every lane executes the same loads and the same
    # compare; only the counter increment differs -> no divergent paths,
    # exactly the property the sentinel pair buys (Section 5.2).
    count = 0
    for i in range(n):
        v = yield ctx.sload(row, i)
        yield ctx.alu(2)  # two range comparisons
        if lo <= v < hi:
            count += 1
    yield ctx.gstore(d_sizes, ctx.block_idx.x * p + tid, count)
    yield ctx.sstore(counts, tid, count)
    yield ctx.sync()

    # Exclusive scan of counts -> write-back offsets (single thread; p is
    # small, and this mirrors the paper's simple per-block bookkeeping).
    if tid == 0:
        acc = 0
        for j in range(p):
            yield ctx.sstore(offsets, j, acc)
            c = yield ctx.sload(counts, j)
            acc += c
    yield ctx.sync()

    # Scan 2: emit. Matches stream to contiguous global addresses starting
    # at this bucket's offset, inside the array's own storage.
    offset = yield ctx.sload(offsets, tid)
    write_pos = offset
    for i in range(n):
        v = yield ctx.sload(row, i)
        yield ctx.alu(2)
        if lo <= v < hi:
            yield ctx.gstore(d_data, base + write_pos, v)
            write_pos += 1


def bucket_sort_kernel(ctx, shared, d_data, d_sizes, n, p):
    """Algorithm 3: per-bucket in-place insertion sort.

    One block per array, one thread per bucket.  Bucket pointers are
    derived from the size matrix exactly as the paper describes ("pointers
    to each bucket are calculated based on the thread ids and the size of
    each bucket").
    """
    tid = ctx.thread_idx.x
    base = ctx.block_idx.x * n
    sizes = shared["sizes"]
    offsets = shared["offsets"]

    # Stage bucket sizes, then thread 0 turns them into offsets.
    for k in range(tid, p, ctx.block_dim.x):
        v = yield ctx.gload(d_sizes, ctx.block_idx.x * p + k)
        yield ctx.sstore(sizes, k, v)
    yield ctx.sync()
    if tid == 0:
        acc = 0
        for j in range(p):
            yield ctx.sstore(offsets, j, acc)
            c = yield ctx.sload(sizes, j)
            acc += c
    yield ctx.sync()

    start = yield ctx.sload(offsets, tid)
    size = yield ctx.sload(sizes, tid)
    start = int(start)
    size = int(size)

    # In-place insertion sort of d_data[base+start : base+start+size].
    for i in range(1, size):
        key = yield ctx.gload(d_data, base + start + i)
        j = i - 1
        while j >= 0:
            cur = yield ctx.gload(d_data, base + start + j)
            yield ctx.alu(1)
            if cur <= key:
                break
            yield ctx.gstore(d_data, base + start + j + 1, cur)
            j -= 1
        yield ctx.gstore(d_data, base + start + j + 1, key)


def run_arraysort_on_device(
    device: GpuDevice,
    batch: np.ndarray,
    config: SortConfig = DEFAULT_CONFIG,
) -> Tuple[np.ndarray, PipelineReport]:
    """Execute the full three-launch pipeline on a simulated device.

    Returns the sorted batch (host copy) and the :class:`PipelineReport`
    with per-launch hardware metrics.  Device allocations are freed before
    returning, leak-checked by tests via ``device.memory.live_allocations``.
    """
    batch = np.asarray(batch)
    if batch.ndim != 2:
        raise ValueError(f"expected (N, n) batch, got shape {batch.shape}")
    if batch.dtype.kind == "f" and np.isnan(batch).any():
        # NaN defeats the splitter range comparisons: every bucket's
        # "lo <= v < hi" is false, so the element would silently vanish
        # during write-back.  Match the vectorized engine: refuse.
        raise ValueError("batch contains NaN; no total order")
    N, n = batch.shape
    dtype = np.dtype(config.dtype)
    p = config.num_buckets(n)
    q = p - 1
    sample_idx = regular_sample_indices(n, config)
    pick_idx = splitter_pick_indices(len(sample_idx), p)

    pipeline = PipelineReport()
    d_data = d_split = d_sizes = None
    try:
        d_data = device.memory.alloc_like(batch.astype(dtype).ravel(), name="data")
        d_split = device.memory.alloc(max(N * q, 1), dtype, name="splitters")
        d_sizes = device.memory.alloc(N * p, np.int32, name="sizes")
        rep1 = device.launch(
            splitter_selection_kernel,
            grid=N,
            block=1,
            args=(d_data, d_split, n, q, sample_idx, pick_idx),
            shared_setup=lambda sm: sm.alloc(len(sample_idx), dtype, "samples"),
            name="phase1_splitter_selection",
        )
        pipeline.add(rep1)

        def phase2_shared(sm):
            return {
                "row": sm.alloc(n, dtype, "row"),
                "splitters": sm.alloc(p + 1, np.float64, "splitters"),
                "counts": sm.alloc(p, np.int32, "counts"),
                "offsets": sm.alloc(p, np.int32, "offsets"),
            }

        rep2 = device.launch(
            bucketing_kernel,
            grid=N,
            block=p,
            args=(d_data, d_split, d_sizes, n, p),
            shared_setup=phase2_shared,
            name="phase2_bucketing",
        )
        pipeline.add(rep2)

        def phase3_shared(sm):
            return {
                "sizes": sm.alloc(p, np.int32, "sizes"),
                "offsets": sm.alloc(p, np.int32, "offsets"),
            }

        rep3 = device.launch(
            bucket_sort_kernel,
            grid=N,
            block=p,
            args=(d_data, d_sizes, n, p),
            shared_setup=phase3_shared,
            name="phase3_bucket_sort",
        )
        pipeline.add(rep3)
        sorted_host = d_data.copy_to_host().reshape(N, n)
    finally:
        for arr in (d_data, d_split, d_sizes):
            if arr is not None:
                device.memory.free(arr)
    return sorted_host, pipeline
