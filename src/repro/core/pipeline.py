"""Out-of-core batch sorting (the paper's Section 9 future work).

The paper promises "an out-of-core GPU based array sort algorithm which
will be able to sort huge datasets ... without any concern of GPU global
memory", whose design "hides data transfer latencies in runtime".  This
module implements that extension:

* :class:`OutOfCoreSorter` splits a host-resident batch into chunks sized
  by the memory model (each chunk's footprint, including splitter/size
  metadata, must fit the device, halved when double-buffering so two
  chunks can be resident at once);
* transfers are modeled with a PCIe bandwidth term; with
  ``overlap=True`` a dual-buffer schedule overlaps chunk *i*'s compute
  with chunk *i+1*'s upload and chunk *i-1*'s download, so total modeled
  time approaches ``max(compute, transfer)`` instead of their sum;
* the actual sorting of each chunk goes through any
  :class:`~repro.core.array_sort.GpuArraySort` engine.

The timeline math is a textbook software pipeline: stage latencies
``up_i, comp_i, down_i`` with the resource constraints "one H2D engine,
one compute engine, one D2H engine" (Kepler has dual copy engines, so
up/down do not contend with each other).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from ..gpusim.device import DeviceSpec, K40C
from .array_sort import GpuArraySort
from .config import DEFAULT_CONFIG, SortConfig

__all__ = ["OutOfCoreSorter", "OutOfCoreResult", "ChunkPlan", "plan_chunks", "pipeline_timeline"]

#: Effective host<->device bandwidth in GB/s.  PCIe 3.0 x16 peaks at
#: ~15.8 GB/s; pinned-memory transfers sustain ~12, pageable ~6.  We use
#: the pinned figure, as any serious out-of-core pipeline pins its
#: staging buffers.
PCIE_GBPS = 12.0


@dataclasses.dataclass(frozen=True)
class ChunkPlan:
    """How a host batch is split across device-sized chunks."""

    num_arrays: int
    array_size: int
    arrays_per_chunk: int
    num_chunks: int
    chunk_bytes: int
    device_capacity_bytes: int
    double_buffered: bool

    def chunk_slices(self) -> List[slice]:
        """Row slices of the host batch, one per chunk."""
        out = []
        for start in range(0, self.num_arrays, self.arrays_per_chunk):
            out.append(slice(start, min(start + self.arrays_per_chunk, self.num_arrays)))
        return out


def plan_chunks(
    num_arrays: int,
    array_size: int,
    *,
    device: DeviceSpec = K40C,
    config: SortConfig = DEFAULT_CONFIG,
    double_buffered: bool = True,
) -> ChunkPlan:
    """Compute the largest per-chunk array count that fits the device.

    With double buffering, two chunks must be resident simultaneously, so
    each gets half the usable capacity.  Raises ``ValueError`` if even a
    single array does not fit (the paper's algorithm requires one array
    in shared memory, many on the device).
    """
    from ..analysis.memory_model import arraysort_bytes_per_array

    if num_arrays < 0 or array_size < 1:
        raise ValueError("need num_arrays >= 0 and array_size >= 1")
    per_array = arraysort_bytes_per_array(array_size, config)
    budget = device.usable_global_mem_bytes // (2 if double_buffered else 1)
    arrays_per_chunk = budget // per_array
    if arrays_per_chunk < 1:
        raise ValueError(
            f"one array of {array_size} elements ({per_array} bytes) does not "
            f"fit the per-chunk budget of {budget} bytes"
        )
    arrays_per_chunk = min(arrays_per_chunk, max(num_arrays, 1))
    num_chunks = -(-num_arrays // arrays_per_chunk) if num_arrays else 0
    return ChunkPlan(
        num_arrays=num_arrays,
        array_size=array_size,
        arrays_per_chunk=int(arrays_per_chunk),
        num_chunks=int(num_chunks),
        chunk_bytes=int(arrays_per_chunk) * per_array,
        device_capacity_bytes=device.usable_global_mem_bytes,
        double_buffered=double_buffered,
    )


def pipeline_timeline(
    upload_ms: List[float],
    compute_ms: List[float],
    download_ms: List[float],
    *,
    overlap: bool = True,
) -> float:
    """Total modeled milliseconds for a chunked upload/compute/download run.

    Without overlap, stages serialize: ``sum(up + comp + down)``.  With
    overlap, each engine (H2D, compute, D2H) processes chunks in order;
    chunk ``i`` computes only after its upload, downloads only after its
    compute, and each engine is busy with at most one chunk at a time.
    This is the classic pipeline recurrence, and with balanced stages
    approaches ``max(sum(up), sum(comp), sum(down))``.
    """
    k = len(compute_ms)
    if not (len(upload_ms) == len(download_ms) == k):
        raise ValueError("stage lists must have equal length")
    if k == 0:
        return 0.0
    if not overlap:
        return sum(upload_ms) + sum(compute_ms) + sum(download_ms)
    up_free = comp_free = down_free = 0.0
    finish = 0.0
    for i in range(k):
        up_done = max(up_free, 0.0) + upload_ms[i]
        up_free = up_done
        comp_done = max(comp_free, up_done) + compute_ms[i]
        comp_free = comp_done
        down_done = max(down_free, comp_done) + download_ms[i]
        down_free = down_done
        finish = down_done
    return finish


@dataclasses.dataclass
class OutOfCoreResult:
    """Outcome of an out-of-core run."""

    batch: np.ndarray
    plan: ChunkPlan
    modeled_ms: float
    modeled_ms_no_overlap: float
    per_chunk: Dict[str, List[float]]

    @property
    def overlap_speedup(self) -> float:
        """How much latency hiding bought (paper Section 9's goal)."""
        if self.modeled_ms == 0:
            return 1.0
        return self.modeled_ms_no_overlap / self.modeled_ms

    def build_timeline(self):
        """Construct the full stream/event schedule for this run.

        Returns a :class:`repro.gpusim.streams.SimTimeline` with the
        dual-buffer schedule already run — per-op start/finish instants
        and per-engine utilization are inspectable.  Its makespan equals
        ``modeled_ms`` (the closed-form recurrence), which tests verify.
        """
        from ..gpusim.streams import SimTimeline, build_double_buffered_schedule

        timeline = SimTimeline()
        build_double_buffered_schedule(
            timeline,
            self.per_chunk["upload_ms"],
            self.per_chunk["compute_ms"],
            self.per_chunk["download_ms"],
        )
        return timeline


class OutOfCoreSorter:
    """Sorts host batches larger than device memory, chunk by chunk.

    ``engine`` selects the per-chunk sorter engine; ``overlap`` toggles the
    dual-buffer transfer/compute overlap in the *modeled* timeline (the
    host-side computation is identical either way).
    """

    def __init__(
        self,
        config: SortConfig = DEFAULT_CONFIG,
        *,
        device: DeviceSpec = K40C,
        engine: str = "vectorized",
        overlap: bool = True,
        pcie_gbps: float = PCIE_GBPS,
    ) -> None:
        if pcie_gbps <= 0:
            raise ValueError("pcie_gbps must be positive")
        self.config = config
        self.device = device
        self.engine = engine
        self.overlap = overlap
        self.pcie_gbps = pcie_gbps

    def _transfer_ms(self, nbytes: int) -> float:
        return nbytes / (self.pcie_gbps * 1e9) * 1e3

    def sort(self, batch: np.ndarray, *, inplace: bool = False) -> OutOfCoreResult:
        """Sort an arbitrarily large (host-resident) batch."""
        from ..analysis.perfmodel import model_arraysort_ms

        batch = np.asarray(batch)
        if batch.ndim != 2:
            raise ValueError(f"expected (N, n) batch, got shape {batch.shape}")
        work = batch if inplace else batch.copy()
        N, n = work.shape
        plan = plan_chunks(
            N, n, device=self.device, config=self.config,
            double_buffered=self.overlap,
        )

        sorter = GpuArraySort(self.config, engine=self.engine)
        uploads: List[float] = []
        computes: List[float] = []
        downloads: List[float] = []
        itemsize = work.dtype.itemsize
        for sl in plan.chunk_slices():
            chunk = work[sl]
            sorter.sort(chunk, inplace=True)
            nbytes = chunk.shape[0] * n * itemsize
            uploads.append(self._transfer_ms(nbytes))
            downloads.append(self._transfer_ms(nbytes))
            computes.append(
                model_arraysort_ms(self.device, chunk.shape[0], n, self.config)
            )

        total = pipeline_timeline(uploads, computes, downloads, overlap=self.overlap)
        total_serial = pipeline_timeline(uploads, computes, downloads, overlap=False)
        return OutOfCoreResult(
            batch=work,
            plan=plan,
            modeled_ms=total,
            modeled_ms_no_overlap=total_serial,
            per_chunk={
                "upload_ms": uploads,
                "compute_ms": computes,
                "download_ms": downloads,
            },
        )
