"""Non-comparison row-sort engine: batched LSD radix over sortable keys.

This module promotes the :mod:`repro.baselines.radix` machinery into the
hot path as the planner's ``"radix"`` engine.  Where the fused engine
(:mod:`repro.core.fused`) spends its time on phase-1 sampling and on
recovering bucket metadata with a batched binary search, the radix
engine sorts rows *flat*: no splitters, no bucket offsets, no metadata
— just the rows, totally ordered.  On large rows (n >= ~2000) that is
where the fused engine's time actually goes, so dropping it is the win
the bench-hotpath radix gate pins.

Two ingredients, shared by every strategy:

* **Sortable keys** — :func:`sortable_keys` bit-twiddles any supported
  dtype into an unsigned integer space whose unsigned order equals the
  value order (the CUB/Thrust mapping: flip all bits of negative
  floats, flip only the sign bit of the rest; XOR the sign bit of
  signed ints).  :func:`keys_to_values` is the exact inverse; the pair
  is property-tested as a bijection over +-0.0, +-inf, NaN payloads and
  subnormals in ``tests/test_core_radix.py``.
* **NaN key mapping** — ``nan_policy="sort_to_end"`` is honored *in key
  space*, not by splitting the batch or post-processing: every NaN
  (any payload, either sign) maps to the canonical quiet-NaN key, which
  sits above the key of ``+inf``, so NaNs land at the end of their row
  as a side effect of the sort itself.  Decoding yields the canonical
  quiet NaN — exactly the bit pattern ``np.sort`` produces.

Strategies (``radix_sort_rows(strategy=...)``):

``"lsd"``
    The GPU-faithful formulation: ``ceil(key_bits / digit_bits)``
    digit passes, each one NumPy histogram + exclusive scan + stable
    scatter over *all* rows at once.  Rows are kept independent with
    the segment-id trick from :mod:`repro.core.fused`: the histogram
    bins are ``row_index * radix + digit``, so one flat ``bincount`` /
    ``cumsum`` / scatter handles the whole batch per pass.  The double
    buffer comes from the :class:`~repro.core.workspace.ScratchArena`
    when one is passed, so steady state allocates nothing new.
``"direct"``
    The production shortcut on this host: sort each row with NumPy's
    compiled kernel in value space.  The key bijection guarantees this
    is order-equivalent to the LSD passes (the suite cross-pins them
    byte for byte); NumPy >= 2 dispatches 32/64-bit rows to SIMD
    kernels at a few ns/element, which interpreted digit passes cannot
    approach — each pass materializes several full-batch temporaries.
``"auto"``
    Picks ``"direct"``.  The crossover the cost model prices
    (``passes * N*n`` linear traffic vs ``N*n*log n`` comparisons)
    never favors interpreted passes on a NumPy host; a compiled or
    device backend would flip it, which is why the planner's cost term
    (:func:`repro.planner.model.predict_ms`) takes the min of both.

Either strategy is byte-identical to ``np.sort(axis=1)`` on every
supported dtype, including NaN placement under ``sort_to_end``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

__all__ = [
    "RADIX_STRATEGIES",
    "RadixInfo",
    "supports_dtype",
    "sortable_keys",
    "keys_to_values",
    "radix_sort_rows",
]

#: Accepted values for ``radix_sort_rows(strategy=...)``.
RADIX_STRATEGIES = ("auto", "direct", "lsd")

#: Unsigned key container per item size.
_UINT_BY_SIZE = {
    1: np.dtype(np.uint8),
    2: np.dtype(np.uint16),
    4: np.dtype(np.uint32),
    8: np.dtype(np.uint64),
}

#: Canonical quiet-NaN bit patterns per float item size — the single
#: payload ``np.sort`` emits for any input NaN, and therefore the one
#: every NaN maps to in key space under ``sort_to_end``.
_CANONICAL_NAN_BITS = {2: 0x7E00, 4: 0x7FC00000, 8: 0x7FF8000000000000}


def supports_dtype(dtype) -> bool:
    """True when the radix engine can sort batches of ``dtype``.

    Covers the full numeric surface ``validate_batch`` admits: bool,
    signed/unsigned integers, and IEEE floats up to 8 bytes.
    """
    try:
        dtype = np.dtype(dtype)
    except TypeError:
        return False
    return dtype.kind in "biuf" and dtype.itemsize in _UINT_BY_SIZE


def _require_supported(dtype) -> np.dtype:
    dtype = np.dtype(dtype)
    if not supports_dtype(dtype):
        raise TypeError(
            f"radix engine does not support dtype {dtype!r}; supported kinds "
            "are bool, int, uint, and float with itemsize <= 8"
        )
    return dtype


def sortable_keys(values: np.ndarray) -> np.ndarray:
    """Map ``values`` to unsigned keys whose unsigned order == value order.

    Generalizes :func:`repro.baselines.radix.float32_to_sortable_uint32`
    across the numeric dtypes:

    * floats — flip all bits of negatives (reversing their descending
      bit order), set the sign bit of non-negatives (placing them above
      every negative);
    * signed ints — XOR the sign bit (a bias by ``2**(bits-1)``);
    * unsigned ints / bool — already in key order; widened/copied.

    The mapping is a bijection; :func:`keys_to_values` inverts it.  NaN
    payloads are *preserved* here — the ``sort_to_end`` canonical-NaN
    mapping is a separate, deliberate step in :func:`radix_sort_rows`.
    """
    values = np.ascontiguousarray(values)
    dtype = _require_supported(values.dtype)
    utype = _UINT_BY_SIZE[dtype.itemsize]
    if dtype.kind == "b":
        return values.astype(np.uint8)
    if dtype.kind == "u":
        return values.copy()
    bits = values.view(utype)
    top = utype.type(1 << (8 * dtype.itemsize - 1))
    if dtype.kind == "i":
        return bits ^ top
    all_ones = utype.type(~utype.type(0))
    sign = (bits >> utype.type(8 * dtype.itemsize - 1)).astype(bool)
    return bits ^ np.where(sign, all_ones, top)


def keys_to_values(keys: np.ndarray, dtype) -> np.ndarray:
    """Inverse of :func:`sortable_keys`: unsigned keys back to ``dtype``."""
    dtype = _require_supported(dtype)
    utype = _UINT_BY_SIZE[dtype.itemsize]
    keys = np.ascontiguousarray(keys, dtype=utype)
    if dtype.kind == "b":
        return keys.astype(np.bool_)
    if dtype.kind == "u":
        return keys.astype(dtype, copy=True)
    top = utype.type(1 << (8 * dtype.itemsize - 1))
    if dtype.kind == "i":
        return (keys ^ top).view(dtype)
    # Keys with the top bit set were non-negative floats (sign bit was
    # flipped on); the rest were negatives (all bits were flipped).
    all_ones = utype.type(~utype.type(0))
    sign = (keys >> utype.type(8 * dtype.itemsize - 1)).astype(bool)
    return (keys ^ np.where(sign, top, all_ones)).view(dtype)


@dataclasses.dataclass(frozen=True)
class RadixInfo:
    """What one :func:`radix_sort_rows` call actually did."""

    #: ``"direct"`` or ``"lsd"`` (``"auto"`` resolves before recording).
    strategy: str
    #: Digit passes executed (0 for the direct strategy).
    passes: int = 0
    #: Digit width of the LSD passes (0 for the direct strategy).
    digit_bits: int = 0


def radix_sort_rows(
    work: np.ndarray,
    *,
    nan_policy: str = "sort_to_end",
    strategy: str = "auto",
    digit_bits: int = 8,
    workspace=None,
) -> RadixInfo:
    """Sort every row of ``work`` in place; returns a :class:`RadixInfo`.

    ``work`` must be a writeable, C-contiguous ``(N, n)`` batch of a
    :func:`supports_dtype` dtype.  NaNs follow ``nan_policy``:
    ``"sort_to_end"`` (default, matching ``np.sort``) places them after
    every finite value and ``+inf`` via the canonical-NaN key mapping;
    ``"raise"`` probes for NaN and rejects the batch.  Callers that
    have already validated NaN-freeness (the sorter boundary) pass
    ``sort_to_end`` and pay no probe.

    ``workspace`` (a :class:`~repro.core.workspace.ScratchArena`) backs
    the LSD strategy's key/double buffers so repeated same-shape calls
    allocate nothing; the direct strategy is allocation-free by itself.
    """
    work = np.asarray(work)
    if work.ndim != 2:
        raise ValueError(f"expected (N, n) batch, got shape {work.shape}")
    _require_supported(work.dtype)
    if strategy not in RADIX_STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {RADIX_STRATEGIES}"
        )
    if nan_policy not in ("raise", "sort_to_end"):
        raise ValueError(
            f"unknown nan_policy {nan_policy!r}; choose from "
            "('raise', 'sort_to_end')"
        )
    if work.dtype.kind == "f" and work.size and nan_policy == "raise":
        # min() propagates NaN, so one cheap reduction is the probe.
        if np.isnan(work.min()):
            raise ValueError(
                "batch contains NaN; no total order (use "
                "nan_policy='sort_to_end' to keep them)"
            )
    if strategy == "auto":
        # Interpreted digit passes lose to the compiled row sort by an
        # order of magnitude at every realistic shape (see module
        # docstring); 'auto' exists so a compiled backend can flip this
        # without touching call sites.
        strategy = "direct"
    if work.shape[0] == 0 or work.shape[1] <= 1:
        return RadixInfo(strategy=strategy)
    if strategy == "direct":
        work.sort(axis=1)
        return RadixInfo(strategy="direct")
    passes = int(_lsd_sort_rows(work, digit_bits=digit_bits,
                                workspace=workspace))
    return RadixInfo(strategy="lsd", passes=passes, digit_bits=digit_bits)


def _lsd_sort_rows(
    work: np.ndarray,
    *,
    digit_bits: int,
    workspace=None,
) -> int:
    """Batched LSD digit passes: histogram + exclusive scan + stable scatter.

    Every pass runs over all rows at once.  Row independence comes from
    fusing the row index into the histogram bin (``row * radix +
    digit`` — the segment-id device from :mod:`repro.core.fused`), so
    the per-pass ``bincount``/``cumsum``/scatter is one flat operation
    regardless of N.  Memory: the histogram holds ``N * 2**digit_bits``
    bins, which is why the default digit is a byte.

    Returns the number of digit passes executed.  Every arena view taken
    here stays local — nothing arena-backed escapes this function.
    """
    if not 1 <= digit_bits <= 16:
        raise ValueError(f"digit_bits must be in [1, 16], got {digit_bits}")
    n_rows, row_len = work.shape
    utype = _UINT_BY_SIZE[work.dtype.itemsize]
    key_bits = 8 * utype.itemsize
    num_passes = -(-key_bits // digit_bits)
    radix = 1 << digit_bits

    if workspace is not None:
        keys = workspace.get("radix.keys", work.shape, utype)
        spare = workspace.get("radix.buf", work.shape, utype)
    else:
        keys = np.empty(work.shape, utype)
        spare = np.empty(work.shape, utype)
    keys[...] = sortable_keys(work)
    if work.dtype.kind == "f":
        if workspace is not None:
            nan_mask = workspace.get("radix.nanmask", work.shape, np.bool_)
        else:
            nan_mask = np.empty(work.shape, np.bool_)
        np.isnan(work, out=nan_mask)
        if nan_mask.any():
            # sort_to_end in key space: every NaN payload becomes the
            # canonical quiet NaN, whose key exceeds the key of +inf.
            canonical = sortable_keys(
                np.array([_CANONICAL_NAN_BITS[work.dtype.itemsize]], utype)
                .view(work.dtype)
            )[0]
            np.copyto(keys, canonical, where=nan_mask)

    src = keys.reshape(-1)
    dst = spare.reshape(-1)
    total = src.size
    # Fused (row, digit) histogram bins: digits of row r live in
    # [r * radix, (r + 1) * radix), so one flat bincount + exclusive
    # scan yields per-row digit starts that are already global flat
    # positions (rows are laid out consecutively).
    seg_base = (np.arange(n_rows, dtype=np.int64) * radix).repeat(row_len)
    flat_rank = np.arange(total, dtype=np.int64)
    digit_mask = utype.type(radix - 1)
    for pass_idx in range(num_passes):
        shift = utype.type(pass_idx * digit_bits)
        bins = seg_base + ((src >> shift) & digit_mask).astype(np.int64)
        counts = np.bincount(bins, minlength=n_rows * radix)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        # Stable scatter: element i goes to starts[bin_i] + (its stable
        # rank within bin_i).  The rank term is expressed through the
        # stable order exactly as the count/scan/scatter kernels would
        # compute it per tile.
        order = np.argsort(bins, kind="stable")
        positions = np.empty(total, dtype=np.int64)
        positions[order] = starts[bins[order]] + (
            flat_rank - np.repeat(starts, counts)
        )
        dst[positions] = src
        src, dst = dst, src
    work[...] = keys_to_values(src.reshape(work.shape), work.dtype)
    return num_passes
