"""Streaming batch sorter: arrays arriving faster than you can blink.

The paper's conclusion (Section 8): "modern scientific equipment is
capable of generating GBs of data per second" — spectra arrive as an
unbounded *stream*, not a preassembled matrix.  :class:`StreamingSorter`
adapts the batch algorithm to that shape:

* arrays are ``push()``-ed one at a time (or in slabs) as acquired;
* a staging buffer accumulates until a device-sized batch is full, then
  one three-phase sort runs and the sorted batch is emitted to the
  consumer callback (or an internal queue);
* ``flush()`` drains the partial tail batch at end of acquisition;
* throughput accounting (arrays/s in, batches out, modeled device
  milliseconds per batch via the perf model) exposes whether the sorter
  keeps up with the instrument — the "GPU boost" integration the paper
  pitches for existing software.

Pure composition: no new algorithm, just the arrival-side plumbing a
production adopter writes first.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, List, Optional

import numpy as np

from ..gpusim.device import DeviceSpec, K40C
from .array_sort import GpuArraySort
from .config import DEFAULT_CONFIG, SortConfig

__all__ = ["StreamingSorter", "StreamStats"]


@dataclasses.dataclass
class StreamStats:
    """Running counters of a streaming session."""

    arrays_in: int = 0
    batches_out: int = 0
    arrays_out: int = 0
    wall_seconds_sorting: float = 0.0
    modeled_device_ms: float = 0.0

    @property
    def arrays_pending(self) -> int:
        return self.arrays_in - self.arrays_out

    @property
    def modeled_throughput_arrays_per_s(self) -> float:
        """Arrays/second the modeled device would sustain."""
        if self.modeled_device_ms == 0:
            return 0.0
        return self.arrays_out / (self.modeled_device_ms / 1e3)


class StreamingSorter:
    """Accumulate arriving arrays into batches; sort and emit each batch.

    Parameters
    ----------
    array_size:
        Element count of every arriving array (fixed per session, like a
        configured acquisition method).
    batch_arrays:
        Arrays per sorted batch.  ``None`` sizes it from the device's
        memory model (the largest batch the device holds, halved for
        double buffering).
    on_batch:
        Callback receiving each sorted ``(B, n)`` matrix.  When omitted,
        sorted batches are collected on ``results``.
    """

    def __init__(
        self,
        array_size: int,
        *,
        config: SortConfig = DEFAULT_CONFIG,
        device: DeviceSpec = K40C,
        batch_arrays: Optional[int] = None,
        on_batch: Optional[Callable[[np.ndarray], None]] = None,
        dtype=None,
    ) -> None:
        if array_size < 1:
            raise ValueError("array_size must be >= 1")
        self.array_size = int(array_size)
        self.config = config
        self.device = device
        self.dtype = np.dtype(dtype if dtype is not None else config.dtype)
        if batch_arrays is None:
            from .pipeline import plan_chunks

            plan = plan_chunks(
                2**62, array_size, device=device, config=config,
                double_buffered=True,
            )
            batch_arrays = plan.arrays_per_chunk
        if batch_arrays < 1:
            raise ValueError("batch_arrays must be >= 1")
        self.batch_arrays = int(batch_arrays)
        self.on_batch = on_batch
        self.results: List[np.ndarray] = []
        self.stats = StreamStats()
        self._sorter = GpuArraySort(config)
        self._staging = np.empty((self.batch_arrays, self.array_size), self.dtype)
        self._fill = 0
        self._closed = False

    # -- producing side ---------------------------------------------------
    def push(self, array: np.ndarray) -> int:
        """Add one arriving array; returns batches emitted as a result."""
        return self.push_slab(np.asarray(array).reshape(1, -1))

    def push_slab(self, slab: np.ndarray) -> int:
        """Add many arrays at once (an acquisition buffer flush)."""
        if self._closed:
            raise RuntimeError("streaming session already flushed/closed")
        slab = np.asarray(slab)
        if slab.ndim == 1:
            slab = slab.reshape(1, -1)
        if slab.ndim != 2 or slab.shape[1] != self.array_size:
            raise ValueError(
                f"expected arrays of size {self.array_size}, got {slab.shape}"
            )
        emitted = 0
        offset = 0
        while offset < slab.shape[0]:
            take = min(self.batch_arrays - self._fill, slab.shape[0] - offset)
            self._staging[self._fill : self._fill + take] = slab[
                offset : offset + take
            ]
            self._fill += take
            offset += take
            self.stats.arrays_in += take
            if self._fill == self.batch_arrays:
                self._emit(self._staging)
                self._fill = 0
                emitted += 1
        return emitted

    def flush(self) -> int:
        """Sort and emit the partial tail batch; ends the session."""
        if self._closed:
            return 0
        emitted = 0
        if self._fill:
            self._emit(self._staging[: self._fill])
            self._fill = 0
            emitted = 1
        self._closed = True
        return emitted

    # -- internals -----------------------------------------------------------
    def _emit(self, batch: np.ndarray) -> None:
        from ..analysis.perfmodel import model_arraysort_ms

        t0 = time.perf_counter()
        result = self._sorter.sort(batch)  # copies: staging is reused
        self.stats.wall_seconds_sorting += time.perf_counter() - t0
        self.stats.modeled_device_ms += model_arraysort_ms(
            self.device, batch.shape[0], self.array_size, self.config
        )
        self.stats.batches_out += 1
        self.stats.arrays_out += batch.shape[0]
        if self.on_batch is not None:
            self.on_batch(result.batch)
        else:
            self.results.append(result.batch)
