"""Streaming batch sorter: arrays arriving faster than you can blink.

The paper's conclusion (Section 8): "modern scientific equipment is
capable of generating GBs of data per second" — spectra arrive as an
unbounded *stream*, not a preassembled matrix.  :class:`StreamingSorter`
adapts the batch algorithm to that shape:

* arrays are ``push()``-ed one at a time (or in slabs) as acquired;
* a staging buffer accumulates until a device-sized batch is full, then
  one three-phase sort runs and the sorted batch is emitted to the
  consumer callback (or an internal queue);
* ``flush()`` drains the partial tail batch at end of acquisition, and
  ``close()`` ends the session explicitly (both idempotent);
* throughput accounting (arrays/s in, batches out, modeled device
  milliseconds per batch via the perf model) exposes whether the sorter
  keeps up with the instrument — the "GPU boost" integration the paper
  pitches for existing software.

Resilience plumbing for long-running acquisition sessions:

* every emitted batch carries a **monotonic batch id** (recorded on
  ``emitted_batch_ids`` in emission order);
* emission is **at-least-once**: if the sorter or the consumer callback
  raises, the staging buffer and the pending batch id are retained, and
  the next ``push``/``flush`` retries the same batch under the same id —
  a consumer that dedups by id sees effectively-once delivery;
* ``checkpoint()``/``restore()`` snapshot the producer-side state
  (staging buffer, fill level, batch-id counters, stats) so a crashed
  session can resume without losing buffered arrays;
* when the injected ``sorter`` is a
  :class:`repro.resilience.ResilientSorter`, rows it quarantines are
  diverted to ``dead_letters`` (a
  :class:`repro.resilience.DeadLetterQueue`) instead of aborting the
  session — they never appear in an emitted batch.

Pure composition: no new algorithm, just the arrival-side plumbing a
production adopter writes first.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, List, Optional

import numpy as np

from ..gpusim.device import DeviceSpec, K40C
from .array_sort import GpuArraySort
from .config import DEFAULT_CONFIG, SortConfig

__all__ = ["StreamingSorter", "StreamStats", "StreamCheckpoint"]


@dataclasses.dataclass
class StreamStats:
    """Running counters of a streaming session."""

    arrays_in: int = 0
    batches_out: int = 0
    arrays_out: int = 0
    arrays_quarantined: int = 0
    #: Dead letters aged out by the queue's capacity bound (payloads
    #: dropped oldest-first; the quarantine *counters* above still hold).
    dead_letters_dropped: int = 0
    wall_seconds_sorting: float = 0.0
    modeled_device_ms: float = 0.0

    @property
    def arrays_pending(self) -> int:
        return self.arrays_in - self.arrays_out - self.arrays_quarantined

    @property
    def modeled_throughput_arrays_per_s(self) -> float:
        """Arrays/second the modeled device would sustain."""
        if self.modeled_device_ms == 0:
            return 0.0
        return self.arrays_out / (self.modeled_device_ms / 1e3)


@dataclasses.dataclass
class StreamCheckpoint:
    """Producer-side snapshot of a :class:`StreamingSorter` session.

    Holds copies of the staging buffer's filled prefix, the batch-id
    counters, and the stats — everything needed to resume ingestion
    after a crash.  Consumer-side state (``results``, ``dead_letters``)
    is deliberately excluded: re-emission after a restore is the
    at-least-once path, and the consumer dedups by batch id.
    """

    array_size: int
    staging: np.ndarray
    fill: int
    next_batch_id: int
    pending_batch_id: Optional[int]
    closed: bool
    stats: StreamStats


class StreamingSorter:
    """Accumulate arriving arrays into batches; sort and emit each batch.

    Parameters
    ----------
    array_size:
        Element count of every arriving array (fixed per session, like a
        configured acquisition method).
    batch_arrays:
        Arrays per sorted batch.  ``None`` sizes it from the device's
        memory model (the largest batch the device holds, halved for
        double buffering).
    on_batch:
        Callback receiving each sorted ``(B, n)`` matrix.  When omitted,
        sorted batches are collected on ``results``.  Ids of emitted
        batches land on ``emitted_batch_ids`` in the same order.
    sorter:
        Sorter to run on each full batch — any object whose ``sort(batch)``
        returns a result with a ``batch`` attribute.  Defaults to
        :class:`GpuArraySort`; pass a
        :class:`repro.resilience.ResilientSorter` to get retry/fallback
        behavior and quarantine-to-dead-letter instead of session aborts.
    parallel / workers:
        Sharded multicore execution for the default sorter (see
        :mod:`repro.parallel`); ignored when an explicit ``sorter`` is
        injected (configure that sorter directly instead).  Streaming
        batches all share one shape, so the executor's shard plan and the
        phase-1 index-plan cache are reused batch after batch.
    planner / workspace:
        Adaptive engine planning and scratch-arena pooling for the
        default sorter (see :class:`GpuArraySort`); like ``parallel``,
        ignored when an explicit ``sorter`` is injected.  With an arena,
        steady-state emission is allocation-free: ``on_batch`` consumers
        receive a zero-copy view **valid until the next emission** (copy
        to retain), while batches collected on ``results`` are copied
        out of the arena so the list stays stable.
    dead_letter_capacity:
        Bound on the lazily created dead-letter queue.  ``-1`` (default)
        applies :data:`repro.resilience.quarantine.DEFAULT_DEAD_LETTER_CAPACITY`;
        ``None`` means unbounded (pre-bound behaviour); any positive int
        is an explicit cap.  Beyond the cap the *oldest* letters are
        dropped and counted on ``stats.dead_letters_dropped`` — an
        unattended session under a hostile fault pattern holds memory
        steady instead of growing its quarantine without bound.
    """

    def __init__(
        self,
        array_size: int,
        *,
        config: SortConfig = DEFAULT_CONFIG,
        device: DeviceSpec = K40C,
        batch_arrays: Optional[int] = None,
        on_batch: Optional[Callable[[np.ndarray], None]] = None,
        dtype=None,
        sorter=None,
        parallel=None,
        workers: Optional[int] = None,
        planner=None,
        workspace=None,
        dead_letter_capacity: Optional[int] = -1,
    ) -> None:
        if array_size < 1:
            raise ValueError("array_size must be >= 1")
        self.array_size = int(array_size)
        self.config = config
        self.device = device
        self.dtype = np.dtype(dtype if dtype is not None else config.dtype)
        if batch_arrays is None:
            from .pipeline import plan_chunks

            plan = plan_chunks(
                2**62, array_size, device=device, config=config,
                double_buffered=True,
            )
            batch_arrays = plan.arrays_per_chunk
        if batch_arrays < 1:
            raise ValueError("batch_arrays must be >= 1")
        self.batch_arrays = int(batch_arrays)
        self.on_batch = on_batch
        self.results: List[np.ndarray] = []
        self.emitted_batch_ids: List[int] = []
        if dead_letter_capacity is not None and dead_letter_capacity == 0:
            raise ValueError(
                "dead_letter_capacity must be -1 (default bound), None "
                "(unbounded), or >= 1"
            )
        self.dead_letter_capacity = dead_letter_capacity
        self.stats = StreamStats()
        self.dead_letters = None  # lazily a repro.resilience.DeadLetterQueue
        if sorter is not None:
            self._sorter = sorter
        else:
            self._sorter = GpuArraySort(
                config,
                parallel=parallel,
                workers=workers,
                planner=planner,
                workspace=workspace,
            )
        self._staging = np.empty((self.batch_arrays, self.array_size), self.dtype)
        self._fill = 0
        self._next_batch_id = 0
        self._pending_batch_id: Optional[int] = None
        self._closed = False

    # -- lifecycle --------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once the session has been flushed/closed."""
        return self._closed

    def close(self) -> int:
        """Drain any buffered arrays and end the session.

        Idempotent: calling it again (or after a successful ``flush()``)
        returns 0.  Returns the number of batches emitted by the drain.
        """
        return self.flush()

    def __enter__(self) -> "StreamingSorter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Don't mask an in-flight exception with a drain attempt.
        if exc_type is None:
            self.close()

    # -- producing side ---------------------------------------------------
    def push(self, array: np.ndarray) -> int:
        """Add one arriving array; returns batches emitted as a result."""
        if self._closed:
            raise RuntimeError("streaming session already flushed/closed")
        return self.push_slab(np.asarray(array).reshape(1, -1))

    def push_slab(self, slab: np.ndarray) -> int:
        """Add many arrays at once (an acquisition buffer flush)."""
        if self._closed:
            raise RuntimeError("streaming session already flushed/closed")
        slab = np.asarray(slab)
        if slab.ndim == 1:
            slab = slab.reshape(1, -1)
        if slab.ndim != 2 or slab.shape[1] != self.array_size:
            raise ValueError(
                f"expected arrays of size {self.array_size}, got {slab.shape}"
            )
        emitted = 0
        offset = 0
        while True:
            if self._fill == self.batch_arrays:
                # Also retries a batch whose previous emission failed
                # (at-least-once: same staging content, same batch id).
                self._emit_staged(self.batch_arrays)
                emitted += 1
            if offset >= slab.shape[0]:
                break
            take = min(self.batch_arrays - self._fill, slab.shape[0] - offset)
            self._staging[self._fill : self._fill + take] = slab[
                offset : offset + take
            ]
            self._fill += take
            offset += take
            self.stats.arrays_in += take
        return emitted

    def flush(self) -> int:
        """Sort and emit the buffered tail batch; ends the session.

        Idempotent: once a flush succeeds (or the session is closed),
        further calls return 0.  If the emission fails, the session
        stays open and buffered, so a later ``flush()`` retries it.
        """
        if self._closed:
            return 0
        emitted = 0
        if self._fill:
            self._emit_staged(self._fill)
            emitted = 1
        self._closed = True
        return emitted

    # -- checkpoint / restore ---------------------------------------------
    def checkpoint(self) -> StreamCheckpoint:
        """Snapshot producer-side state for crash recovery."""
        return StreamCheckpoint(
            array_size=self.array_size,
            staging=self._staging[: self._fill].copy(),
            fill=self._fill,
            next_batch_id=self._next_batch_id,
            pending_batch_id=self._pending_batch_id,
            closed=self._closed,
            stats=dataclasses.replace(self.stats),
        )

    def restore(self, cp: StreamCheckpoint) -> None:
        """Restore producer-side state from :meth:`checkpoint`.

        The sorter must have the same ``array_size`` and at least the
        checkpoint's fill level of staging capacity.  Batches emitted
        between the checkpoint and the restore will be emitted again
        with the same batch ids — the at-least-once contract.
        """
        if cp.array_size != self.array_size:
            raise ValueError(
                f"checkpoint is for array_size {cp.array_size}, "
                f"this session uses {self.array_size}"
            )
        if cp.fill > self.batch_arrays:
            raise ValueError(
                f"checkpoint holds {cp.fill} staged arrays, this session "
                f"stages at most {self.batch_arrays}"
            )
        self._staging[: cp.fill] = cp.staging
        self._fill = cp.fill
        self._next_batch_id = cp.next_batch_id
        self._pending_batch_id = cp.pending_batch_id
        self._closed = cp.closed
        self.stats = dataclasses.replace(cp.stats)

    # -- internals -----------------------------------------------------------
    def _emit_staged(self, count: int) -> None:
        from ..analysis.perfmodel import model_arraysort_ms

        if self._pending_batch_id is None:
            self._pending_batch_id = self._next_batch_id
            self._next_batch_id += 1
        batch_id = self._pending_batch_id
        batch = self._staging[:count]

        t0 = time.perf_counter()
        result = self._sorter.sort(batch)  # copies: staging is reused
        wall = time.perf_counter() - t0

        out = result.batch  # statan: scratch-view
        # Arena-backed results are scratch: the storage is reused by the
        # sorter's next batch.  A zero-copy view may still go to the
        # on_batch consumer (valid until the next emission — the classic
        # streaming contract), but anything retained on `results` must
        # be copied out of the arena.
        is_scratch = bool(getattr(result, "scratch", False))
        quarantined = np.asarray(
            getattr(result, "quarantined", ()), dtype=np.int64
        )
        if quarantined.size:
            keep = np.ones(count, dtype=bool)
            keep[quarantined] = False
            out = out[keep]  # fancy indexing: already a fresh copy
            is_scratch = False

        # Deliver first: if the consumer raises, no counters move and the
        # staging buffer stays pending, so the retry re-emits this id.
        if self.on_batch is not None:
            self.on_batch(out)
        else:
            self.results.append(out.copy() if is_scratch else out)

        if quarantined.size:
            reasons = getattr(result, "quarantine_reasons", None) or {}
            if self.dead_letters is None:
                from ..resilience.quarantine import (
                    DEFAULT_DEAD_LETTER_CAPACITY,
                    DeadLetterQueue,
                )

                capacity = self.dead_letter_capacity
                if capacity == -1:
                    capacity = DEFAULT_DEAD_LETTER_CAPACITY
                self.dead_letters = DeadLetterQueue(capacity)
            for row in quarantined:
                self.dead_letters.add(
                    batch_id=batch_id,
                    row_index=int(row),
                    payload=self._staging[int(row)].copy(),
                    reason=reasons.get(int(row), "validation-failed"),
                )
            self.stats.arrays_quarantined += int(quarantined.size)
            self.stats.dead_letters_dropped = self.dead_letters.dropped

        self.stats.wall_seconds_sorting += wall
        self.stats.modeled_device_ms += model_arraysort_ms(
            self.device, count, self.array_size, self.config
        )
        self.stats.batches_out += 1
        self.stats.arrays_out += count - int(quarantined.size)
        self.emitted_batch_ids.append(batch_id)
        self._pending_batch_id = None
        self._fill = 0
