"""Optimized kernel variants — the "more complex strategies" (§5.1-5.2).

The paper reports design experiments it ultimately rejected or left on
the table:

* §5.1: "Per block, single thread is used for performing all these
  operations, we tried using more complex strategies but owing to the
  small size of sampled array, over heads were too large."
* §5.2's write-back offsets come from a serial scan; a parallel
  block-level scan is the textbook alternative.

This module implements those alternatives as runnable kernels, so the
trade-off is *measured on the simulator* instead of taken on faith:

* :func:`splitter_selection_parallel_kernel` — phase 1 with a
  cooperative block: parallel sample staging (coalesced), an odd-even
  sorting network over the sample (p threads, barriers), and parallel
  splitter emission.  More parallelism, but barrier and network
  overhead on a ~100-element sample;
* :func:`bucketing_scan_kernel` — phase 2 with a Hillis-Steele
  block-level scan of the bucket counts replacing the thread-0 serial
  scan.

:func:`run_arraysort_optimized` swaps these in (phase 3 unchanged) and
returns the same outputs as the baseline pipeline, enabling an
apples-to-apples modeled-time comparison
(``benchmarks/bench_kernel_variants.py``).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..gpusim import GpuDevice, PipelineReport
from .config import DEFAULT_CONFIG, SortConfig
from .kernels import bucket_sort_kernel
from .splitters import regular_sample_indices, splitter_pick_indices

__all__ = [
    "splitter_selection_parallel_kernel",
    "bucketing_scan_kernel",
    "run_arraysort_optimized",
]


def splitter_selection_parallel_kernel(ctx, shared, d_data, d_split, n, q,
                                       sample_idx, pick_idx):
    """Phase 1 with a cooperative block (the rejected §5.1 strategy).

    ``block_dim`` threads stage the sample in parallel (coalesced
    gather), sort it with an odd-even transposition network (s rounds,
    one barrier each — the overhead the paper blames), and emit the
    splitters in parallel.
    """
    tid = ctx.thread_idx.x
    bdim = ctx.block_dim.x
    base = ctx.block_idx.x * n
    s = len(sample_idx)

    # Parallel staging: thread t loads samples t, t+bdim, ...
    for i in range(tid, s, bdim):
        v = yield ctx.gload(d_data, base + sample_idx[i])
        yield ctx.sstore(shared, i, v)
    yield ctx.sync()

    # Odd-even transposition network over the sample: s rounds, each a
    # barrier — cheap per round, but ~s barriers on a ~0.1n sample is
    # exactly the overhead §5.1 reports.
    for r in range(s):
        start = r % 2
        left = start + 2 * tid
        if left + 1 < s:
            a = yield ctx.sload(shared, left)
            b = yield ctx.sload(shared, left + 1)
            yield ctx.alu(1)
            if a > b:
                yield ctx.sstore(shared, left, b)
                yield ctx.sstore(shared, left + 1, a)
            else:
                yield ctx.sstore(shared, left, a)
                yield ctx.sstore(shared, left + 1, b)
        yield ctx.sync()

    # Parallel splitter emission (coalesced across lanes).
    for k in range(tid, q, bdim):
        v = yield ctx.sload(shared, pick_idx[k])
        yield ctx.gstore(d_split, ctx.block_idx.x * q + k, v)


def bucketing_scan_kernel(ctx, shared, d_data, d_split, d_sizes, n, p):
    """Phase 2 with a parallel (Hillis-Steele) scan of bucket counts.

    Identical to :func:`repro.core.kernels.bucketing_kernel` except the
    thread-0 serial exclusive scan is replaced by a log2(p)-step
    block-level scan using a double buffer — the production choice when
    p grows beyond a few dozen.
    """
    tid = ctx.thread_idx.x
    base = ctx.block_idx.x * n
    row = shared["row"]
    sp = shared["splitters"]
    scan_buf = shared["scan"]  # length 2 * p
    q = p - 1

    for i in range(tid, n, p):
        v = yield ctx.gload(d_data, base + i)
        yield ctx.sstore(row, i, v)
    if tid == 0:
        yield ctx.sstore(sp, 0, -math.inf)
        yield ctx.sstore(sp, p, math.inf)
    for k in range(tid, q, p):
        v = yield ctx.gload(d_split, ctx.block_idx.x * q + k)
        yield ctx.sstore(sp, k + 1, v)
    yield ctx.sync()

    lo = yield ctx.sload(sp, tid)
    hi = yield ctx.sload(sp, tid + 1)

    count = 0
    for i in range(n):
        v = yield ctx.sload(row, i)
        yield ctx.alu(2)
        if lo <= v < hi:
            count += 1
    yield ctx.gstore(d_sizes, ctx.block_idx.x * p + tid, count)
    yield ctx.sstore(scan_buf, tid, count)
    yield ctx.sync()

    # Hillis-Steele inclusive scan over p counts, double-buffered.
    buf = 0
    stride = 1
    while stride < p:
        src, dst = buf, 1 - buf
        cur = yield ctx.sload(scan_buf, src * p + tid)
        if tid >= stride:
            prev = yield ctx.sload(scan_buf, src * p + tid - stride)
            yield ctx.alu(1)
            cur = cur + prev
        yield ctx.sstore(scan_buf, dst * p + tid, cur)
        yield ctx.sync()
        buf = dst
        stride *= 2

    # Exclusive offset for this thread = inclusive scan at tid-1.
    if tid == 0:
        offset = 0
    else:
        offset = yield ctx.sload(scan_buf, buf * p + tid - 1)
    offset = int(offset)

    write_pos = offset
    for i in range(n):
        v = yield ctx.sload(row, i)
        yield ctx.alu(2)
        if lo <= v < hi:
            yield ctx.gstore(d_data, base + write_pos, v)
            write_pos += 1


def run_arraysort_optimized(
    device: GpuDevice,
    batch: np.ndarray,
    config: SortConfig = DEFAULT_CONFIG,
    *,
    phase1_threads: int = 32,
) -> Tuple[np.ndarray, PipelineReport]:
    """The full pipeline with the optimized phase-1/2 kernels.

    Same inputs/outputs as
    :func:`repro.core.kernels.run_arraysort_on_device`; tests assert
    byte-identical results, benches compare the modeled times.
    """
    batch = np.asarray(batch)
    if batch.ndim != 2:
        raise ValueError(f"expected (N, n) batch, got shape {batch.shape}")
    if batch.dtype.kind == "f" and np.isnan(batch).any():
        raise ValueError("batch contains NaN; no total order")
    N, n = batch.shape
    dtype = np.dtype(config.dtype)
    p = config.num_buckets(n)
    q = p - 1
    sample_idx = regular_sample_indices(n, config)
    pick_idx = splitter_pick_indices(len(sample_idx), p)

    pipeline = PipelineReport()
    d_data = d_split = d_sizes = None
    try:
        d_data = device.memory.alloc_like(batch.astype(dtype).ravel(), name="data")
        d_split = device.memory.alloc(max(N * q, 1), dtype, name="splitters")
        d_sizes = device.memory.alloc(N * p, np.int32, name="sizes")
        threads1 = min(
            phase1_threads, device.spec.max_threads_per_block,
            max(1, len(sample_idx) // 2 + 1),
        )
        pipeline.add(device.launch(
            splitter_selection_parallel_kernel,
            grid=N, block=threads1,
            args=(d_data, d_split, n, q, sample_idx, pick_idx),
            shared_setup=lambda sm: sm.alloc(len(sample_idx), dtype, "samples"),
            name="phase1_parallel",
        ))

        def phase2_shared(sm):
            return {
                "row": sm.alloc(n, dtype, "row"),
                "splitters": sm.alloc(p + 1, np.float64, "splitters"),
                "scan": sm.alloc(2 * p, np.int64, "scan"),
            }

        pipeline.add(device.launch(
            bucketing_scan_kernel,
            grid=N, block=p,
            args=(d_data, d_split, d_sizes, n, p),
            shared_setup=phase2_shared,
            name="phase2_parallel_scan",
        ))

        def phase3_shared(sm):
            return {
                "sizes": sm.alloc(p, np.int32, "sizes"),
                "offsets": sm.alloc(p, np.int32, "offsets"),
            }

        pipeline.add(device.launch(
            bucket_sort_kernel,
            grid=N, block=p,
            args=(d_data, d_sizes, n, p),
            shared_setup=phase3_shared,
            name="phase3_bucket_sort",
        ))
        sorted_host = d_data.copy_to_host().reshape(N, n)
    finally:
        for arr in (d_data, d_split, d_sizes):
            if arr is not None:
                device.memory.free(arr)
    return sorted_host, pipeline
