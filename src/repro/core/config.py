"""Tuning configuration for GPU-ArraySort.

The paper fixes two empirical constants (Section 5.1):

* **bucket size >= 20** — each array of size ``n`` is divided into
  ``p = floor(n / 20)`` buckets, "totally independent of size of individual
  array as well as total number of arrays";
* **10 % regular sampling** — "for uniformly distributed data 10 % regular
  sampling gave most evenly balanced buckets and hence the best running
  time".

:class:`SortConfig` exposes both so the ablation benchmarks can sweep them,
and computes the derived quantities (bucket count ``p``, splitter count
``q = p - 1``, sample size) with the small-``n`` clamps described in
DESIGN.md section 8.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["SortConfig", "DEFAULT_CONFIG"]


@dataclasses.dataclass(frozen=True)
class SortConfig:
    """Parameters of one GPU-ArraySort run."""

    #: Target minimum elements per bucket ("at least 20 elements per
    #: bucket", Section 5.1).
    bucket_size: int = 20
    #: Regular-sampling rate for splitter selection ("10 % regular
    #: sampling", Section 5.1).
    sampling_rate: float = 0.10
    #: Element dtype.  The paper's experiments all use ``float`` (float32).
    dtype: np.dtype = dataclasses.field(default=np.dtype(np.float32))
    #: Hard cap on buckets per array so one thread per bucket fits a block.
    max_buckets: int = 1024
    #: What to do with float rows containing NaN.  ``"raise"`` (default)
    #: rejects the batch at the API boundary — NaN has no total order, so
    #: the splitter comparisons would silently mis-bucket it.
    #: ``"sort_to_end"`` routes NaN-containing rows through a host path
    #: with ``np.sort`` semantics: NaNs land after every other value
    #: (including +inf); the NaN-free rows still run the normal pipeline.
    nan_policy: str = "raise"
    #: Vectorized engine only: fuse phases 2+3 into one in-place key sort
    #: (:mod:`repro.core.fused`) instead of the paper-faithful separate
    #: bucket-id / grouping / segmented-lexsort passes.  Output, ``sizes``
    #: and ``offsets`` are identical either way (property-tested); the
    #: fused path is the fast default, ``False`` keeps the phase
    #: boundaries for ablations and sim cross-checks.
    fuse_phases: bool = True

    NAN_POLICIES = ("raise", "sort_to_end")

    def __post_init__(self) -> None:
        if self.bucket_size < 1:
            raise ValueError(f"bucket_size must be >= 1, got {self.bucket_size}")
        if not 0.0 < self.sampling_rate <= 1.0:
            raise ValueError(
                f"sampling_rate must be in (0, 1], got {self.sampling_rate}"
            )
        if self.max_buckets < 1:
            raise ValueError("max_buckets must be >= 1")
        if self.nan_policy not in self.NAN_POLICIES:
            raise ValueError(
                f"nan_policy must be one of {self.NAN_POLICIES}, "
                f"got {self.nan_policy!r}"
            )
        object.__setattr__(self, "dtype", np.dtype(self.dtype))

    # -- derived quantities ---------------------------------------------------
    def num_buckets(self, n: int) -> int:
        """Buckets per array: ``p = floor(n / bucket_size)``, clamped to
        ``[1, min(max_buckets, sample_size)]``.

        The sample-size clamp keeps splitter selection well-defined for
        tiny arrays where the 10 % sample would contain fewer elements
        than requested splitters.
        """
        if n < 1:
            raise ValueError(f"array size must be >= 1, got {n}")
        p = max(1, n // self.bucket_size)
        p = min(p, self.max_buckets, max(1, self.sample_size(n)))
        return p

    def num_splitters(self, n: int) -> int:
        """Splitters per array: ``q = p - 1``."""
        return self.num_buckets(n) - 1

    def sample_size(self, n: int) -> int:
        """Elements drawn by regular sampling: ``ceil(rate * n)``, >= 1."""
        return max(1, int(np.ceil(self.sampling_rate * n)))

    def sample_stride(self, n: int) -> int:
        """Distance between consecutive regular samples in the array."""
        return max(1, n // self.sample_size(n))

    def with_(self, **updates) -> "SortConfig":
        """Functional update helper for ablation sweeps."""
        return dataclasses.replace(self, **updates)

    # -- memory footprint of the algorithm's metadata -------------------------
    def metadata_bytes_per_array(self, n: int) -> int:
        """Bytes of global metadata one array needs: splitters + bucket sizes.

        Splitters are element-typed; bucket sizes are int32.  This is what
        makes GPU-ArraySort "minimum use of any temporary run-time memory":
        metadata is O(n / bucket_size), not O(n).
        """
        q = self.num_splitters(n)
        p = self.num_buckets(n)
        return q * self.dtype.itemsize + p * 4


#: The paper's published configuration.
DEFAULT_CONFIG = SortConfig()
