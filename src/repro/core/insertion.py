"""Phase 3 — per-bucket insertion sort (paper Section 5.3).

On hardware, one thread insertion-sorts one bucket in place; because
buckets of the same array are contiguous after phase 2's write-back, the
concatenation of sorted buckets *is* the sorted array — no merge phase
(the sample-sort property the paper leans on).

This module provides:

* :func:`insertion_sort` / :func:`insertion_sort_inplace` — the literal
  scalar algorithm the simulator kernel mirrors, used for tiny inputs and
  as the ground-truth comparator in tests;
* :func:`sort_buckets` — the vectorized batch equivalent: one stable
  lexsort keyed by (bucket segment, value) over the flattened batch, which
  sorts every bucket of every array in a single pass.  This is the same
  *result* as running insertion sort per bucket; the cost model (not this
  code) accounts for the O(k^2) per-thread behaviour.
"""

from __future__ import annotations

from typing import MutableSequence

import numpy as np

__all__ = [
    "insertion_sort",
    "insertion_sort_inplace",
    "segment_base",
    "sort_buckets",
    "sort_buckets_rowwise",
]


def segment_base(n_rows: int, num_buckets: int) -> np.ndarray:
    """Global segment-id base per row: ``row * (p + 1)``, always int64.

    The flat segmented lexsort of :func:`sort_buckets` keys every element
    by ``row_base + bucket``; the product ``n_rows * (p + 1)`` overflows
    int32 once the batch passes ~2·10⁹ segments (e.g. 2 M arrays at the
    1024-bucket cap), which would silently interleave rows.  Computing the
    base in int64 from the start makes the key space exact for any batch
    that fits in memory — and on platforms where ``np.arange`` defaults to
    int32 (Windows) this is the only correct choice, not an optimization.
    """
    if n_rows < 0:
        raise ValueError(f"n_rows must be >= 0, got {n_rows}")
    if num_buckets < 1:
        raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
    return np.arange(n_rows, dtype=np.int64) * np.int64(num_buckets + 1)


def insertion_sort(values) -> list:
    """Return a sorted list via textbook insertion sort (non-destructive).

    Kept deliberately simple: this is the per-thread algorithm of the
    paper's Algorithms 1 and 3, used by the simulator kernels and as an
    oracle in property tests.  O(k^2) compares/shifts, in-place, stable.
    """
    out = list(values)
    insertion_sort_inplace(out)
    return out


def insertion_sort_inplace(values: MutableSequence) -> None:
    """In-place insertion sort of a mutable sequence (stable)."""
    for i in range(1, len(values)):
        key = values[i]
        j = i - 1
        while j >= 0 and values[j] > key:
            values[j + 1] = values[j]
            j -= 1
        values[j + 1] = key


def sort_buckets(bucketed: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Sort every bucket of every row; returns the fully sorted batch.

    ``bucketed``/``offsets`` come from :func:`repro.core.bucketing.bucketize`.
    The segmented sort runs as one ``np.lexsort`` over the flattened batch
    with the bucket segment id as the major key — equivalent to sorting
    each bucket independently, like the per-thread insertion sorts, but in
    one vectorized pass.

    The result is written back into ``bucketed`` (in-place semantics, like
    the device kernel) and also returned.
    """
    bucketed = np.asarray(bucketed)
    offsets = np.asarray(offsets)
    n_rows, n = bucketed.shape
    p = offsets.shape[1] - 1

    # Segment id of each element: row-major bucket index. Rebuild it from
    # offsets by marking bucket starts and cumsumming.  int64 throughout:
    # seg_global spans [0, n_rows * (p + 1)), past int32 for large batches
    # (see segment_base).
    starts = np.zeros((n_rows, n + 1), dtype=np.int64)
    row_idx = np.repeat(np.arange(n_rows, dtype=np.int64), p)
    np.add.at(starts, (row_idx, offsets[:, :-1].ravel()), 1)
    seg_within_row = np.cumsum(starts[:, :n], axis=1)
    seg_global = seg_within_row + segment_base(n_rows, p)[:, None]

    flat_vals = bucketed.ravel()
    flat_segs = seg_global.ravel()
    order = np.lexsort((flat_vals, flat_segs))
    bucketed[:] = flat_vals[order].reshape(n_rows, n)
    return bucketed


def sort_buckets_rowwise(bucketed: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Reference implementation: per-row, per-bucket ``np.sort`` loop.

    Slower than :func:`sort_buckets`; exists as an independently-written
    oracle so tests can cross-check the lexsort formulation.
    """
    bucketed = np.asarray(bucketed)
    offsets = np.asarray(offsets)
    out = bucketed.copy()
    for i in range(bucketed.shape[0]):
        for j in range(offsets.shape[1] - 1):
            lo, hi = offsets[i, j], offsets[i, j + 1]
            if hi - lo > 1:
                out[i, lo:hi] = np.sort(out[i, lo:hi])
    return out
