"""Correctness checkers for batch-sorting results.

Sorting a batch of arrays has two separable invariants per array:

* **sortedness** — the output row is non-decreasing (Definition 1 of the
  paper: ``A'_i = {a1 <= a2 <= ... <= an}``);
* **permutation** — the output row is a rearrangement of the input row
  (nothing lost, nothing invented, multiplicities preserved).

These are used pervasively by tests, and also exposed on the public API so
downstream users can cheaply verify results (``verify=True`` on the
sorter).  A third checker validates phase-2 bucket partitions before the
phase-3 sort runs.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "is_sorted_rows",
    "rows_are_permutations",
    "assert_batch_sorted",
    "check_bucket_partition",
    "ValidationFailure",
]


class ValidationFailure(AssertionError):
    """Raised when a batch-sorting invariant does not hold."""


def is_sorted_rows(batch: np.ndarray) -> np.ndarray:
    """Boolean mask: which rows of a 2-D batch are non-decreasing.

    NaN-aware, matching ``np.sort`` semantics: a float row counts as
    sorted when its non-NaN prefix is non-decreasing and every NaN sits
    at the end (``[1, 2, nan]`` is sorted, ``[nan, 1, 2]`` is not).

    >>> is_sorted_rows(np.array([[1, 2, 3], [3, 2, 1]])).tolist()
    [True, False]
    """
    batch = np.asarray(batch)
    if batch.ndim != 2:
        raise ValueError(f"expected 2-D batch, got shape {batch.shape}")
    if batch.shape[1] < 2:
        return np.ones(batch.shape[0], dtype=bool)
    pairwise = batch[:, 1:] >= batch[:, :-1]
    if batch.dtype.kind == "f":
        # A pair is in order when the right element is NaN (NaN belongs
        # at the end); a non-NaN right of a NaN left stays out of order
        # because `x >= nan` is already False.
        pairwise |= np.isnan(batch[:, 1:])
    return np.all(pairwise, axis=1)


def rows_are_permutations(out: np.ndarray, ref: np.ndarray) -> np.ndarray:
    """Boolean mask: which rows of ``out`` are permutations of rows of ``ref``.

    Implemented by comparing row-sorted copies, which checks multiset
    equality including duplicate multiplicities.  NaN-aware: matching
    NaN counts compare equal (``NaN != NaN`` would otherwise fail every
    row that legitimately carries NaN under ``nan_policy="sort_to_end"``).
    """
    out = np.asarray(out)
    ref = np.asarray(ref)
    if out.shape != ref.shape:
        raise ValueError(f"shape mismatch: {out.shape} vs {ref.shape}")
    if out.ndim != 2:
        raise ValueError(f"expected 2-D batches, got shape {out.shape}")
    out_sorted = np.sort(out, axis=1)
    ref_sorted = np.sort(ref, axis=1)
    equal = out_sorted == ref_sorted
    if out_sorted.dtype.kind == "f" and ref_sorted.dtype.kind == "f":
        # np.sort parks NaNs at the tail of both sides, so positional
        # NaN/NaN matches are exactly "same NaN multiplicity".
        equal |= np.isnan(out_sorted) & np.isnan(ref_sorted)
    return np.all(equal, axis=1)


def assert_batch_sorted(out: np.ndarray, ref: Optional[np.ndarray] = None) -> None:
    """Raise :class:`ValidationFailure` unless every row of ``out`` is sorted
    (and, when ``ref`` is given, a permutation of the matching ``ref`` row).
    """
    sorted_mask = is_sorted_rows(out)
    if not sorted_mask.all():
        bad = np.flatnonzero(~sorted_mask)
        raise ValidationFailure(
            f"{bad.size} of {out.shape[0]} rows are not sorted "
            f"(first bad row: {bad[0]})"
        )
    if ref is not None:
        perm_mask = rows_are_permutations(out, ref)
        if not perm_mask.all():
            bad = np.flatnonzero(~perm_mask)
            raise ValidationFailure(
                f"{bad.size} of {out.shape[0]} rows are not permutations of "
                f"their inputs (first bad row: {bad[0]})"
            )


def check_bucket_partition(
    row: np.ndarray,
    splitters: Sequence[float],
    offsets: Sequence[int],
) -> None:
    """Validate a phase-2 result for one array.

    ``offsets`` holds the start of each bucket plus a final end sentinel
    (length ``p + 1``).  Checks:

    * offsets are non-decreasing, start at 0, end at ``len(row)``,
    * every element of bucket ``j`` lies in the half-open splitter range
      ``[s_{j-1}, s_j)`` (with virtual -inf / +inf sentinels).

    Raises :class:`ValidationFailure` on the first violated bucket.
    """
    row = np.asarray(row)
    offsets = np.asarray(offsets, dtype=np.int64)
    splitters = np.asarray(splitters, dtype=np.float64)
    p = offsets.size - 1
    if p < 1:
        raise ValidationFailure("offsets must contain at least two entries")
    if offsets[0] != 0 or offsets[-1] != row.size:
        raise ValidationFailure(
            f"offsets must span [0, {row.size}], got [{offsets[0]}, {offsets[-1]}]"
        )
    if np.any(np.diff(offsets) < 0):
        raise ValidationFailure("bucket offsets are not non-decreasing")
    if splitters.size != p - 1:
        raise ValidationFailure(
            f"expected {p - 1} splitters for {p} buckets, got {splitters.size}"
        )
    lo = np.concatenate(([-np.inf], splitters))
    hi = np.concatenate((splitters, [np.inf]))
    for j in range(p):
        seg = row[offsets[j] : offsets[j + 1]]
        if seg.size == 0:
            continue
        too_low = np.any(seg < lo[j])
        too_high = hi[j] != np.inf and np.any(seg >= hi[j])
        if too_low or too_high:
            raise ValidationFailure(
                f"bucket {j} holds values outside [{lo[j]}, {hi[j]}): "
                f"range [{seg.min()}, {seg.max()}]"
            )
