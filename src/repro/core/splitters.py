"""Phase 1 — splitter selection by regular sampling (paper Section 5.1).

For each array the phase:

1. draws a **regular sample**: every ``stride``-th element, giving
   ``ceil(rate * n)`` samples (the paper's best-performing rate is 10 %);
2. sorts the sample (the paper uses in-place insertion sort on a single
   thread per block, because the sample is tiny and lives in shared
   memory);
3. picks ``q = p - 1`` splitters at regular intervals of the sorted
   sample.

This module is the *vectorized* engine: because regular sampling uses the
same column positions for every array, the whole batch phase is a handful
of NumPy operations over the ``(N, n)`` matrix.  The lock-step simulator
equivalent (one thread per block, insertion sort as actual compare/shift
loops) lives in :mod:`repro.core.kernels`.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Dict, Optional

import numpy as np

from .config import DEFAULT_CONFIG, SortConfig

__all__ = [
    "INDEX_PLAN_CACHE_MAXSIZE",
    "SplitterResult",
    "clear_index_plan_cache",
    "index_plan_cache_info",
    "regular_sample_indices",
    "splitter_pick_indices",
    "select_splitters",
]

#: Bound on each phase-1 index-plan LRU.  Long-running streaming services
#: cycle through a handful of shapes; 128 distinct ``(n, sampling)`` plans
#: is far beyond any realistic working set, and the explicit constant
#: makes the bound auditable (and greppable) rather than incidental.
INDEX_PLAN_CACHE_MAXSIZE = 128


@dataclasses.dataclass(frozen=True)
class SplitterResult:
    """Output of phase 1 for a batch.

    ``splitters`` has shape ``(N, q)``; row ``i`` holds the sorted splitter
    values for array ``i`` (paper Definition 3).  ``samples_sorted`` is
    retained for diagnostics and tests.
    """

    splitters: np.ndarray
    samples_sorted: np.ndarray
    num_buckets: int

    @property
    def num_splitters(self) -> int:
        return self.splitters.shape[1]


@functools.lru_cache(maxsize=INDEX_PLAN_CACHE_MAXSIZE)
def _cached_sample_indices(n: int, size: int, stride: int) -> np.ndarray:
    """Materialize one sample-index plan; cached, returned read-only.

    Keyed on the primitive quantities (``n``, sample size, stride) rather
    than the config object so two configs that derive the same plan share
    one cache entry.  The array is frozen (``writeable=False``) because
    every caller receives the *same* object.
    """
    idx = np.arange(size) * stride
    idx = idx[idx < n]
    idx.setflags(write=False)
    return idx


@functools.lru_cache(maxsize=INDEX_PLAN_CACHE_MAXSIZE)
def _cached_pick_indices(sample_size: int, num_buckets: int) -> np.ndarray:
    """Materialize one splitter-pick plan; cached, returned read-only."""
    q = num_buckets - 1
    positions = np.round(
        np.arange(1, q + 1) * sample_size / num_buckets
    ).astype(np.int64)
    positions = np.clip(positions, 0, sample_size - 1)
    positions.setflags(write=False)
    return positions


def clear_index_plan_cache() -> None:
    """Drop the cached phase-1 index plans (tests / memory pressure)."""
    _cached_sample_indices.cache_clear()
    _cached_pick_indices.cache_clear()


def index_plan_cache_info() -> Dict[str, "functools._CacheInfo"]:
    """Hit/miss/size counters of both phase-1 index-plan LRUs.

    Observability hook for long-running streaming services: both caches
    are bounded by :data:`INDEX_PLAN_CACHE_MAXSIZE`, and this is how a
    service asserts they stay that way (see ``maxsize``/``currsize`` on
    each entry).  Use :func:`clear_index_plan_cache` to reset.
    """
    return {
        "sample_indices": _cached_sample_indices.cache_info(),
        "pick_indices": _cached_pick_indices.cache_info(),
    }


def regular_sample_indices(n: int, config: SortConfig = DEFAULT_CONFIG) -> np.ndarray:
    """Column indices selected by regular sampling for arrays of size ``n``.

    Regular sampling means a fixed stride: indices ``0, s, 2s, ...`` with
    ``s = n // sample_size``.  The same indices apply to every array in the
    batch, which is what makes the batch phase vectorizable — and, on real
    hardware, what makes the sample reads predictable.

    Plans depend only on ``(n, sampling config)``, so repeated same-shape
    sorts — every batch of a streaming session — hit a small keyed LRU
    instead of recomputing.  The returned array is read-only (shared).

    >>> regular_sample_indices(10, SortConfig(sampling_rate=0.3)).tolist()
    [0, 3, 6]
    """
    return _cached_sample_indices(n, config.sample_size(n), config.sample_stride(n))


def splitter_pick_indices(sample_size: int, num_buckets: int) -> np.ndarray:
    """Positions in the *sorted* sample where splitters are read.

    The paper's Algorithm 1 walks the sorted sample with a constant stride
    collecting ``q = p - 1`` splitters.  We use the equally-spaced quantile
    positions ``round((j+1) * size / p)`` for ``j in [0, q)``, clipped into
    range, which is the regular-interval traversal the pseudocode
    describes and degrades gracefully when ``q`` approaches the sample
    size.  LRU-cached like :func:`regular_sample_indices`; the returned
    array is read-only (shared).
    """
    if num_buckets < 1:
        raise ValueError("num_buckets must be >= 1")
    if num_buckets == 1:
        return np.empty(0, dtype=np.int64)
    if sample_size < 1:
        raise ValueError("sample_size must be >= 1")
    return _cached_pick_indices(sample_size, num_buckets)


def select_splitters(
    batch: np.ndarray,
    config: SortConfig = DEFAULT_CONFIG,
    *,
    num_buckets: Optional[int] = None,
    workspace=None,
) -> SplitterResult:
    """Run phase 1 on a 2-D batch; returns per-array splitters.

    ``batch`` is the ``(N, n)`` matrix of unsorted arrays.  ``num_buckets``
    overrides the config-derived ``p`` (used by ablations).

    The phase is fully vectorized across rows: one batched fancy-index
    gather of the sample matrix, one in-place ``sort(axis=1)`` over it,
    one gather of the pick positions.  Splitter *values* are independent
    of the sort algorithm (the value at a sorted position is unique even
    when equal keys' orderings are not), so the default introsort is used
    rather than a stable sort — measurably faster on wide samples.

    ``workspace`` (a :class:`~repro.core.workspace.ScratchArena`) makes
    the phase allocation-free in steady state: the sample matrix and the
    splitter staging come from the arena's pooled buffers, so repeated
    same-shape batches reuse storage.  Arena scratch semantics apply —
    the returned ``splitters``/``samples_sorted`` are valid until the
    next same-shape ``select_splitters`` call on the same arena.
    """
    batch = np.asarray(batch)
    if batch.ndim != 2:
        raise ValueError(f"expected (N, n) batch, got shape {batch.shape}")
    n = batch.shape[1]
    if n == 0:
        raise ValueError("arrays must have at least one element")
    p = num_buckets if num_buckets is not None else config.num_buckets(n)
    if p < 1:
        raise ValueError("num_buckets must be >= 1")

    cols = regular_sample_indices(n, config)
    n_rows = batch.shape[0]
    if workspace is not None:
        samples = workspace.get("phase1.samples", (n_rows, cols.size), batch.dtype)
        np.take(batch, cols, axis=1, out=samples)
    else:
        samples = np.take(batch, cols, axis=1)
    # The kernel engine insertion-sorts; sorting is sorting, so the
    # vectorized engine's in-place sort produces identical splitter
    # values (and `samples` is our own gather, never caller memory).
    samples.sort(axis=1)
    picks = splitter_pick_indices(samples.shape[1], p)
    if workspace is not None:
        splitters = workspace.get("phase1.splitters", (n_rows, picks.size), batch.dtype)
        np.take(samples, picks, axis=1, out=splitters)
    else:
        splitters = np.take(samples, picks, axis=1)
    # Splitters are non-decreasing per row by construction (sorted
    # sample, increasing pick positions); dtype follows the input.
    return SplitterResult(
        splitters=splitters,
        samples_sorted=samples,
        num_buckets=p,
    )
