"""Auto-tuning: pick the bucket size / sampling rate for a device and n.

The paper hardcodes bucket size 20 and 10 % sampling after manual
experiments on one GPU and one distribution.  A production library
should do that search for the user: :func:`tune_config` sweeps candidate
configurations through the calibrated performance model (instant — no
data is sorted) and optionally refines the sampling rate against a
pilot batch's measured bucket balance.

>>> cfg = tune_config(1000)            # doctest: +SKIP
>>> cfg.bucket_size                    # doctest: +SKIP
20
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from ..gpusim.device import DeviceSpec, K40C
from .config import DEFAULT_CONFIG, SortConfig

__all__ = ["TuningResult", "tune_config", "sweep_bucket_sizes"]

#: Candidate bucket sizes the sweep considers by default.
DEFAULT_BUCKET_CANDIDATES: Sequence[int] = (5, 10, 15, 20, 30, 40, 60, 80, 120)

#: Candidate sampling rates for the balance refinement.
DEFAULT_RATE_CANDIDATES: Sequence[float] = (0.05, 0.10, 0.20)


@dataclasses.dataclass(frozen=True)
class TuningResult:
    """Outcome of a tuning run."""

    config: SortConfig
    modeled_ms: float
    candidates: List[tuple]  # (bucket_size, modeled_ms) pairs

    @property
    def bucket_size(self) -> int:
        return self.config.bucket_size


def sweep_bucket_sizes(
    n: int,
    *,
    N: int = 100_000,
    device: DeviceSpec = K40C,
    candidates: Sequence[int] = DEFAULT_BUCKET_CANDIDATES,
    base: SortConfig = DEFAULT_CONFIG,
) -> List[tuple]:
    """Modeled milliseconds per candidate bucket size (sorted by cost)."""
    from ..analysis.perfmodel import model_arraysort_ms

    if not candidates:
        raise ValueError("need at least one candidate bucket size")
    results = []
    for bucket in candidates:
        if bucket < 1:
            raise ValueError("bucket sizes must be >= 1")
        cfg = base.with_(bucket_size=bucket)
        results.append((bucket, model_arraysort_ms(device, N, n, cfg)))
    return sorted(results, key=lambda pair: pair[1])


def tune_config(
    n: int,
    *,
    N: int = 100_000,
    device: DeviceSpec = K40C,
    pilot: Optional[np.ndarray] = None,
    bucket_candidates: Sequence[int] = DEFAULT_BUCKET_CANDIDATES,
    rate_candidates: Sequence[float] = DEFAULT_RATE_CANDIDATES,
    base: SortConfig = DEFAULT_CONFIG,
) -> TuningResult:
    """Choose a :class:`SortConfig` for arrays of size ``n`` on ``device``.

    Bucket size comes from the model sweep (cheapest modeled time).
    When a ``pilot`` batch is supplied, the sampling rate is refined
    empirically: the smallest candidate rate whose bucket-size std is
    within 1.5x of the largest candidate's (diminishing-returns rule).
    On uniform pilots this reproduces the paper's own 10 % choice; on
    clustered pilots it escalates.
    """
    sweep = sweep_bucket_sizes(
        n, N=N, device=device, candidates=bucket_candidates, base=base
    )
    best_bucket, best_ms = sweep[0]
    config = base.with_(bucket_size=best_bucket)

    if pilot is not None:
        from ..analysis.metrics import sampling_quality

        pilot = np.asarray(pilot)
        if pilot.ndim != 2:
            raise ValueError("pilot must be a (N, n) batch")
        rates = sorted(rate_candidates)
        if not rates:
            raise ValueError("need at least one candidate rate")
        stds = {
            rate: sampling_quality(
                pilot, rate, bucket_size=config.bucket_size
            ).std
            for rate in rates
        }
        floor = stds[rates[-1]]
        chosen = rates[-1]
        for rate in rates:
            if stds[rate] <= 1.5 * max(floor, 1e-12):
                chosen = rate
                break
        config = config.with_(sampling_rate=chosen)

    return TuningResult(config=config, modeled_ms=best_ms, candidates=sweep)
