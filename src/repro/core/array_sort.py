"""GPU-ArraySort orchestrator: the paper's three-phase pipeline.

:class:`GpuArraySort` is the public entry point.  It runs the same
algorithm through one of three engines:

* ``"vectorized"`` — NumPy batch implementation of the exact phase
  semantics; fast enough for wall-clock benchmarking at realistic sizes.
* ``"sim"`` — executes the per-thread kernels of
  :mod:`repro.core.kernels` on the :mod:`repro.gpusim` lock-step SIMT
  interpreter, producing hardware-behaviour reports (coalescing,
  divergence, modeled milliseconds).  Micro scale only.
* ``"model"`` — does no data movement at all; evaluates the calibrated
  analytic cost model (:mod:`repro.analysis.perfmodel`) to predict the
  modeled time at *paper* scale (N up to millions).

All engines share phase 1/2/3 semantics, so the test suite cross-checks
``sim`` against ``vectorized`` element for element.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Optional

import numpy as np

from .bucketing import BucketResult, bucketize
from .config import DEFAULT_CONFIG, SortConfig
from .insertion import sort_buckets
from .splitters import SplitterResult, select_splitters
from .validation import assert_batch_sorted

__all__ = ["GpuArraySort", "SortResult", "sort_arrays", "validate_batch"]


def validate_batch(batch) -> np.ndarray:
    """Boundary validation shared by :meth:`GpuArraySort.sort`/``argsort``.

    Rejects the malformed inputs that used to fail deep inside phase 1
    with obscure indexing errors: non-2-D shapes, zero-column batches,
    and non-numeric dtypes.  Returns the input as an ``ndarray``.
    """
    batch = np.asarray(batch)
    if batch.ndim != 2:
        raise ValueError(f"expected (N, n) batch, got shape {batch.shape}")
    if batch.dtype.kind not in "biuf":
        raise ValueError(
            "batch dtype must be numeric (bool, integer, or float), got "
            f"{batch.dtype!r}"
        )
    if batch.shape[0] > 0 and batch.shape[1] == 0:
        raise ValueError(
            "arrays must have at least one element, got a 0-column batch"
        )
    return batch


@dataclasses.dataclass
class SortResult:
    """Everything a sort run produced.

    ``batch`` is the sorted ``(N, n)`` matrix (same storage as the input
    when ``inplace=True``).  ``phase_seconds`` holds wall-clock per phase
    for the vectorized engine; ``reports`` holds gpusim launch reports for
    the sim engine; ``modeled_ms`` holds the cost-model prediction for
    sim/model engines.

    ``scratch=True`` marks a result whose ``batch`` (and metadata
    arrays) live in the sorter's :class:`~repro.core.workspace.ScratchArena`
    — valid until the sorter's **next** ``sort`` call.  Callers that
    retain such a result across sorts must copy what they keep.
    """

    batch: np.ndarray
    splitters: Optional[SplitterResult] = None
    buckets: Optional[BucketResult] = None
    phase_seconds: Dict[str, float] = dataclasses.field(default_factory=dict)
    reports: Optional[object] = None  # PipelineReport for engine="sim"
    modeled_ms: Optional[float] = None
    scratch: bool = False

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())


class GpuArraySort:
    """Sorter for large batches of equally-sized arrays.

    Example::

        sorter = GpuArraySort()
        result = sorter.sort(batch)          # batch: (N, n) ndarray
        sorted_batch = result.batch

    Parameters
    ----------
    config:
        Bucket-size / sampling-rate tuning (paper defaults).
    engine:
        ``"vectorized"`` (default), ``"sim"``, or ``"model"``.
    device:
        A :class:`repro.gpusim.GpuDevice` (sim engine) or
        :class:`repro.gpusim.DeviceSpec` (model engine).  Defaults to the
        paper's K40c.
    verify:
        When true, assert sortedness + permutation after every run.
    parallel:
        Multicore sharded execution for the vectorized engine: ``None``
        (serial, the default), ``"thread"``, ``"process"``, or an
        executor instance from :mod:`repro.parallel`.  Row shards are
        data-independent (phase 1 is per-row), so the output is
        deterministic regardless of worker count.
    workers:
        Worker count for ``parallel``; defaults to the machine's cores.
    planner:
        Adaptive per-batch engine choice (vectorized engine only, and
        mutually exclusive with ``parallel`` — a planner *is* a dispatch
        policy).  ``"auto"`` uses the process-wide
        :class:`~repro.planner.ExecutionPlanner` (cost-model seeded,
        refined online from observed batch timings, with the flat
        ``"radix"`` row-sort engine among its candidates); ``"fused"`` /
        ``"sharded"`` / ``"radix"`` force one engine via
        :class:`~repro.planner.StaticPlanner`; a planner instance passes
        through.  Implies a scratch arena (see ``workspace``).
    workspace:
        Scratch arena for zero-allocation steady-state sorting:
        ``None`` + no planner keeps legacy per-call allocations; a
        :class:`~repro.core.workspace.ScratchArena` instance (or
        ``True`` for a private one) pools the work copy, phase-1
        staging, and fused metadata.  Arena-backed results are marked
        ``scratch=True`` — valid until this sorter's next ``sort``.
    memory_budget:
        Working-memory ceiling (bytes, or a size string like ``"512M"``)
        that routes ``sort()`` through the out-of-core capacity tier:
        batches whose working set exceeds the budget are sorted
        chunk-by-chunk via :class:`~repro.outofcore.CapacitySorter`
        (the declared planner — default ``"auto"`` — picks the engine
        per chunk).  Vectorized engine only, and mutually exclusive
        with ``parallel`` and ``sampler``.  The result carries the
        capacity run on a dynamic ``capacity`` attribute.
    """

    ENGINES = ("vectorized", "sim", "model")

    def __init__(
        self,
        config: SortConfig = DEFAULT_CONFIG,
        *,
        engine: str = "vectorized",
        device=None,
        verify: bool = False,
        sampler=None,
        parallel=None,
        workers: Optional[int] = None,
        planner=None,
        workspace=None,
        memory_budget=None,
    ) -> None:
        if engine not in self.ENGINES:
            raise ValueError(f"unknown engine {engine!r}; choose from {self.ENGINES}")
        self.config = config
        self.engine = engine
        self.device = device
        self.verify = verify
        #: Optional repro.core.adaptive.AdaptiveSampler overriding phase 1's
        #: regular sampling (vectorized engine only; the paper's Section 9
        #: multi-sampling plan).
        self.sampler = sampler
        self._executor = None
        if parallel is not None:
            if engine != "vectorized":
                raise ValueError(
                    "parallel execution requires engine='vectorized' "
                    f"(got engine={engine!r})"
                )
            if planner is not None:
                raise ValueError(
                    "planner and parallel are mutually exclusive: the "
                    "planner chooses the execution engine per batch; pass "
                    "planner='sharded' to force sharded execution"
                )
            from ..parallel import resolve_executor  # local: optional subsystem

            self._executor = resolve_executor(parallel, workers=workers)
        self._planner = None
        if planner is not None:
            if engine != "vectorized":
                raise ValueError(
                    "planner requires engine='vectorized' "
                    f"(got engine={engine!r})"
                )
            from ..planner import resolve_planner  # local: optional subsystem

            self._planner = resolve_planner(planner, workers=workers)
        self.workspace = None
        if workspace is not None and workspace is not False:
            from .workspace import ScratchArena

            self.workspace = (
                ScratchArena() if workspace is True else workspace
            )
        elif self._planner is not None:
            # A planner implies hot-path usage: give the sorter its own
            # arena so steady-state traffic sorts allocation-free.
            from .workspace import ScratchArena

            self.workspace = ScratchArena()
        self.memory_budget: Optional[int] = None
        if memory_budget is not None:
            if engine != "vectorized":
                raise ValueError(
                    "memory_budget requires engine='vectorized' "
                    f"(got engine={engine!r})"
                )
            if parallel is not None:
                raise ValueError(
                    "memory_budget and parallel are mutually exclusive: the "
                    "capacity tier's per-chunk planner chooses the engine "
                    "(pass planner='sharded' to force sharded chunks)"
                )
            if sampler is not None:
                raise ValueError(
                    "memory_budget does not support a custom sampler: "
                    "chunks run the standard phase-1 sampling"
                )
            from ..outofcore.budget import parse_memory_size  # local: optional subsystem

            self.memory_budget = parse_memory_size(memory_budget)

    @property
    def planner(self):
        """The resolved planner instance (``None`` when not planning)."""
        return self._planner

    # -- public API ----------------------------------------------------------
    def sort(
        self,
        batch: np.ndarray,
        *,
        inplace: bool = False,
        descending: bool = False,
    ) -> SortResult:
        """Sort every row of ``batch``; returns a :class:`SortResult`.

        ``inplace=True`` reuses the caller's storage (the algorithm is
        in-place on the device; on the host this controls whether we copy
        first).  ``descending=True`` reverses the order (internally: sort
        ascending, reverse each row — one extra coalesced pass, exactly
        how a device implementation would do it).  The input must be 2-D,
        numeric, with at least one column (see :func:`validate_batch`).

        NaN handling follows ``config.nan_policy``: ``"raise"`` rejects
        the batch here at the boundary; ``"sort_to_end"`` sorts
        NaN-containing rows on a host path with ``np.sort`` semantics
        (NaNs after every finite value and +inf) while NaN-free rows run
        the normal pipeline — in that case ``splitters``/``buckets`` on
        the result describe only the NaN-free rows.  When the planner
        chooses the ``"radix"`` engine, NaN batches are sorted whole:
        that engine realizes the same order via its canonical-NaN key
        mapping, no split needed.
        """
        batch = validate_batch(batch)
        if batch.shape[0] == 0:
            return SortResult(batch=batch.copy() if not inplace else batch)

        if self.memory_budget is not None:
            return self._sort_capacity(
                batch, inplace=inplace, descending=descending
            )

        # Plan before the work copy: a process-pool plan wants the copy
        # staged straight into a shared-memory slab so the engine can
        # skip its own staging memcpy (see ProcessPoolEngine).
        plan = None
        if self._planner is not None and self.engine == "vectorized" and self.sampler is None:
            plan = self._planner.plan(
                batch.shape[0], batch.shape[1], batch.dtype, config=self.config
            )

        scratch = False
        if inplace:
            work = batch
        elif self.workspace is not None:
            if plan is not None and plan.engine == "process":
                work = self.workspace.get_shared("work", batch.shape, batch.dtype)
            else:
                work = self.workspace.get("work", batch.shape, batch.dtype)
            np.copyto(work, batch)
            scratch = True
        else:
            work = batch.astype(batch.dtype, copy=True)
        reference = batch.copy() if self.verify else None

        nan_mask = None
        if work.dtype.kind == "f":
            row_has_nan = np.isnan(work).any(axis=1)
            if row_has_nan.any():
                if self.config.nan_policy == "raise":
                    raise ValueError(
                        f"{int(row_has_nan.sum())} of {work.shape[0]} rows "
                        "contain NaN; no total order (use "
                        "SortConfig(nan_policy='sort_to_end') to keep them)"
                    )
                nan_mask = row_has_nan

        if nan_mask is not None and not (plan is not None and plan.engine == "radix"):
            result = self._sort_with_nan_rows(work, nan_mask)
        else:
            # A radix plan takes NaN-carrying batches whole: the engine
            # realizes sort_to_end in key space (canonical-NaN keys sort
            # above +inf), so no split/post-pass is needed.
            result = self._dispatch(work, plan=plan)

        result.scratch = scratch
        if self.verify:
            assert_batch_sorted(result.batch, reference)
        if descending:
            result.batch[:] = result.batch[:, ::-1]
        return result

    def _sort_capacity(
        self, batch: np.ndarray, *, inplace: bool, descending: bool
    ) -> SortResult:
        """Route one batch through the out-of-core capacity tier.

        Chunks run the declared planner (or ``"auto"``) with per-chunk
        verification when ``verify=True``; the chunk schedule, spill
        counters, and degradation events land on the returned result's
        dynamic ``capacity`` attribute (a
        :class:`~repro.outofcore.CapacityResult`).
        """
        from ..outofcore.capacity import CapacitySorter  # local: optional subsystem

        capacity = CapacitySorter(
            self.memory_budget,
            config=self.config,
            planner=self._planner if self._planner is not None else "auto",
            verify=self.verify,
        )
        run = capacity.sort(batch, inplace=inplace, descending=descending)
        result = SortResult(
            batch=run.batch,
            phase_seconds={"capacity_chunks": run.stats.wall_seconds},
        )
        result.capacity = run  # decision provenance, like execution_plan
        return result

    def argsort(self, batch: np.ndarray, *, descending: bool = False) -> np.ndarray:
        """Per-row sorting permutation, via the pair machinery.

        Runs the three phases on ``batch`` as keys carrying the column
        indices as payload — the permutation a downstream pipeline needs
        to reorder companion matrices (e.g. reorder intensities after
        sorting m/z).  Stable: equal keys keep their original order.
        """
        from .pairs import sort_pairs

        batch = validate_batch(batch)
        idx = np.broadcast_to(
            np.arange(batch.shape[1], dtype=np.int64), batch.shape
        ).copy()
        result = sort_pairs(batch, idx, config=self.config)
        perm = result.values.astype(np.int64)
        if descending:
            perm = perm[:, ::-1].copy()
        return perm

    # -- engines ----------------------------------------------------------------
    def _dispatch(self, work: np.ndarray, *, plan=None) -> SortResult:
        if self.engine == "vectorized":
            return self._sort_vectorized(work, plan=plan)
        if self.engine == "sim":
            return self._sort_sim(work)
        return self._sort_model(work)

    def _sort_with_nan_rows(self, work: np.ndarray, nan_mask: np.ndarray) -> SortResult:
        """``nan_policy="sort_to_end"``: split the batch by poisoning.

        NaN-free rows run the configured engine as one (smaller) batch;
        NaN-carrying rows are sorted on the host with ``np.sort``, whose
        NaN-to-the-end order is the policy's contract.  The engine cannot
        take them: NaN defeats the splitter range comparisons (every
        ``lo <= v < hi`` is false), and the sim kernels would silently
        drop the element during write-back.
        """
        clean_mask = ~nan_mask
        sub = None
        if clean_mask.any():
            clean = np.ascontiguousarray(work[clean_mask])
            sub = self._dispatch(clean)
            work[clean_mask] = sub.batch
        work[nan_mask] = np.sort(work[nan_mask], axis=1)
        return SortResult(
            batch=work,
            splitters=sub.splitters if sub is not None else None,
            buckets=sub.buckets if sub is not None else None,
            phase_seconds=dict(sub.phase_seconds) if sub is not None else {},
            reports=sub.reports if sub is not None else None,
            modeled_ms=sub.modeled_ms if sub is not None else None,
        )

    def _sort_vectorized(self, work: np.ndarray, *, plan=None) -> SortResult:
        # Planner path: execute the chosen plan, report the measured
        # wall time back so the planner's per-shape EMA converges on the
        # engine this host actually runs fastest.
        if plan is not None:
            return self._sort_planned(work, plan)
        # Sharded multicore path: row shards are data-independent, so the
        # executor's output is identical to the serial path.  A custom
        # sampler is host-side state the workers cannot share; fall back
        # to serial for it.
        if self._executor is not None and self.sampler is None:
            return self._executor.sort_batch(work, self.config)

        t0 = time.perf_counter()
        if self.sampler is not None:
            spl = self.sampler.select(work)
        else:
            spl = select_splitters(work, self.config, workspace=self.workspace)
        t1 = time.perf_counter()

        if self.config.fuse_phases:
            from .fused import fused_bucket_sort  # local: keeps import cheap

            buckets = fused_bucket_sort(
                work, spl.splitters, spl.num_buckets, workspace=self.workspace
            )
            t2 = time.perf_counter()
            return SortResult(
                batch=work,
                splitters=spl,
                buckets=buckets,
                phase_seconds={
                    "phase1_splitters": t1 - t0,
                    "phase23_fused": t2 - t1,
                },
            )

        buckets = bucketize(work, spl.splitters, self.config, out=work)
        t2 = time.perf_counter()
        sort_buckets(work, buckets.offsets)
        t3 = time.perf_counter()
        return SortResult(
            batch=work,
            splitters=spl,
            buckets=buckets,
            phase_seconds={
                "phase1_splitters": t1 - t0,
                "phase2_bucketing": t2 - t1,
                "phase3_sorting": t3 - t2,
            },
        )

    def _sort_planned(self, work: np.ndarray, plan) -> SortResult:
        """Execute one :class:`~repro.planner.ExecutionPlan` and report back.

        Serial plans run the regular (arena-backed) fused path; sharded
        plans run the planner's cached executor instance.  Either way
        the measured wall time feeds ``planner.observe`` so the next
        same-shape batch dispatches on evidence, not prediction.
        """
        t0 = time.perf_counter()
        executor = self._planner.executor_for(plan)
        if plan.engine == "radix":
            result = self._sort_radix(work)
        elif executor is None:
            result = self._sort_vectorized(work)
        else:
            result = executor.sort_batch(work, self.config)
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        self._planner.observe(plan, elapsed_ms)
        # Decision provenance for observability/tests (dynamic attribute,
        # like parallel_info on the executor path).
        result.execution_plan = plan
        return result

    def _sort_radix(self, work: np.ndarray) -> SortResult:
        """The planner's ``"radix"`` engine: flat non-comparison row sort.

        No phase-1 sampling, no bucket metadata — the whole batch is
        sorted through :func:`repro.core.radix.radix_sort_rows`, which
        honors ``nan_policy="sort_to_end"`` via the canonical-NaN key
        mapping.  ``splitters``/``buckets`` are ``None`` on the result:
        this engine never forms buckets.  NaN-freeness under
        ``nan_policy="raise"`` was already enforced at the ``sort()``
        boundary, so the engine skips its own probe.
        """
        from .radix import radix_sort_rows  # local: keeps import cheap

        t0 = time.perf_counter()
        radix_sort_rows(
            work, nan_policy="sort_to_end", workspace=self.workspace
        )
        return SortResult(
            batch=work,
            phase_seconds={"radix_rowsort": time.perf_counter() - t0},
        )

    def _sort_sim(self, work: np.ndarray) -> SortResult:
        from . import kernels  # local import: gpusim only needed for this engine
        from ..gpusim import GpuDevice

        device = self.device if self.device is not None else GpuDevice.k40c()
        if not isinstance(device, GpuDevice):
            raise TypeError("engine='sim' needs a repro.gpusim.GpuDevice")
        sorted_batch, pipeline = kernels.run_arraysort_on_device(
            device, work, self.config
        )
        work[:] = sorted_batch
        return SortResult(
            batch=work,
            reports=pipeline,
            modeled_ms=pipeline.milliseconds,
        )

    def _sort_model(self, work: np.ndarray) -> SortResult:
        from ..analysis.perfmodel import model_arraysort_ms
        from ..gpusim.device import DeviceSpec, K40C

        spec = self.device if self.device is not None else K40C
        if not isinstance(spec, DeviceSpec):
            spec = getattr(spec, "spec", None)
            if not isinstance(spec, DeviceSpec):
                raise TypeError("engine='model' needs a DeviceSpec")
        ms = model_arraysort_ms(spec, work.shape[0], work.shape[1], self.config)
        # The model engine still delivers a sorted result (cheaply) so
        # callers can use it interchangeably.
        work.sort(axis=1)
        return SortResult(batch=work, modeled_ms=ms)


def sort_arrays(
    batch: np.ndarray,
    *,
    config: SortConfig = DEFAULT_CONFIG,
    engine: str = "vectorized",
    verify: bool = False,
) -> np.ndarray:
    """One-shot convenience wrapper: returns the sorted batch.

    >>> sort_arrays(np.array([[3., 1., 2.], [9., 7., 8.]])).tolist()
    [[1.0, 2.0, 3.0], [7.0, 8.0, 9.0]]
    """
    sorter = GpuArraySort(config, engine=engine, verify=verify)
    return sorter.sort(batch).batch
