"""Fused phases 2+3 — the single-pass fast path of the vectorized engine.

The paper-faithful vectorized pipeline runs four separate passes over the
``(N, n)`` batch: a bucket-id pass (phase 2), a stable argsort +
``take_along_axis`` grouping pass (phase 2's write-back), an
``np.add.at`` scatter for the bucket sizes, and a final flat ``lexsort``
keyed by ``(bucket segment, value)`` (phase 3).  That phase separation is
what the simulator cross-checks, but on the host it is pure overhead:
GPU Sample Sort (Leischner et al.) and GPU Multisplit (Ashkiani et al.)
both win by *fusing* the bucket-id/scatter/sort passes into one key sort.

This module is that fusion.  The load-bearing identity: within one row,
the bucket id is a **non-decreasing function of the value** (bucket ``j``
owns ``s_j <= x < s_{j+1}`` with sorted splitters), so the stable sort by
the fused key ``(bucket_id, value)`` orders elements exactly as a sort by
``value`` alone.  The whole phase-2 grouping + phase-3 segmented lexsort
therefore collapses to **one in-place row sort** — and the per-element
bucket ids (phase 2's boolean-cube broadcast in the unfused path) are
never materialized at all.  The bucket metadata the pipeline still owes
its callers (Definition 4's ``Z`` sizes, the exclusive-scan offsets) is
recovered *after* the sort by locating each splitter inside its sorted
row with a batched binary search: ``offsets[i, b] = #{x in row i : x <
s_{b-1}}``, which equals the exclusive scan of the bincount over the
fused ``row * p + bucket_id`` index the unfused path computes — the same
numbers at O(N·q·log n) instead of O(N·n·q).

:func:`searchsorted_rows` is the batched binary search (a row-wise
``np.searchsorted`` with no Python-level per-row loop); it is shared with
the unfused path's bucket-id computation (:mod:`repro.core.bucketing`)
and with the payload-carrying pair sorter.

Select the unfused, paper-faithful phase boundaries with
``SortConfig(fuse_phases=False)`` — ablations and the sim cross-checks
exercise them; equivalence is pinned by
``tests/test_fused_equivalence.py`` (byte-identical batches, identical
sizes/offsets).
"""

from __future__ import annotations

import numpy as np

from .bucketing import BucketResult

__all__ = ["searchsorted_rows", "bucket_ids_rows", "fused_bucket_sort"]


def searchsorted_rows(a: np.ndarray, v: np.ndarray, side: str = "left") -> np.ndarray:
    """Row-wise ``np.searchsorted``: insertion positions of ``v[i]`` in ``a[i]``.

    ``a`` is ``(N, n)`` with every row sorted (non-decreasing); ``v`` is
    ``(N, q)``.  Returns an int64 ``(N, q)`` matrix ``pos`` with
    ``pos[i, k] == np.searchsorted(a[i], v[i, k], side=side)``.

    Implemented as a vectorized binary search over the row axis —
    ``ceil(log2(n)) + 1`` rounds of one gather + one compare on ``(N, q)``
    state — so the cost is O(N·q·log n) with no Python-level per-row loop
    and O(N·q) scratch.  This is the batched primitive the fused engine
    uses to recover bucket offsets from sorted rows, and what replaces the
    O(N·n·q) boolean-cube broadcast when roles are flipped
    (:func:`bucket_ids_rows`).

    >>> searchsorted_rows(np.array([[1., 3., 5.]]), np.array([[3., 6.]])).tolist()
    [[1, 3]]
    """
    a = np.asarray(a)
    v = np.asarray(v)
    if a.ndim != 2 or v.ndim != 2:
        raise ValueError("searchsorted_rows expects 2-D a and v")
    if a.shape[0] != v.shape[0]:
        raise ValueError(
            f"row count mismatch: a has {a.shape[0]} rows, v has {v.shape[0]}"
        )
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    n_rows, n = a.shape
    lo = np.zeros(v.shape, dtype=np.int64)
    if n == 0 or v.shape[1] == 0:
        return lo
    hi = np.full(v.shape, n, dtype=np.int64)
    rows = np.arange(n_rows, dtype=np.int64)[:, None]
    # Classic [lo, hi) bisection, all rows in lock step.  The loop bound
    # is exact: every round halves hi - lo.
    for _ in range(int(np.ceil(np.log2(n))) + 1 if n > 1 else 1):
        active = lo < hi
        if not np.any(active):
            break
        mid = (lo + hi) >> 1
        # Converged lanes can sit at lo == hi == n; clamp their (unused)
        # gather index and mask them out of the update.
        picked = a[rows, np.minimum(mid, n - 1)]
        go_right = (picked < v) if side == "left" else (picked <= v)
        go_right &= active
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(go_right | ~active, hi, mid)
    return lo


def bucket_ids_rows(batch: np.ndarray, splitters: np.ndarray) -> np.ndarray:
    """Bucket id of every element: per-row searchsorted into the splitters.

    The transpose of :func:`searchsorted_rows`'s usual orientation: here
    the *splitters* ``(N, q)`` are the sorted rows searched, and every
    batch element is a query.  ``side='right'`` counts splitters ``<= x``
    — exactly the half-open ``s_j <= x < s_{j+1}`` bucket rule of
    :func:`repro.core.bucketing.bucket_ids_for_row`, vectorized over the
    whole batch at O(N·n·log q) instead of the O(N·n·q) boolean cube.

    Returns int32 ids in ``[0, q]`` (``q + 1 == p`` buckets).
    """
    pos = searchsorted_rows(np.asarray(splitters), np.asarray(batch), side="right")
    return pos.astype(np.int32, copy=False)


def fused_bucket_sort(
    work: np.ndarray, splitters: np.ndarray, num_buckets: int
) -> BucketResult:
    """Phases 2+3 in one pass: sort ``work`` rows in place, derive metadata.

    The single stable key sort by ``(bucket_id, value)`` described above
    degenerates to one in-place ``ndarray.sort(axis=1)`` (bucket id is
    monotone in value), after which the bucket boundaries are recovered
    with one batched binary search of the ``q`` splitters into each
    sorted row.  Returns a :class:`~repro.core.bucketing.BucketResult`
    whose ``bucketed`` aliases ``work`` (now fully sorted) and whose
    ``sizes``/``offsets`` are element-identical to the unfused phase-2
    output: ``offsets[i, b]`` = number of elements of row ``i`` strictly
    below splitter ``b-1`` = the exclusive scan of the fused-index
    bincount.
    """
    work = np.asarray(work)
    if work.ndim != 2:
        raise ValueError(f"expected (N, n) batch, got shape {work.shape}")
    splitters = np.asarray(splitters)
    n_rows, n = work.shape
    p = int(num_buckets)
    q = splitters.shape[1]
    if q != p - 1:
        raise ValueError(
            f"splitter count {q} inconsistent with num_buckets {p}"
        )

    # The fused sort: one pass, in place, no per-element bucket ids.
    work.sort(axis=1)

    offsets = np.zeros((n_rows, p + 1), dtype=np.int64)
    offsets[:, p] = n
    if q:
        # x == s_{b-1} belongs to bucket b-1's right neighbour's range
        # start, i.e. bucket b starts at the first element >= s_{b-1}:
        # side='left'.  Duplicate splitters yield empty buckets for free.
        offsets[:, 1:p] = searchsorted_rows(work, splitters, side="left")
    sizes = np.diff(offsets)
    return BucketResult(bucketed=work, sizes=sizes, offsets=offsets)
