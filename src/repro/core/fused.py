"""Fused phases 2+3 — the single-pass fast path of the vectorized engine.

The paper-faithful vectorized pipeline runs four separate passes over the
``(N, n)`` batch: a bucket-id pass (phase 2), a stable argsort +
``take_along_axis`` grouping pass (phase 2's write-back), an
``np.add.at`` scatter for the bucket sizes, and a final flat ``lexsort``
keyed by ``(bucket segment, value)`` (phase 3).  That phase separation is
what the simulator cross-checks, but on the host it is pure overhead:
GPU Sample Sort (Leischner et al.) and GPU Multisplit (Ashkiani et al.)
both win by *fusing* the bucket-id/scatter/sort passes into one key sort.

This module is that fusion.  The load-bearing identity: within one row,
the bucket id is a **non-decreasing function of the value** (bucket ``j``
owns ``s_j <= x < s_{j+1}`` with sorted splitters), so the stable sort by
the fused key ``(bucket_id, value)`` orders elements exactly as a sort by
``value`` alone.  The whole phase-2 grouping + phase-3 segmented lexsort
therefore collapses to **one in-place row sort** — and the per-element
bucket ids (phase 2's boolean-cube broadcast in the unfused path) are
never materialized at all.  The bucket metadata the pipeline still owes
its callers (Definition 4's ``Z`` sizes, the exclusive-scan offsets) is
recovered *after* the sort by locating each splitter inside its sorted
row with a batched binary search: ``offsets[i, b] = #{x in row i : x <
s_{b-1}}``, which equals the exclusive scan of the bincount over the
fused ``row * p + bucket_id`` index the unfused path computes — the same
numbers at O(N·q·log n) instead of O(N·n·q).

:func:`searchsorted_rows` is the batched binary search (a row-wise
``np.searchsorted`` with no Python-level per-row loop); it is shared with
the unfused path's bucket-id computation (:mod:`repro.core.bucketing`)
and with the payload-carrying pair sorter.

Select the unfused, paper-faithful phase boundaries with
``SortConfig(fuse_phases=False)`` — ablations and the sim cross-checks
exercise them; equivalence is pinned by
``tests/test_fused_equivalence.py`` (byte-identical batches, identical
sizes/offsets).
"""

from __future__ import annotations

import numpy as np

from .bucketing import BucketResult

__all__ = ["searchsorted_rows", "bucket_ids_rows", "fused_bucket_sort"]

# Below this many query elements the arena bisection's extra ufunc calls
# (masked copies, out= staging) cost more than the plain path's small
# temporaries; both paths return identical positions, so pick by size.
_WS_BISECT_MIN_ELEMS = 4096


def searchsorted_rows(
    a: np.ndarray, v: np.ndarray, side: str = "left", *, workspace=None
) -> np.ndarray:
    """Row-wise ``np.searchsorted``: insertion positions of ``v[i]`` in ``a[i]``.

    ``a`` is ``(N, n)`` with every row sorted (non-decreasing); ``v`` is
    ``(N, q)``.  Returns an int64 ``(N, q)`` matrix ``pos`` with
    ``pos[i, k] == np.searchsorted(a[i], v[i, k], side=side)``.

    Implemented as a vectorized binary search over the row axis —
    ``ceil(log2(n)) + 1`` rounds of one gather + one compare on ``(N, q)``
    state — so the cost is O(N·q·log n) with no Python-level per-row loop
    and O(N·q) scratch.  This is the batched primitive the fused engine
    uses to recover bucket offsets from sorted rows, and what replaces the
    O(N·n·q) boolean-cube broadcast when roles are flipped
    (:func:`bucket_ids_rows`).

    With a ``workspace`` (:class:`~repro.core.workspace.ScratchArena`)
    and a C-contiguous ``a``, every round runs with ``out=`` discipline
    into pooled buffers — no per-round allocations, and the returned
    array is arena scratch (valid until the next same-shape call).

    >>> searchsorted_rows(np.array([[1., 3., 5.]]), np.array([[3., 6.]])).tolist()
    [[1, 3]]
    """
    a = np.asarray(a)
    v = np.asarray(v)
    if a.ndim != 2 or v.ndim != 2:
        raise ValueError("searchsorted_rows expects 2-D a and v")
    if a.shape[0] != v.shape[0]:
        raise ValueError(
            f"row count mismatch: a has {a.shape[0]} rows, v has {v.shape[0]}"
        )
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    n_rows, n = a.shape
    if (
        workspace is not None
        and a.flags.c_contiguous
        and v.size >= _WS_BISECT_MIN_ELEMS
    ):
        return _searchsorted_rows_ws(a, v, side, workspace)
    lo = np.zeros(v.shape, dtype=np.int64)
    if n == 0 or v.shape[1] == 0:
        return lo
    hi = np.full(v.shape, n, dtype=np.int64)
    rows = np.arange(n_rows, dtype=np.int64)[:, None]
    # Classic [lo, hi) bisection, all rows in lock step.  The loop bound
    # is exact: every round halves hi - lo.
    for _ in range(int(np.ceil(np.log2(n))) + 1 if n > 1 else 1):
        active = lo < hi
        if not np.any(active):
            break
        mid = (lo + hi) >> 1
        # Converged lanes can sit at lo == hi == n; clamp their (unused)
        # gather index and mask them out of the update.
        picked = a[rows, np.minimum(mid, n - 1)]
        go_right = (picked < v) if side == "left" else (picked <= v)
        go_right &= active
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(go_right | ~active, hi, mid)
    return lo


def _searchsorted_rows_ws(
    a: np.ndarray, v: np.ndarray, side: str, workspace
) -> np.ndarray:
    """Arena-backed bisection: identical results, zero per-round allocations.

    Same lock-step algorithm as the plain path, but every intermediate
    (``lo``/``hi``/``mid``, the flattened gather index, the picked
    values, the two masks) lives in pooled buffers and every NumPy op
    writes through ``out=``.  The row gather becomes a flat ``np.take``
    with precomputed per-row base offsets, because fancy ``a[rows, mid]``
    indexing cannot target an ``out=`` buffer.
    """
    n_rows, n = a.shape
    lo = workspace.get("bisect.lo", v.shape, np.int64)
    lo[:] = 0
    if n == 0 or v.shape[1] == 0:
        return lo
    hi = workspace.get("bisect.hi", v.shape, np.int64)
    hi[:] = n
    mid = workspace.get("bisect.mid", v.shape, np.int64)
    flat = workspace.get("bisect.flat", v.shape, np.int64)
    picked = workspace.get("bisect.picked", v.shape, a.dtype)
    go_right = workspace.get("bisect.go_right", v.shape, np.bool_)
    not_right = workspace.get("bisect.not_right", v.shape, np.bool_)
    active = workspace.get("bisect.active", v.shape, np.bool_)
    rowbase = workspace.get("bisect.rowbase", (n_rows, 1), np.int64)
    rowbase[:, 0] = np.arange(n_rows, dtype=np.int64)
    rowbase *= n
    a_flat = a.reshape(-1)
    compare = np.less if side == "left" else np.less_equal
    for _ in range(int(np.ceil(np.log2(n))) + 1 if n > 1 else 1):
        np.less(lo, hi, out=active)
        if not np.any(active):
            break
        np.add(lo, hi, out=mid)
        mid >>= 1
        np.minimum(mid, n - 1, out=flat)
        flat += rowbase
        np.take(a_flat, flat, out=picked)
        compare(picked, v, out=go_right)
        go_right &= active
        # hi <- mid on still-active lanes that go left, *before* mid is
        # bumped for the go-right lanes' new lo.
        np.logical_not(go_right, out=not_right)
        not_right &= active
        np.copyto(hi, mid, where=not_right)
        mid += 1
        np.copyto(lo, mid, where=go_right)
    return lo


def bucket_ids_rows(batch: np.ndarray, splitters: np.ndarray) -> np.ndarray:
    """Bucket id of every element: per-row searchsorted into the splitters.

    The transpose of :func:`searchsorted_rows`'s usual orientation: here
    the *splitters* ``(N, q)`` are the sorted rows searched, and every
    batch element is a query.  ``side='right'`` counts splitters ``<= x``
    — exactly the half-open ``s_j <= x < s_{j+1}`` bucket rule of
    :func:`repro.core.bucketing.bucket_ids_for_row`, vectorized over the
    whole batch at O(N·n·log q) instead of the O(N·n·q) boolean cube.

    Returns int32 ids in ``[0, q]`` (``q + 1 == p`` buckets).
    """
    pos = searchsorted_rows(np.asarray(splitters), np.asarray(batch), side="right")
    return pos.astype(np.int32, copy=False)


def fused_bucket_sort(
    work: np.ndarray, splitters: np.ndarray, num_buckets: int, *, workspace=None
) -> BucketResult:
    """Phases 2+3 in one pass: sort ``work`` rows in place, derive metadata.

    The single stable key sort by ``(bucket_id, value)`` described above
    degenerates to one in-place ``ndarray.sort(axis=1)`` (bucket id is
    monotone in value), after which the bucket boundaries are recovered
    with one batched binary search of the ``q`` splitters into each
    sorted row.  Returns a :class:`~repro.core.bucketing.BucketResult`
    whose ``bucketed`` aliases ``work`` (now fully sorted) and whose
    ``sizes``/``offsets`` are element-identical to the unfused phase-2
    output: ``offsets[i, b]`` = number of elements of row ``i`` strictly
    below splitter ``b-1`` = the exclusive scan of the fused-index
    bincount.

    With a ``workspace``, the ``offsets``/``sizes`` metadata and the
    binary search's scratch come from the arena (valid until the next
    same-shape call) — zero allocations in steady state.
    """
    work = np.asarray(work)
    if work.ndim != 2:
        raise ValueError(f"expected (N, n) batch, got shape {work.shape}")
    splitters = np.asarray(splitters)
    n_rows, n = work.shape
    p = int(num_buckets)
    q = splitters.shape[1]
    if q != p - 1:
        raise ValueError(
            f"splitter count {q} inconsistent with num_buckets {p}"
        )

    # The fused sort: one pass, in place, no per-element bucket ids.
    work.sort(axis=1)

    if workspace is not None:
        offsets = workspace.get("fused.offsets", (n_rows, p + 1), np.int64)
        sizes = workspace.get("fused.sizes", (n_rows, p), np.int64)
        offsets[:, 0] = 0
        offsets[:, p] = n
        if q:
            offsets[:, 1:p] = searchsorted_rows(
                work, splitters, side="left", workspace=workspace
            )
        np.subtract(offsets[:, 1:], offsets[:, :-1], out=sizes)
        return BucketResult(bucketed=work, sizes=sizes, offsets=offsets)

    offsets = np.zeros((n_rows, p + 1), dtype=np.int64)
    offsets[:, p] = n
    if q:
        # x == s_{b-1} belongs to bucket b-1's right neighbour's range
        # start, i.e. bucket b starts at the first element >= s_{b-1}:
        # side='left'.  Duplicate splitters yield empty buckets for free.
        offsets[:, 1:p] = searchsorted_rows(work, splitters, side="left")
    sizes = np.diff(offsets)
    return BucketResult(bucketed=work, sizes=sizes, offsets=offsets)
