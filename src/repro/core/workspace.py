"""Scratch arena: reusable preallocated buffers for the batch-sort hot path.

The ROADMAP's "serve heavy streaming traffic" north star means the same
``(N, n)`` shape is sorted thousands of times per session.  On the seed
hot path every one of those sorts paid for fresh NumPy allocations: the
work copy (``batch.astype(copy=True)``), the phase-1 sample matrix and
splitter staging, and the fused path's ``offsets``/``sizes`` metadata.
None of those buffers change shape between batches — the allocator churn
is pure overhead, and on large batches it also defeats the page cache.

:class:`ScratchArena` is the fix: a per-sorter pool of buffers keyed by
``(tag, dtype)``.  A buffer is allocated on first use, **grown
geometrically** (capacity at least doubles) when a larger request
arrives, and otherwise handed back as a zero-copy view — so steady-state
streaming traffic sorts with no NumPy allocations on the hot path.

Thread-safety: buffer **checkout and growth are lock-guarded** — since
the sort service arrived, an arena is reachable from the service's
batcher thread and from caller threads concurrently, and an unguarded
grow could drop or double-count pooled buffers.  The lock covers the
pool bookkeeping only; the *storage* stays single-owner: two threads
requesting the same ``(tag, dtype)`` key receive views of the **same**
buffer, so concurrent use of one key still needs external coordination
(each sorter keeps its own arena, exactly like the paper's per-block
shared-memory staging belongs to one block; sharded executors never
share an arena across workers).

Scratch semantics: views handed out by :meth:`ScratchArena.get` are
valid **until the next request for the same ``(tag, dtype)`` key** — a
sorter's next batch reuses them.  Callers that retain results across
sorts (e.g. :class:`~repro.core.streaming.StreamingSorter` collecting to
``results``) must copy; results delivered to an ``on_batch`` consumer
follow the classic streaming contract (valid until the next emission).

Shared-memory slabs: :meth:`ScratchArena.get_shared` allocates the
buffer inside a ``multiprocessing.shared_memory`` segment and registers
it in a module-level registry, so
:class:`~repro.parallel.executors.ProcessPoolEngine` can recognize
(:func:`find_shared_slab`) that a batch already lives in shared memory
and skip its per-sort staging copy entirely — workers attach the
existing segment by name instead.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, Optional, Tuple

import numpy as np

from ..statan import runtime as _sanitizer

__all__ = [
    "ScratchArena",
    "WorkspaceStats",
    "find_shared_slab",
    "register_shared_slab",
    "unregister_shared_slab",
]


#: Module-level registry of live shared-memory slabs:
#: ``shm name -> (start address, stop address, SharedMemory)``.  Consulted
#: by :func:`find_shared_slab`; entries are removed when the owning arena
#: closes.  Addresses (not array identities) are registered so that *any*
#: contiguous view into a slab — e.g. the ``slab[:N]`` prefix a sorter
#: hands to an executor — is recognized.
_SHARED_SLABS: Dict[str, Tuple[int, int, object]] = {}


def register_shared_slab(name: str, array: np.ndarray, shm: object) -> None:
    """Record that ``array``'s bytes live in the shared segment ``name``."""
    start = int(array.__array_interface__["data"][0])
    _SHARED_SLABS[name] = (start, start + int(array.nbytes), shm)


def unregister_shared_slab(name: str) -> None:
    """Drop a slab from the registry (idempotent)."""
    _SHARED_SLABS.pop(name, None)


def find_shared_slab(array: np.ndarray) -> Optional[Tuple[str, int]]:
    """``(shm name, byte offset)`` if ``array`` lives inside a registered slab.

    Returns ``None`` for ordinary heap arrays, non-contiguous views, and
    arrays only partially covered by a slab.  The offset is where the
    array's first byte sits inside the segment, so a worker process can
    attach with ``np.ndarray(shape, dtype, buffer=shm.buf, offset=offset)``.
    """
    if not isinstance(array, np.ndarray) or not array.flags.c_contiguous:
        return None
    if not _SHARED_SLABS:
        return None
    start = int(array.__array_interface__["data"][0])
    stop = start + int(array.nbytes)
    for name, (lo, hi, _shm) in _SHARED_SLABS.items():
        if lo <= start and stop <= hi:
            return name, start - lo
    return None


@dataclasses.dataclass
class WorkspaceStats:
    """Allocation accounting for one :class:`ScratchArena`."""

    hits: int = 0
    allocations: int = 0
    grows: int = 0
    bytes_held: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@_sanitizer.sanitize_guarded
class ScratchArena:
    """Pool of reusable NumPy buffers keyed by ``(tag, dtype)``.

    >>> arena = ScratchArena()
    >>> a = arena.get("work", (4, 8), np.float32)
    >>> b = arena.get("work", (4, 8), np.float32)
    >>> a.base is b.base  # same storage, zero new allocations
    True
    >>> arena.get("work", (4, 8), np.int64).base is a.base  # dtypes never alias
    False
    """

    def __init__(self, growth: float = 2.0) -> None:
        if growth < 1.0:
            raise ValueError(f"growth factor must be >= 1.0, got {growth}")
        self.growth = float(growth)
        self.stats = WorkspaceStats()
        #: Guards pool checkout/growth and close (see module docstring);
        #: reentrant because get_shared falls back to get() on platforms
        #: without shared memory.
        self._lock = _sanitizer.make_rlock("ScratchArena._lock")
        self._pools: Dict[Tuple[str, str], np.ndarray] = {}  # guarded-by: _lock
        #: name -> SharedMemory for slabs owned by this arena.
        self._shared: Dict[str, object] = {}  # guarded-by: _lock
        #: pool key -> owning shm name (shared pools only).
        self._pool_shm_name: Dict[Tuple[str, str], str] = {}  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

    # -- plain buffers -----------------------------------------------------
    def get(self, tag: str, shape, dtype) -> np.ndarray:
        """A C-contiguous ``shape``/``dtype`` view of the pooled buffer.

        Valid until the next ``get``/``get_shared`` with the same
        ``(tag, dtype)`` key.  Contents are undefined (no zeroing — the
        hot path always overwrites).
        """
        dtype = np.dtype(dtype)
        shape = tuple(int(s) for s in shape)
        need = 1
        for s in shape:
            need *= s
        key = (tag, dtype.str)
        with self._lock:
            if self._closed:
                raise RuntimeError("arena is closed")
            pool = self._pools.get(key)
            if pool is None or pool.size < need:
                capacity = need
                if pool is not None:
                    capacity = max(need, int(pool.size * self.growth))
                    self.stats.grows += 1
                    self.stats.bytes_held -= pool.nbytes
                pool = np.empty(capacity, dtype)
                self._pools[key] = pool
                self.stats.allocations += 1
                self.stats.bytes_held += pool.nbytes
            else:
                self.stats.hits += 1
            view = pool[:need].reshape(shape)
            if _sanitizer.enabled():
                # Checked build: this get() invalidates the previous view
                # for the same key (the documented contract), and the new
                # view is tracked so use-after-reuse raises.
                region = ("ScratchArena", id(self), key)
                _sanitizer.new_epoch(region)
                view = _sanitizer.track_view(
                    view, region,
                    label=f"ScratchArena.get({tag!r}, {dtype.str})",
                )
            return view

    # -- shared-memory slabs ----------------------------------------------
    def get_shared(self, tag: str, shape, dtype) -> np.ndarray:
        """Like :meth:`get`, but backed by ``multiprocessing.shared_memory``.

        The slab is registered so :func:`find_shared_slab` (and therefore
        ``ProcessPoolEngine``) recognizes any contiguous view of it.
        Falls back to a plain pooled buffer when shared memory is
        unavailable on the platform.
        """
        try:
            from multiprocessing import shared_memory
        except ImportError:  # pragma: no cover - always present on CPython
            return self.get(tag, shape, dtype)
        dtype = np.dtype(dtype)
        shape = tuple(int(s) for s in shape)
        need = 1
        for s in shape:
            need *= s
        key = (tag + "@shm", dtype.str)
        with self._lock:
            if self._closed:
                raise RuntimeError("arena is closed")
            pool = self._pools.get(key)
            if pool is None or pool.size < need:
                capacity = need
                if pool is not None:
                    capacity = max(need, int(pool.size * self.growth))
                    self.stats.grows += 1
                    self._release_shared_pool_locked(key)
                nbytes = max(1, capacity * dtype.itemsize)
                shm = shared_memory.SharedMemory(create=True, size=nbytes)
                pool = np.ndarray((capacity,), dtype=dtype, buffer=shm.buf)
                self._pools[key] = pool
                self._shared[shm.name] = shm
                self._pool_shm_name[key] = shm.name
                register_shared_slab(shm.name, pool, shm)
                self.stats.allocations += 1
                self.stats.bytes_held += pool.nbytes
            else:
                self.stats.hits += 1
            view = pool[:need].reshape(shape)
            if _sanitizer.enabled():
                region = ("ScratchArena", id(self), key)
                _sanitizer.new_epoch(region)
                view = _sanitizer.track_view(
                    view, region,
                    label=f"ScratchArena.get_shared({tag!r}, {dtype.str})",
                )
            return view

    def _release_shared_pool_locked(self, key: Tuple[str, str]) -> None:
        """Drop one shared pool and unlink its slab; caller holds ``_lock``."""
        pool = self._pools.pop(key, None)
        if pool is None:
            return
        if _sanitizer.enabled():
            # The segment is about to be unlinked: outstanding views of
            # this key are no longer backed by live storage.
            _sanitizer.new_epoch(("ScratchArena", id(self), key))
        self.stats.bytes_held -= pool.nbytes
        name = self._pool_shm_name.pop(key, None)
        shm = self._shared.pop(name, None) if name else None
        del pool  # drop the ndarray view before closing its buffer
        if shm is not None:
            unregister_shared_slab(name)
            try:
                shm.close()
                shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass

    # -- lifecycle ---------------------------------------------------------
    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self) -> None:
        """Release every pooled buffer and unlink owned shared slabs.

        Idempotent.  After closing, ``get``/``get_shared`` raise.
        """
        with self._lock:
            if self._closed:
                return
            for key in [k for k in self._pools if k in self._pool_shm_name]:
                self._release_shared_pool_locked(key)
            self._pools.clear()
            self.stats.bytes_held = 0
            self._closed = True

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:  # statan: ignore[silent-except] -- GC-time close; raising from __del__ aborts interpreter shutdown
            pass

    def __enter__(self) -> "ScratchArena":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
