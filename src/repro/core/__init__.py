"""``repro.core`` — the paper's contribution: GPU-ArraySort.

Public surface:

* :class:`~repro.core.array_sort.GpuArraySort` / :func:`~repro.core.array_sort.sort_arrays`
  — the three-phase batch sorter with ``vectorized`` / ``sim`` / ``model`` engines;
* :class:`~repro.core.config.SortConfig` — bucket-size and sampling-rate tuning;
* phase building blocks (:mod:`~repro.core.splitters`,
  :mod:`~repro.core.bucketing`, :mod:`~repro.core.insertion`) for users who
  want to compose the pipeline themselves;
* :mod:`~repro.core.fused` — the fused phases-2+3 fast path
  (``SortConfig.fuse_phases``) and the batched row-wise ``searchsorted``
  primitive behind it;
* :mod:`~repro.core.kernels` — the per-thread kernels for the gpusim engine;
* :mod:`~repro.core.pipeline` — the out-of-core extension (paper Section 9);
* :mod:`~repro.core.validation` — result checkers.
"""

from .adaptive import (
    SAMPLING_STRATEGIES,
    AdaptiveSampler,
    SkewProbe,
    choose_strategy,
    probe_skew,
    select_splitters_adaptive,
)
from .array_sort import GpuArraySort, SortResult, sort_arrays, validate_batch
from .pairs import PairSortResult, sort_pairs
from .streaming import StreamCheckpoint, StreamingSorter, StreamStats
from .topk import top_k, top_k_via_sort
from .tuning import TuningResult, sweep_bucket_sizes, tune_config
from .bucketing import (
    BucketResult,
    adaptive_row_chunk,
    bucket_ids_for_row,
    bucketize,
    exclusive_scan,
)
from .config import DEFAULT_CONFIG, SortConfig
from .fused import bucket_ids_rows, fused_bucket_sort, searchsorted_rows
from .insertion import (
    insertion_sort,
    insertion_sort_inplace,
    segment_base,
    sort_buckets,
    sort_buckets_rowwise,
)
from .splitters import (
    INDEX_PLAN_CACHE_MAXSIZE,
    SplitterResult,
    clear_index_plan_cache,
    index_plan_cache_info,
    regular_sample_indices,
    select_splitters,
    splitter_pick_indices,
)
from .radix import (
    RADIX_STRATEGIES,
    RadixInfo,
    keys_to_values,
    radix_sort_rows,
    sortable_keys,
)
from .workspace import ScratchArena, WorkspaceStats, find_shared_slab
from .validation import (
    ValidationFailure,
    assert_batch_sorted,
    check_bucket_partition,
    is_sorted_rows,
    rows_are_permutations,
)

__all__ = [
    "AdaptiveSampler",
    "BucketResult",
    "DEFAULT_CONFIG",
    "PairSortResult",
    "SAMPLING_STRATEGIES",
    "SkewProbe",
    "choose_strategy",
    "probe_skew",
    "select_splitters_adaptive",
    "sort_pairs",
    "StreamCheckpoint",
    "StreamingSorter",
    "StreamStats",
    "TuningResult",
    "sweep_bucket_sizes",
    "top_k",
    "top_k_via_sort",
    "tune_config",
    "GpuArraySort",
    "INDEX_PLAN_CACHE_MAXSIZE",
    "RADIX_STRATEGIES",
    "RadixInfo",
    "keys_to_values",
    "radix_sort_rows",
    "sortable_keys",
    "ScratchArena",
    "SortConfig",
    "SortResult",
    "SplitterResult",
    "WorkspaceStats",
    "find_shared_slab",
    "index_plan_cache_info",
    "ValidationFailure",
    "adaptive_row_chunk",
    "assert_batch_sorted",
    "bucket_ids_for_row",
    "bucket_ids_rows",
    "bucketize",
    "check_bucket_partition",
    "clear_index_plan_cache",
    "exclusive_scan",
    "fused_bucket_sort",
    "insertion_sort",
    "insertion_sort_inplace",
    "is_sorted_rows",
    "regular_sample_indices",
    "rows_are_permutations",
    "searchsorted_rows",
    "segment_base",
    "select_splitters",
    "sort_arrays",
    "sort_buckets",
    "sort_buckets_rowwise",
    "splitter_pick_indices",
    "validate_batch",
]
