"""Phase 2 — bucketing and in-place write-back (paper Section 5.2).

Each array is partitioned by its splitters into ``p`` data-independent
buckets.  On hardware, one block handles one array with one thread per
bucket: each thread owns a splitter *pair* (with sentinels below the
minimum and above the maximum appended, so no thread needs a boundary
branch — the paper's branch-divergence avoidance trick), scans the whole
array, collects in-range elements, and counts them.  The counted sizes let
the block compute write-back offsets with an exclusive prefix sum, so the
buckets are written **back into the array's own global-memory footprint**
— the in-place property that saves ~50 % of device memory versus
double-buffered bucketing.

The vectorized engine expresses the same computation as:

* bucket id per element = number of splitters <= element (a right-bisect),
* stable argsort by bucket id = the order in which a per-bucket scan would
  have emitted elements (each thread scans left to right, so bucketing is
  stable within a bucket),
* bincount per row = the size array ``Z`` of paper Definition 4.

Boundary semantics: the paper's Algorithm 2 buckets elements *strictly
between* the pair, which would drop elements equal to a splitter.  Every
working sample-sort implementation uses half-open ranges; we bucket
element ``x`` into bucket ``j`` iff ``s_j <= x < s_{j+1}`` (DESIGN.md
section 8 records this deviation).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from .config import DEFAULT_CONFIG, SortConfig

__all__ = [
    "BucketResult",
    "BUCKETIZE_ELEMENT_BUDGET",
    "adaptive_row_chunk",
    "bucket_ids_for_row",
    "bucketize",
    "exclusive_scan",
]

#: Scratch budget (in *elements*, not bytes) that one bucket-id chunk may
#: touch.  The unfused path's per-chunk temporaries scale with ``n * q``
#: (the boolean-cube strategy materializes exactly that; the binary-search
#: strategy stays well under it), so the adaptive chunk is derived from
#: this budget instead of the old fixed 512 rows — 512 rows was far too
#: small for short arrays (Python-loop overhead) and too large for wide
#: ones (hundreds of MB of cube per chunk).  2**25 elements ~ 128 MiB of
#: float32 scratch.
BUCKETIZE_ELEMENT_BUDGET = 1 << 25


def adaptive_row_chunk(n: int, q: int, budget: int = BUCKETIZE_ELEMENT_BUDGET) -> int:
    """Rows per bucket-id chunk so the chunk scratch stays within ``budget``.

    Derived from the ``n * q`` element footprint of one row's bucket-id
    computation (the boolean-cube bound; the binary-search strategy's
    ``O(n log q)`` footprint is strictly smaller, so the bound is safe for
    both).  Clamped to at least 1 row.

    >>> adaptive_row_chunk(1000, 49, budget=1 << 20)
    21
    """
    if n < 1:
        raise ValueError(f"array size must be >= 1, got {n}")
    per_row = n * max(int(q), 1)
    return max(1, int(budget) // per_row)


@dataclasses.dataclass(frozen=True)
class BucketResult:
    """Output of phase 2 for a batch.

    ``bucketed`` is the ``(N, n)`` matrix after in-place write-back: row
    ``i`` holds array ``i``'s elements grouped by bucket, buckets in
    splitter order, original order preserved inside each bucket.
    ``sizes[i, j]`` is the population of bucket ``j`` (Definition 4's
    ``Z``), and ``offsets`` is the per-row exclusive scan of sizes with an
    end sentinel (shape ``(N, p + 1)``).
    """

    bucketed: np.ndarray
    sizes: np.ndarray
    offsets: np.ndarray

    @property
    def num_buckets(self) -> int:
        return self.sizes.shape[1]

    def max_bucket_size(self) -> int:
        """Largest bucket anywhere in the batch (load-balance metric)."""
        return int(self.sizes.max(initial=0))


def exclusive_scan(sizes: np.ndarray) -> np.ndarray:
    """Row-wise exclusive prefix sum with end sentinel.

    This is the parallel write-back enabler from Section 5.2: knowing all
    bucket sizes up front turns the "tedious sequential write back" into
    independent per-bucket writes.

    >>> exclusive_scan(np.array([[2, 0, 3]])).tolist()
    [[0, 2, 2, 5]]
    """
    sizes = np.asarray(sizes)
    if sizes.ndim != 2:
        raise ValueError(f"expected (N, p) sizes, got shape {sizes.shape}")
    out = np.zeros((sizes.shape[0], sizes.shape[1] + 1), dtype=np.int64)
    np.cumsum(sizes, axis=1, out=out[:, 1:])
    return out


def bucket_ids_for_row(row: np.ndarray, splitters: np.ndarray) -> np.ndarray:
    """Bucket index of each element of one array (half-open ranges).

    ``searchsorted(splitters, x, side='right')`` counts splitters <= x,
    which is exactly the bucket owning ``x`` under ``s_j <= x < s_{j+1}``.
    """
    return np.searchsorted(np.asarray(splitters), np.asarray(row), side="right")


#: Below this splitter count the O(n·q) boolean cube beats the
#: O(n·log q) batched binary search (lower constant, no gathers).
_CUBE_MAX_SPLITTERS = 8


def _batch_bucket_ids(
    batch: np.ndarray, splitters: np.ndarray, row_chunk: Optional[int] = None
) -> np.ndarray:
    """Vectorized bucket ids for the whole batch, chunked to bound memory.

    Strategy is chosen per call: for a handful of splitters the
    broadcast cube ``(rows, n, 1) >= (rows, 1, q)`` wins; beyond that the
    batched per-row binary search of
    :func:`repro.core.fused.bucket_ids_rows` is O(n·log q) per row
    instead of O(n·q).  ``row_chunk=None`` (the default) derives the
    chunk from :func:`adaptive_row_chunk`'s element budget instead of the
    old fixed 512 rows.
    """
    from .fused import bucket_ids_rows  # local: fused imports this module

    n_rows = batch.shape[0]
    q = splitters.shape[1]
    out = np.empty(batch.shape, dtype=np.int32)
    if q == 0:
        out[:] = 0
        return out
    if row_chunk is None:
        row_chunk = adaptive_row_chunk(batch.shape[1], q)
    use_cube = q <= _CUBE_MAX_SPLITTERS
    for start in range(0, n_rows, row_chunk):
        stop = min(start + row_chunk, n_rows)
        chunk = batch[start:stop]
        if use_cube:
            # sum over splitter axis of (x >= s) == count of splitters <= x
            # (for floats, >= and <= agree except on NaN, which we reject).
            out[start:stop] = (
                chunk[:, :, None] >= splitters[start:stop, None, :]
            ).sum(axis=2, dtype=np.int32)
        else:
            out[start:stop] = bucket_ids_rows(chunk, splitters[start:stop])
    return out


def bucketize(
    batch: np.ndarray,
    splitters: np.ndarray,
    config: SortConfig = DEFAULT_CONFIG,
    *,
    out: Optional[np.ndarray] = None,
    row_chunk: Optional[int] = None,
) -> BucketResult:
    """Run phase 2 on a batch given phase-1 splitters.

    When ``out`` is the batch itself the write-back is genuinely in place
    (the default engine passes the device-resident matrix here); otherwise
    a new matrix is produced.  ``row_chunk`` bounds the bucket-id scratch;
    the default ``None`` adapts it to :data:`BUCKETIZE_ELEMENT_BUDGET`
    (see :func:`adaptive_row_chunk`).

    NaNs are rejected: the splitter comparison network, like the hardware
    kernel's ``<`` comparisons, has no total order for NaN.  Infinities
    are allowed — padded ragged batches use +inf sentinels, which sort to
    the tail like any other value.
    """
    batch = np.asarray(batch)
    splitters = np.asarray(splitters)
    if batch.ndim != 2 or splitters.ndim != 2:
        raise ValueError("batch and splitters must both be 2-D")
    if batch.shape[0] != splitters.shape[0]:
        raise ValueError(
            f"row count mismatch: batch has {batch.shape[0]} arrays, "
            f"splitters {splitters.shape[0]}"
        )
    if batch.dtype.kind == "f" and np.isnan(batch).any():
        raise ValueError("batch contains NaN; no total order")

    p = splitters.shape[1] + 1
    ids = _batch_bucket_ids(batch, splitters, row_chunk)

    # Stable grouping by bucket id == per-thread in-order collection.
    order = np.argsort(ids, axis=1, kind="stable")
    bucketed = np.take_along_axis(batch, order, axis=1)

    # Definition 4's Z array: per-row bucket populations.
    sizes = np.zeros((batch.shape[0], p), dtype=np.int64)
    rows = np.repeat(np.arange(batch.shape[0]), batch.shape[1])
    np.add.at(sizes, (rows, ids.ravel()), 1)

    offsets = exclusive_scan(sizes)

    if out is None:
        out = bucketed
    else:
        if out.shape != batch.shape:
            raise ValueError("out must match batch shape")
        out[:] = bucketed
    return BucketResult(bucketed=out, sizes=sizes, offsets=offsets)
