"""Key-value batch sorting: sort one matrix, carry another alongside.

The paper's motivating pipelines need it immediately: a spectrum is a
set of (m/z, intensity) *pairs*, and downstream algorithms want the
pairs ordered "either with respect to intensities or mass to charge
ratios" (Section 1) — not the two views sorted independently.

GPU-ArraySort extends to pairs without touching the phase structure:

* phase 1 samples and picks splitters from the *key* matrix only;
* phase 2 buckets by key and moves the value alongside (one extra
  element move per element — on hardware, one extra coalesced store);
* phase 3 sorts each bucket by key, permuting the value with it.

Memory cost doubles (two matrices instead of one) but stays in place;
contrast with STA-for-pairs, which would need data + payload + tags +
radix scratch ~ 5-6x.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from .bucketing import BucketResult, _batch_bucket_ids, exclusive_scan
from .insertion import segment_base
from .config import DEFAULT_CONFIG, SortConfig
from .splitters import SplitterResult, select_splitters

__all__ = ["PairSortResult", "sort_pairs"]


@dataclasses.dataclass
class PairSortResult:
    """Output of a key-value batch sort."""

    keys: np.ndarray
    values: np.ndarray
    splitters: Optional[SplitterResult] = None
    buckets: Optional[BucketResult] = None


def sort_pairs(
    keys: np.ndarray,
    values: np.ndarray,
    *,
    config: SortConfig = DEFAULT_CONFIG,
    stable: bool = True,
    verify: bool = False,
) -> PairSortResult:
    """Sort every row of ``keys``, applying the same permutation to
    ``values``.

    ``stable=True`` preserves the original order of equal keys (the
    bucketing pass is inherently stable; the in-bucket sort uses a
    stable segmented lexsort keyed by (bucket, key, original position)).

    >>> import numpy as np
    >>> r = sort_pairs(np.array([[3., 1.]]), np.array([[30., 10.]]))
    >>> r.keys.tolist(), r.values.tolist()
    ([[1.0, 3.0]], [[10.0, 30.0]])
    """
    keys = np.asarray(keys)
    values = np.asarray(values)
    if keys.ndim != 2:
        raise ValueError(f"expected (N, n) keys, got shape {keys.shape}")
    if keys.shape != values.shape:
        raise ValueError(
            f"keys and values shapes differ: {keys.shape} vs {values.shape}"
        )
    if keys.shape[0] == 0:
        return PairSortResult(keys=keys.copy(), values=values.copy())
    if keys.dtype.kind == "f" and np.isnan(keys).any():
        raise ValueError("keys contain NaN; no total order")

    reference = (keys.copy(), values.copy()) if verify else None

    # Phase 1 on keys.
    spl = select_splitters(keys, config)

    # Phase 2: compute the stable bucket permutation once, apply to both.
    ids = _batch_bucket_ids(keys, spl.splitters)
    order = np.argsort(ids, axis=1, kind="stable")
    keys_b = np.take_along_axis(keys, order, axis=1)
    values_b = np.take_along_axis(values, order, axis=1)

    p = spl.splitters.shape[1] + 1
    sizes = np.zeros((keys.shape[0], p), dtype=np.int64)
    rows = np.repeat(np.arange(keys.shape[0]), keys.shape[1])
    np.add.at(sizes, (rows, ids.ravel()), 1)
    offsets = exclusive_scan(sizes)
    buckets = BucketResult(bucketed=keys_b, sizes=sizes, offsets=offsets)

    # Phase 3: segmented sort by (segment, key[, position]) — one lexsort
    # over the flattened batch, like repro.core.insertion.sort_buckets,
    # but carrying the value payload through the same permutation.
    n_rows, n = keys_b.shape
    starts = np.zeros((n_rows, n + 1), dtype=np.int64)
    row_idx = np.repeat(np.arange(n_rows, dtype=np.int64), p)
    np.add.at(starts, (row_idx, offsets[:, :-1].ravel()), 1)
    # int64 segment ids: n_rows * (p + 1) overflows int32 at scale (see
    # repro.core.insertion.segment_base).
    seg = np.cumsum(starts[:, :n], axis=1) + segment_base(n_rows, p)[:, None]

    flat_keys = keys_b.ravel()
    flat_vals = values_b.ravel()
    flat_seg = seg.ravel()
    if stable:
        # np.lexsort is stable, so (key, segment) keys suffice.
        perm = np.lexsort((flat_keys, flat_seg))
    else:
        perm = np.lexsort((flat_vals, flat_keys, flat_seg))
    out_keys = flat_keys[perm].reshape(n_rows, n)
    out_vals = flat_vals[perm].reshape(n_rows, n)

    if verify:
        ref_keys, ref_vals = reference
        assert np.all(np.diff(out_keys, axis=1) >= 0), "keys not sorted"
        # the (key, value) multiset per row must be preserved
        for i in range(n_rows):
            got = sorted(zip(out_keys[i].tolist(), out_vals[i].tolist()))
            want = sorted(zip(ref_keys[i].tolist(), ref_vals[i].tolist()))
            assert got == want, f"row {i}: pair multiset changed"

    return PairSortResult(
        keys=out_keys, values=out_vals, splitters=spl, buckets=buckets
    )
