"""Adaptive sampling — the paper's Section 9 multi-sampling plan.

The paper's future work: "Our design will involve the use of multiple
sampling techniques in accordance with the distribution of the dataset
under consideration."  Regular sampling (the published choice) assumes
value spread; skewed or duplicate-heavy data concentrates elements
between adjacent splitters and collapses the load balance phase 3
depends on.

This module implements that plan:

* three sampling strategies —
  ``regular`` (the paper's: fixed stride),
  ``random`` (uniform positions; robust to periodic structure),
  ``oversample`` (draw an s-times larger random sample, sort, take
  every s-th order statistic: tighter quantile estimates on skewed
  data, the classic sample-sort remedy);
* a cheap **skew probe** that estimates distribution shape from a tiny
  pilot sample (duplicate mass + quantile-gap dispersion);
* :func:`choose_strategy` mapping the probe to a strategy, and
  :class:`AdaptiveSampler` plugging the result into the phase-1 API.

The ablation bench measures what each strategy buys on each workload
family.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from .config import DEFAULT_CONFIG, SortConfig
from .splitters import SplitterResult, splitter_pick_indices

__all__ = [
    "SAMPLING_STRATEGIES",
    "SkewProbe",
    "probe_skew",
    "choose_strategy",
    "AdaptiveSampler",
    "select_splitters_adaptive",
]

SAMPLING_STRATEGIES = ("regular", "random", "oversample")

#: Oversampling factor for the "oversample" strategy.
OVERSAMPLE_FACTOR = 4

#: Pilot sample size for the skew probe, per row (tiny by design).
PROBE_SIZE = 64


@dataclasses.dataclass(frozen=True)
class SkewProbe:
    """Distribution-shape estimate from a pilot sample.

    ``duplicate_mass`` — fraction of pilot values that are duplicates of
    another pilot value (high -> few distinct values).
    ``gap_dispersion`` — coefficient of variation of the gaps between
    consecutive order statistics (high -> clustered/skewed values;
    ~uniform data gives exponential gaps with CV ~ 1).
    """

    duplicate_mass: float
    gap_dispersion: float

    @property
    def is_duplicate_heavy(self) -> bool:
        return self.duplicate_mass > 0.5

    @property
    def is_skewed(self) -> bool:
        return self.gap_dispersion > 2.5


def probe_skew(batch: np.ndarray, *, seed: Optional[int] = 0) -> SkewProbe:
    """Estimate distribution shape from a tiny random pilot sample."""
    batch = np.asarray(batch)
    if batch.ndim != 2 or batch.size == 0:
        raise ValueError("need a non-empty (N, n) batch")
    rng = np.random.default_rng(seed)
    N, n = batch.shape
    rows = rng.integers(0, N, min(PROBE_SIZE, N * n))
    cols = rng.integers(0, n, rows.size)
    pilot = np.sort(batch[rows, cols].astype(np.float64))
    if pilot.size < 2:
        return SkewProbe(duplicate_mass=0.0, gap_dispersion=0.0)
    dup = 1.0 - np.unique(pilot).size / pilot.size
    gaps = np.diff(pilot)
    mean_gap = gaps.mean()
    dispersion = float(gaps.std() / mean_gap) if mean_gap > 0 else float("inf")
    return SkewProbe(duplicate_mass=float(dup), gap_dispersion=dispersion)


def choose_strategy(probe: SkewProbe) -> str:
    """Map a skew probe to a sampling strategy.

    * duplicate-heavy data: regular sampling is fine — no splitter set
      can balance it, and oversampling only costs more (the half-open
      ranges already handle the ties);
    * skewed/clustered data: oversample for tighter quantile estimates;
    * otherwise: the paper's regular sampling.
    """
    if probe.is_duplicate_heavy:
        return "regular"
    if probe.is_skewed:
        return "oversample"
    return "regular"


class AdaptiveSampler:
    """Phase-1 splitter selection with a pluggable sampling strategy."""

    def __init__(
        self,
        strategy: str = "auto",
        *,
        config: SortConfig = DEFAULT_CONFIG,
        seed: Optional[int] = 0,
    ) -> None:
        if strategy != "auto" and strategy not in SAMPLING_STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; choose 'auto' or one of "
                f"{SAMPLING_STRATEGIES}"
            )
        self.strategy = strategy
        self.config = config
        self.seed = seed

    def resolve_strategy(self, batch: np.ndarray) -> str:
        if self.strategy != "auto":
            return self.strategy
        return choose_strategy(probe_skew(batch, seed=self.seed))

    def select(self, batch: np.ndarray) -> SplitterResult:
        return select_splitters_adaptive(
            batch,
            strategy=self.resolve_strategy(batch),
            config=self.config,
            seed=self.seed,
        )


def select_splitters_adaptive(
    batch: np.ndarray,
    *,
    strategy: str = "regular",
    config: SortConfig = DEFAULT_CONFIG,
    seed: Optional[int] = 0,
) -> SplitterResult:
    """Phase 1 with the chosen sampling strategy.

    All strategies return the same shape of result as
    :func:`repro.core.splitters.select_splitters`, so phases 2-3 are
    strategy-agnostic.
    """
    batch = np.asarray(batch)
    if batch.ndim != 2:
        raise ValueError(f"expected (N, n) batch, got shape {batch.shape}")
    n = batch.shape[1]
    if n == 0:
        raise ValueError("arrays must have at least one element")
    p = config.num_buckets(n)

    if strategy == "regular":
        from .splitters import select_splitters

        return select_splitters(batch, config)

    rng = np.random.default_rng(seed)
    base_size = config.sample_size(n)
    if strategy == "random":
        cols = rng.integers(0, n, size=base_size)
        samples = batch[:, cols]
    elif strategy == "oversample":
        size = min(n, base_size * OVERSAMPLE_FACTOR)
        cols = rng.integers(0, n, size=size)
        samples = batch[:, cols]
    else:
        raise ValueError(f"unknown strategy {strategy!r}")

    samples_sorted = np.sort(samples, axis=1, kind="stable")
    picks = splitter_pick_indices(samples_sorted.shape[1], p)
    splitters = samples_sorted[:, picks]
    return SplitterResult(
        splitters=np.ascontiguousarray(splitters),
        samples_sorted=samples_sorted,
        num_buckets=p,
    )
