"""Dynamic batching core: queues, lanes, and dispatch decisions.

The batcher is the piece that turns many small concurrent requests into
the large batches GPU-ArraySort is actually good at — the paper's whole
advantage over STA is amortizing fixed per-launch cost across thousands
of arrays, so a serving front-end that sorts each request alone throws
that advantage away.

Requests are grouped into **lanes** keyed by ``(row_len, dtype)``: only
same-shape arrays can share one ``(N, n)`` batch.  Within a lane the
dispatch order is **EDF-over-WFQ**: earliest deadline first, then
priority, then the request's **weighted-fair-queuing virtual finish
time**, then arrival.  The WFQ layer is start-time fair queuing over
tenants — at admission a request is stamped

* ``vstart  = max(global virtual time, tenant's last vfinish)``
* ``vfinish = vstart + rows / tenant weight``

and the global virtual time advances to the largest ``vstart`` actually
dispatched.  A tenant that floods the queue accumulates ever-later
finish tags, so its backlog sorts *behind* every other tenant's fresh
requests instead of starving them; an idle tenant earns no unbounded
credit because its next ``vstart`` is floored at the current virtual
time.  Deadlines and priorities still dominate (the EDF layer is
unchanged) — fairness arbitrates only among requests of equal urgency,
which is exactly the flooding-tenant case (no deadline, default
priority).

A lane becomes *ready* when either

* its queued rows reach the batch size target (fed by the planner's
  preferred shape class — see
  :func:`repro.service.service.derive_batch_target`), or
* its oldest request has lingered past ``linger_s`` (bounded latency for
  trickle traffic), or
* the service is draining (flush/close).

This module is deliberately free of clocks and futures: every method
takes ``now`` explicitly, so the whole decision surface is unit testable
with a synthetic clock.  :class:`~repro.service.SortService` owns the
worker thread and the real clock, and serializes *compound* decisions
(ready? → pop → dispatch) under its own lock; the batcher additionally
guards its queue state with an internal lock so each individual
operation is safe even for callers outside the service lock
(defense-in-depth — the service lock remains what makes multi-call
sequences atomic).
"""

from __future__ import annotations

import dataclasses
import math
import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..statan import runtime as _sanitizer

__all__ = ["QueuedRequest", "Lane", "DynamicBatcher"]


@dataclasses.dataclass
class QueuedRequest:
    """One caller request waiting for (or riding in) a batch."""

    #: Monotonic admission sequence number — the FIFO tiebreaker.
    seq: int
    #: The caller's ``(rows, row_len)`` arrays (not copied at submit;
    #: callers must not mutate them until the future resolves).
    arrays: np.ndarray
    #: Absolute deadline on the service clock, or ``None`` for "whenever".
    deadline: Optional[float]
    #: Smaller = more urgent; tiebreaker between equal deadlines.
    priority: int
    #: Service-clock time the request was admitted.
    enqueued_at: float
    #: ``concurrent.futures.Future`` the caller holds (``object`` here to
    #: keep this module future-agnostic).
    future: object
    #: Copy the demuxed result out of the batch (True) or hand a
    #: zero-copy view valid until the next dispatch (False).
    copy: bool = True
    #: Submitted as a single 1-D array; the demuxed result unwraps to 1-D.
    single: bool = False
    #: Owning tenant (QoS accounting and WFQ fairness).
    tenant: str = "default"
    #: WFQ virtual start tag, stamped by :meth:`DynamicBatcher.add`.
    vstart: float = 0.0
    #: WFQ virtual finish tag (``vstart + rows / weight``).
    vfinish: float = 0.0

    @property
    def rows(self) -> int:
        return int(self.arrays.shape[0])

    def edf_key(self) -> Tuple[float, int, float, int]:
        """Dispatch ordering: deadline, priority, WFQ finish tag, arrival."""
        deadline = self.deadline if self.deadline is not None else math.inf
        return (deadline, self.priority, self.vfinish, self.seq)


class Lane:
    """All queued requests sharing one ``(row_len, dtype)`` batch shape."""

    def __init__(self, key: Tuple[int, str]) -> None:
        self.key = key
        #: Arrival order is preserved; EDF ordering is applied at pop time.
        self.requests: List[QueuedRequest] = []

    @property
    def rows(self) -> int:
        return sum(r.rows for r in self.requests)

    @property
    def oldest_enqueued_at(self) -> float:
        """Admission time of the longest-waiting request (lane non-empty)."""
        return self.requests[0].enqueued_at

    def earliest_deadline(self) -> float:
        """The lane's most urgent deadline (``inf`` when none set)."""
        return min(
            (r.deadline for r in self.requests if r.deadline is not None),
            default=math.inf,
        )

    def earliest_vfinish(self) -> float:
        """The lane's smallest WFQ finish tag (``inf`` when empty)."""
        return min((r.vfinish for r in self.requests), default=math.inf)


@_sanitizer.sanitize_guarded
class DynamicBatcher:
    """Lane bookkeeping + the ready/shed/pop decision logic.

    Parameters
    ----------
    target_rows:
        Rows that make a lane ready immediately — the planner-preferred
        batch size the service derives at construction.
    max_batch_rows:
        Hard cap on rows per dispatched batch (a burst above the target
        is split across batches instead of growing without bound).  A
        single request larger than the cap still dispatches, alone.
    linger_s:
        Longest a request may wait for co-batching before its lane is
        dispatched below target.
    tenant_weights:
        WFQ weight per tenant name; a tenant with weight 2 earns rows
        through the queue twice as fast as a weight-1 tenant under
        contention.  Unlisted tenants get ``default_tenant_weight``.
    default_tenant_weight:
        Weight for tenants absent from ``tenant_weights`` (default 1.0).
    """

    def __init__(
        self,
        *,
        target_rows: int,
        max_batch_rows: int,
        linger_s: float,
        tenant_weights: Optional[Dict[str, float]] = None,
        default_tenant_weight: float = 1.0,
    ) -> None:
        if target_rows < 1:
            raise ValueError(f"target_rows must be >= 1, got {target_rows}")
        if max_batch_rows < target_rows:
            raise ValueError(
                f"max_batch_rows ({max_batch_rows}) must be >= "
                f"target_rows ({target_rows})"
            )
        if linger_s < 0:
            raise ValueError(f"linger_s must be >= 0, got {linger_s}")
        if default_tenant_weight <= 0:
            raise ValueError(
                f"default_tenant_weight must be > 0, got {default_tenant_weight}"
            )
        weights = dict(tenant_weights or {})
        for tenant, weight in weights.items():
            if weight <= 0:
                raise ValueError(
                    f"tenant weight must be > 0, got {weight} for {tenant!r}"
                )
        self.target_rows = int(target_rows)
        self.max_batch_rows = int(max_batch_rows)
        self.linger_s = float(linger_s)
        self.tenant_weights: Dict[str, float] = weights
        self.default_tenant_weight = float(default_tenant_weight)
        self._lock = _sanitizer.make_lock("DynamicBatcher._lock")
        self._lanes: Dict[Tuple[int, str], Lane] = {}  # guarded-by: _lock
        self.total_rows = 0  # guarded-by: _lock
        self.total_requests = 0  # guarded-by: _lock
        #: WFQ global virtual time — the largest vstart dispatched so far.
        self._vtime = 0.0  # guarded-by: _lock
        self._tenant_vfinish: Dict[str, float] = {}  # guarded-by: _lock
        self._tenant_rows: Dict[str, int] = {}  # guarded-by: _lock
        self._tenant_requests: Dict[str, int] = {}  # guarded-by: _lock

    # -- queue maintenance -------------------------------------------------
    @staticmethod
    def lane_key(arrays: np.ndarray) -> Tuple[int, str]:
        return (int(arrays.shape[1]), np.dtype(arrays.dtype).str)

    def tenant_weight(self, tenant: str) -> float:
        """The WFQ weight used for ``tenant``'s requests."""
        return self.tenant_weights.get(tenant, self.default_tenant_weight)

    def tenant_queue_rows(self, tenant: str) -> int:
        """Rows ``tenant`` currently has queued (admission accounting)."""
        with self._lock:
            return self._tenant_rows.get(tenant, 0)

    def tenant_queue_requests(self, tenant: str) -> int:
        """Requests ``tenant`` currently has queued."""
        with self._lock:
            return self._tenant_requests.get(tenant, 0)

    def tenant_backlog(self) -> Dict[str, int]:
        """Snapshot of queued rows per tenant (metrics export)."""
        with self._lock:
            return {t: r for t, r in self._tenant_rows.items() if r > 0}

    def _forget_locked(self, request: QueuedRequest) -> None:
        """Drop one request from the aggregate and per-tenant tallies."""
        self.total_rows -= request.rows
        self.total_requests -= 1
        tenant = request.tenant
        self._tenant_rows[tenant] = self._tenant_rows.get(tenant, 0) - request.rows
        self._tenant_requests[tenant] = self._tenant_requests.get(tenant, 0) - 1

    def _gc_tenants_locked(self) -> None:
        """Forget WFQ state of tenants that are idle and fully caught up.

        Long-running services see tenants come and go; an entry whose
        finish tag is already behind the virtual clock carries no
        information (``vstart`` would be floored at ``_vtime`` anyway),
        so dropping it keeps the dicts bounded by *active* tenants.
        """
        for tenant in list(self._tenant_vfinish):
            if (
                self._tenant_rows.get(tenant, 0) <= 0
                and self._tenant_vfinish[tenant] <= self._vtime
            ):
                del self._tenant_vfinish[tenant]
                self._tenant_rows.pop(tenant, None)
                self._tenant_requests.pop(tenant, None)

    def add(self, request: QueuedRequest) -> None:
        key = self.lane_key(request.arrays)
        tenant = request.tenant
        weight = self.tenant_weight(tenant)
        with self._lock:
            # Start-time fair queuing: the start tag is floored at the
            # global virtual time so an idle tenant cannot bank credit.
            request.vstart = max(self._vtime, self._tenant_vfinish.get(tenant, 0.0))
            request.vfinish = request.vstart + request.rows / weight
            self._tenant_vfinish[tenant] = request.vfinish
            self._tenant_rows[tenant] = (
                self._tenant_rows.get(tenant, 0) + request.rows
            )
            self._tenant_requests[tenant] = (
                self._tenant_requests.get(tenant, 0) + 1
            )
            lane = self._lanes.get(key)
            if lane is None:
                lane = self._lanes[key] = Lane(key)
            lane.requests.append(request)
            self.total_rows += request.rows
            self.total_requests += 1

    def drop_all(self) -> List[QueuedRequest]:
        """Remove and return every queued request (close without drain)."""
        with self._lock:
            dropped = [
                r for lane in self._lanes.values() for r in lane.requests
            ]
            self._lanes.clear()
            self.total_rows = 0
            self.total_requests = 0
            self._tenant_rows.clear()
            self._tenant_requests.clear()
            self._gc_tenants_locked()
            return dropped

    def shed_expired(self, now: float) -> List[QueuedRequest]:
        """Remove and return queued requests whose deadline has passed.

        Shedding happens *before* dispatch: a request that can no longer
        meet its deadline must not occupy batch capacity, and must fail
        with a typed error rather than be delivered late.
        """
        shed: List[QueuedRequest] = []
        with self._lock:
            for key in list(self._lanes):
                lane = self._lanes[key]
                keep: List[QueuedRequest] = []
                for request in lane.requests:
                    if request.deadline is not None and request.deadline < now:
                        shed.append(request)
                        self._forget_locked(request)
                    else:
                        keep.append(request)
                if keep:
                    lane.requests = keep
                else:
                    del self._lanes[key]
        return shed

    # -- dispatch decisions ------------------------------------------------
    def _lane_ready(self, lane: Lane, now: float, *, drain: bool) -> bool:
        if not lane.requests:
            return False
        if drain:
            return True
        if lane.rows >= self.target_rows:
            return True
        return now - lane.oldest_enqueued_at >= self.linger_s

    def ready_lane(self, now: float, *, drain: bool = False) -> Optional[Lane]:
        """The ready lane with the most urgent deadline (EDF across lanes).

        Ties (no deadlines anywhere) fall to the lane holding the
        smallest WFQ finish tag — cross-lane fairness — then to the
        longest-waiting lane.
        """
        with self._lock:
            ready = [
                lane
                for lane in self._lanes.values()
                if self._lane_ready(lane, now, drain=drain)
            ]
        if not ready:
            return None
        return min(
            ready,
            key=lambda lane: (
                lane.earliest_deadline(),
                lane.earliest_vfinish(),
                lane.oldest_enqueued_at,
            ),
        )

    def next_event_at(self, now: float) -> Optional[float]:
        """Earliest time a waiting lane becomes ready or a deadline expires.

        ``None`` when the queue is empty.  The service sleeps until this
        moment (or the next submit wakes it).
        """
        event = math.inf
        with self._lock:
            for lane in self._lanes.values():
                if not lane.requests:
                    continue
                event = min(event, lane.oldest_enqueued_at + self.linger_s)
                deadline = lane.earliest_deadline()
                if deadline is not math.inf:
                    event = min(event, deadline)
        return None if event is math.inf else event

    def pop_batch(self, lane: Lane, now: float) -> List[QueuedRequest]:
        """Remove and return the lane's next batch, EDF/WFQ-ordered.

        Takes the most urgent requests first (deadline, then priority,
        then WFQ finish tag), stopping before the batch would exceed
        ``max_batch_rows`` — except that the first request always rides
        (an oversized request dispatches alone rather than starving).
        The remaining requests keep their arrival order.  The WFQ
        virtual clock advances to the latest start tag dispatched, so
        tenants submitting *after* this batch compete from the present,
        not from the flooding tenant's backlog past.
        """
        with self._lock:
            ordered = sorted(lane.requests, key=QueuedRequest.edf_key)
            taken: List[QueuedRequest] = []
            rows = 0
            for request in ordered:
                if taken and rows + request.rows > self.max_batch_rows:
                    break
                taken.append(request)
                rows += request.rows
            taken_ids = {id(r) for r in taken}
            lane.requests = [r for r in lane.requests if id(r) not in taken_ids]
            if not lane.requests:
                del self._lanes[lane.key]
            for request in taken:
                self._forget_locked(request)
                if request.vstart > self._vtime:
                    self._vtime = request.vstart
            self._gc_tenants_locked()
            return taken
