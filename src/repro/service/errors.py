"""Typed failure vocabulary of the sort service.

Every way a :class:`~repro.service.SortService` declines or abandons a
request is a distinct exception type, so callers can branch on *what
happened* instead of parsing messages — and so the acceptance contract
("shed requests fail with typed errors, never with wrong data") is
enforceable in tests by type alone.

The hierarchy:

* :class:`ServiceError` — base for everything the service raises/sets.
* :class:`RejectedError` — admission control said no *at submit time*
  (queue full); carries ``retry_after`` seconds, the backpressure signal
  a well-behaved client sleeps before resubmitting.
* :class:`DeadlineExceededError` — the request's deadline passed before
  its result could be delivered (shed in the queue, or finished too
  late); the data is discarded, never returned stale.
* :class:`QuarantinedError` — the resilient backend gave up on one or
  more of the request's rows; the row indices and reasons ride along.
* :class:`ServiceClosedError` — submitted to (or pending inside) a
  service that has shut down.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

__all__ = [
    "ServiceError",
    "RejectedError",
    "DeadlineExceededError",
    "QuarantinedError",
    "ServiceClosedError",
]


class ServiceError(Exception):
    """Base class for every sort-service failure."""


class RejectedError(ServiceError):
    """Admission control refused the request.

    ``retry_after`` is the service's backpressure hint in seconds —
    roughly how long the current backlog needs to drain at the observed
    throughput, plus a bounded random jitter so a fleet of rejected
    clients does not resubmit in a synchronized stampede.  It is an
    estimate, not a promise.  ``reason`` distinguishes the shared queue
    filling up (``"queue-full"``) from the caller's own tenant hitting
    its quota (``"tenant-quota"`` — the multi-tenant isolation signal:
    other tenants are still being admitted).  ``tenant`` names the
    tenant whose request was refused.
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after: float,
        tenant: Optional[str] = None,
        reason: str = "queue-full",
    ) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)
        self.tenant = tenant
        self.reason = str(reason)


class DeadlineExceededError(ServiceError):
    """The request's deadline passed before its result was delivered.

    ``waited`` records how long the request sat in the service (seconds)
    when it was shed; ``stage`` is ``"queued"`` (shed before dispatch)
    or ``"sorted"`` (the batch finished, but past the deadline — the
    result is discarded rather than delivered stale).
    """

    def __init__(self, message: str, *, waited: float, stage: str = "queued") -> None:
        super().__init__(message)
        self.waited = float(waited)
        self.stage = stage


class QuarantinedError(ServiceError):
    """The resilient backend quarantined rows belonging to this request.

    ``rows`` are request-relative row indices; ``reasons`` maps each to
    the backend's quarantine reason.  The request fails atomically —
    partially sorted results are never demultiplexed back to a caller.
    ``tenant`` names the owning tenant: a quarantined row fails *only*
    that tenant's request, never a co-batched neighbour's (the isolation
    contract ``make chaos-gate`` asserts under injected faults).
    """

    def __init__(
        self,
        message: str,
        *,
        rows: Sequence[int],
        reasons: Dict[int, str],
        tenant: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.rows = tuple(int(r) for r in rows)
        self.reasons = dict(reasons)
        self.tenant = tenant


class ServiceClosedError(ServiceError):
    """The service is shut down (or shutting down without draining)."""
