"""Live chaos harness: SLOs measured under injected faults.

The resilience layer proves the *sorter* survives faults; this module
proves the *service* keeps its promises while faults are landing and
multiple tenants are contending.  A :class:`ChaosScenario` describes a
tenant mix (one tenant may poison a fraction of its requests with NaN
rows) plus a deterministic :class:`~repro.gpusim.faults.FaultPlan`
(transient kernel faults, OOM-pressure windows, ECC-style corruption),
and :func:`run_scenario` replays it in up to three phases against fresh
:class:`~repro.service.SortService` instances backed by a
:class:`~repro.resilience.ResilientSorter`:

* **baseline** — the exact tenant mix, no fault plan: the fault-free
  SLO reference;
* **faulted** — the *identical* mix with the fault plan attached, so
  the only variable between the two phases is the injected faults;
* **flood** — one extra quota-bounded tenant offering far more load
  than its fair share, probing whether admission quotas plus the
  batcher's WFQ layer keep the innocents' rejection rate bounded.

Everything is seeded — the traffic (per-tenant derived seeds), the
fault schedule (counter-based RNG), and the retry jitter — so a
scenario replays the same trajectory; only wall-clock-dependent numbers
(latencies, throughput) vary run to run.  :func:`evaluate_slos` turns a
:class:`ChaosReport` into the three gate verdicts ``make chaos-gate``
asserts:

1. **isolation** — quarantined rows fail only the poisoning tenant's
   requests (zero :class:`~repro.service.errors.QuarantinedError`
   among other tenants);
2. **latency** — faulted p99 stays within ``p99_budget_factor`` (default
   2×) of the fault-free p99, over the non-poison tenants;
3. **fairness** — no innocent tenant's server-side rejection rate
   exceeds ``max_rejection_rate`` (default 5 %) while the flooder runs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.config import SortConfig
from ..gpusim.faults import FaultPlan
from .metrics import collect_metrics
from .service import SortService, TenantQuota
from .stats import TenantStats
from .traffic import TenantLoad, TrafficReport, run_multi_tenant_traffic

__all__ = [
    "ChaosReport",
    "ChaosScenario",
    "ChaosTenant",
    "PhaseResult",
    "evaluate_slos",
    "run_scenario",
]

#: Default faulted-vs-baseline p99 budget (gate condition b).
DEFAULT_P99_BUDGET_FACTOR = 2.0
#: Default ceiling on an innocent tenant's rejection rate under flood
#: (gate condition c).
DEFAULT_MAX_REJECTION_RATE = 0.05


@dataclasses.dataclass(frozen=True)
class ChaosTenant:
    """One tenant in a chaos scenario: QoS config plus offered load.

    ``weight`` feeds the batcher's WFQ layer; ``quota_rows`` /
    ``quota_requests`` become the tenant's :class:`TenantQuota` (``None``
    = bounded only by the shared queue).  The remaining fields shape the
    tenant's open-loop traffic; ``poison_nan_rate > 0`` marks the tenant
    whose requests carry NaN rows — the blast-radius probe.
    """

    name: str
    weight: float = 1.0
    quota_rows: Optional[int] = None
    quota_requests: Optional[int] = None
    clients: int = 2
    total_requests: int = 200
    rate_rps: float = 400.0
    size_mix: Tuple[Tuple[int, float], ...] = ((1, 0.6), (4, 0.3), (16, 0.1))
    deadline_s: Optional[float] = None
    poison_nan_rate: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")

    def load(self) -> TenantLoad:
        """The offered-load half, as the traffic driver consumes it."""
        return TenantLoad(
            name=self.name,
            clients=self.clients,
            total_requests=self.total_requests,
            rate_rps=self.rate_rps,
            size_mix=self.size_mix,
            deadline_s=self.deadline_s,
            poison_nan_rate=self.poison_nan_rate,
        )


@dataclasses.dataclass(frozen=True)
class ChaosScenario:
    """A reproducible chaos experiment: tenant mix + fault schedule.

    ``tenants`` run in both the baseline and the faulted phase (the mix
    must be identical for the p99 comparison to mean anything, so the
    poison tenant — if any — runs in *both*).  ``flood_tenant``, when
    set, joins the mix for a third phase probing admission fairness.
    The ``fault_*`` fields construct the faulted phase's
    :class:`FaultPlan`; the service knobs size the shared queue and the
    batcher so a scenario can model a loaded cell deterministically.
    """

    name: str
    tenants: Tuple[ChaosTenant, ...]
    flood_tenant: Optional[ChaosTenant] = None
    # fault schedule (the faulted phase's FaultPlan)
    fault_seed: int = 0
    kernel_fault_rate: float = 0.0
    oom_windows: Tuple[Tuple[int, int], ...] = ()
    corruption_rate: float = 0.0
    # service knobs
    batch_target_rows: int = 128
    linger_ms: float = 1.0
    max_queue_rows: Optional[int] = None
    # traffic knobs
    array_size: int = 128
    dtype: str = "float32"
    seed: int = 0
    result_timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("scenario needs at least one tenant")
        names = [t.name for t in self.tenants]
        if self.flood_tenant is not None:
            names.append(self.flood_tenant.name)
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")

    @property
    def poison_tenants(self) -> Tuple[str, ...]:
        """Names of tenants that poison their own requests."""
        return tuple(
            t.name for t in self.tenants if t.poison_nan_rate > 0.0
        )

    def fault_plan(self) -> FaultPlan:
        """A fresh (rewound) :class:`FaultPlan` for the faulted phase."""
        return FaultPlan(
            self.fault_seed,
            kernel_fault_rate=self.kernel_fault_rate,
            oom_windows=self.oom_windows,
            corruption_rate=self.corruption_rate,
        )


@dataclasses.dataclass
class PhaseResult:
    """One phase's client-side and server-side view, plus metrics."""

    name: str
    traffic: Dict[str, TrafficReport]
    tenants: Dict[str, TenantStats]
    metrics: Dict[str, object]

    def p99_ms(self, exclude: Tuple[str, ...] = ()) -> Optional[float]:
        """Combined p99 over the raw latencies of non-excluded tenants.

        Pooling the raw samples (rather than averaging per-tenant p99s)
        keeps the statistic honest when tenants complete different
        request counts.  ``None`` when no samples survive the exclusion.
        """
        samples: List[float] = []
        for name, report in self.traffic.items():
            if name in exclude:
                continue
            samples.extend(report.latencies_ms)
        if not samples:
            return None
        return float(np.percentile(np.asarray(samples, dtype=np.float64), 99.0))

    def quarantined_outside(self, poison: Tuple[str, ...]) -> int:
        """Requests failed by quarantine in tenants that never poisoned."""
        return sum(
            report.quarantined
            for name, report in self.traffic.items()
            if name not in poison
        )

    def rejection_rates(self, exclude: Tuple[str, ...] = ()) -> Dict[str, float]:
        """Server-side rejection rate per non-excluded tenant."""
        return {
            name: stats.rejection_rate
            for name, stats in self.tenants.items()
            if name not in exclude
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "traffic": {
                name: report.as_dict()
                for name, report in sorted(self.traffic.items())
            },
            "tenants": {
                name: stats.as_dict()
                for name, stats in sorted(self.tenants.items())
            },
            "metrics": self.metrics,
        }


@dataclasses.dataclass
class ChaosReport:
    """Outcome of :func:`run_scenario`: up to three phases, one scenario."""

    scenario_name: str
    poison_tenants: Tuple[str, ...]
    flood_tenant: Optional[str]
    baseline: PhaseResult
    faulted: PhaseResult
    flood: Optional[PhaseResult] = None

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "scenario": self.scenario_name,
            "poison_tenants": list(self.poison_tenants),
            "flood_tenant": self.flood_tenant,
            "baseline": self.baseline.as_dict(),
            "faulted": self.faulted.as_dict(),
        }
        if self.flood is not None:
            payload["flood"] = self.flood.as_dict()
        return payload


def _build_service(scenario: ChaosScenario, tenants: Tuple[ChaosTenant, ...],
                   fault_plan: Optional[FaultPlan]) -> SortService:
    """A fresh service wired for one phase.

    Always the resilient backend — baseline and faulted phases must run
    the *same* code path (verify-after-sort and all), with the fault
    plan as the only difference.  ``sleep=None`` disables real backoff
    waiting; the retry schedule is still recorded in the stats.
    """
    from ..resilience import ResilientSorter  # local: heavy import

    backend = ResilientSorter(
        SortConfig(), fault_plan=fault_plan, sleep=None
    )
    quotas: Dict[str, TenantQuota] = {}
    weights: Dict[str, float] = {}
    for tenant in tenants:
        weights[tenant.name] = tenant.weight
        if tenant.quota_rows is not None or tenant.quota_requests is not None:
            quotas[tenant.name] = TenantQuota(
                max_queued_rows=tenant.quota_rows,
                max_queued_requests=tenant.quota_requests,
            )
    return SortService(
        backend=backend,
        batch_target_rows=scenario.batch_target_rows,
        linger_ms=scenario.linger_ms,
        max_queue_rows=scenario.max_queue_rows,
        tenant_quotas=quotas or None,
        tenant_weights=weights,
        retry_jitter_seed=scenario.seed,
    )


def _run_phase(scenario: ChaosScenario, phase_name: str,
               tenants: Tuple[ChaosTenant, ...],
               fault_plan: Optional[FaultPlan]) -> PhaseResult:
    service = _build_service(scenario, tenants, fault_plan)
    try:
        traffic = run_multi_tenant_traffic(
            service,
            [tenant.load() for tenant in tenants],
            mode="open",
            array_size=scenario.array_size,
            dtype=scenario.dtype,
            seed=scenario.seed,
            result_timeout_s=scenario.result_timeout_s,
        )
        metrics = collect_metrics(service)
        tenant_stats = service.stats().tenants
    finally:
        service.close()
    return PhaseResult(
        name=phase_name,
        traffic=traffic,
        tenants=tenant_stats,
        metrics=metrics,
    )


def run_scenario(scenario: ChaosScenario) -> ChaosReport:
    """Replay one chaos scenario: baseline, faulted, and optional flood.

    Each phase gets a *fresh* service (fresh queue, stats, WFQ state),
    so phase comparisons are apples to apples.  The baseline and faulted
    phases drive the identical tenant mix; the flood phase adds
    ``scenario.flood_tenant`` with no fault plan, isolating the
    admission-fairness question from the fault-latency question.
    """
    baseline = _run_phase(scenario, "baseline", scenario.tenants, None)
    faulted = _run_phase(
        scenario, "faulted", scenario.tenants, scenario.fault_plan()
    )
    flood = None
    if scenario.flood_tenant is not None:
        flood = _run_phase(
            scenario,
            "flood",
            scenario.tenants + (scenario.flood_tenant,),
            None,
        )
    return ChaosReport(
        scenario_name=scenario.name,
        poison_tenants=scenario.poison_tenants,
        flood_tenant=(
            scenario.flood_tenant.name
            if scenario.flood_tenant is not None
            else None
        ),
        baseline=baseline,
        faulted=faulted,
        flood=flood,
    )


def evaluate_slos(
    report: ChaosReport,
    *,
    p99_budget_factor: float = DEFAULT_P99_BUDGET_FACTOR,
    max_rejection_rate: float = DEFAULT_MAX_REJECTION_RATE,
) -> Dict[str, object]:
    """The three chaos-gate verdicts, with the numbers behind them.

    Returns a JSON-ready dict: ``isolation_ok`` (zero cross-tenant
    quarantine failures, baseline *and* faulted), ``latency_ok``
    (faulted p99 ≤ ``p99_budget_factor`` × baseline p99 over non-poison
    tenants), ``fairness_ok`` (no innocent tenant's rejection rate above
    ``max_rejection_rate`` during the flood phase; vacuously true when
    the scenario had no flooder), and ``ok`` — the conjunction.
    """
    poison = report.poison_tenants
    cross = (
        report.baseline.quarantined_outside(poison)
        + report.faulted.quarantined_outside(poison)
    )
    isolation_ok = cross == 0

    baseline_p99 = report.baseline.p99_ms(exclude=poison)
    faulted_p99 = report.faulted.p99_ms(exclude=poison)
    if baseline_p99 is None or faulted_p99 is None or baseline_p99 <= 0:
        p99_ratio = None
        latency_ok = False
    else:
        p99_ratio = faulted_p99 / baseline_p99
        latency_ok = p99_ratio <= p99_budget_factor

    innocent_rates: Dict[str, float] = {}
    fairness_ok = True
    if report.flood is not None and report.flood_tenant is not None:
        innocent_rates = report.flood.rejection_rates(
            exclude=(report.flood_tenant,) + poison
        )
        fairness_ok = all(
            rate <= max_rejection_rate for rate in innocent_rates.values()
        )

    return {
        "cross_tenant_quarantines": cross,
        "isolation_ok": isolation_ok,
        "baseline_p99_ms": baseline_p99,
        "faulted_p99_ms": faulted_p99,
        "p99_ratio": p99_ratio,
        "p99_budget_factor": p99_budget_factor,
        "latency_ok": latency_ok,
        "innocent_rejection_rates": innocent_rates,
        "max_rejection_rate": max_rejection_rate,
        "fairness_ok": fairness_ok,
        "ok": isolation_ok and latency_ok and fairness_ok,
    }
