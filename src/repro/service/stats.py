"""Observability surface of the sort service.

:class:`ServiceStats` is an immutable snapshot — counters, queue depth,
the batch-occupancy histogram, and request-latency percentiles — taken
under the service lock by :meth:`repro.service.SortService.stats`.  The
mutable accumulation lives in :class:`StatsRecorder`, which the service
owns and updates on the submit/dispatch/complete path.

Latency percentiles are computed over a bounded ring of the most recent
completed-request latencies (default 4096), so a long-running service
reports *current* behaviour rather than a lifetime average diluted by
warm-up.  Occupancy is histogrammed in power-of-two buckets of rows per
dispatched batch — the natural axis, since the planner's shape classes
quantize ``log2(N)`` the same way.

Every counter is additionally kept **per tenant** (admission, rejection,
shedding, completion, quarantine, and a smaller per-tenant latency
ring), so the multi-tenant QoS story is observable: a flooding tenant's
rejections and a quarantined tenant's failures show up under *that*
tenant's name, and :mod:`repro.service.metrics` can export the whole
surface as scrape-ready snapshots.
"""

from __future__ import annotations

import dataclasses
import math
import threading
from typing import Dict, List, Optional

import numpy as np

from ..statan import runtime as _sanitizer

__all__ = ["ServiceStats", "StatsRecorder", "TenantStats"]


def _occupancy_bucket(rows: int) -> str:
    """Power-of-two histogram label for a batch of ``rows`` rows."""
    if rows <= 0:
        return "[0,1)"
    lo = 1 << int(math.floor(math.log2(rows)))
    return f"[{lo},{lo * 2})"


def _percentiles(latencies_ms: List[float]) -> Dict[str, float]:
    """p50/p95/p99/mean/max over a latency window (empty dict if none)."""
    if not latencies_ms:
        return {}
    window = np.asarray(latencies_ms, dtype=np.float64)
    p50, p95, p99 = np.percentile(window, [50.0, 95.0, 99.0])
    return {
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
        "mean": float(window.mean()),
        "max": float(window.max()),
    }


@dataclasses.dataclass(frozen=True)
class TenantStats:
    """One tenant's slice of the serving counters.

    ``admitted`` counts requests accepted at submit time (the per-tenant
    analogue of ``submitted``); ``rejected`` splits into queue-full and
    tenant-quota refusals via ``rejected_quota``.  ``latency_ms`` holds
    percentiles over the tenant's own bounded recent window.
    """

    tenant: str
    admitted: int = 0
    rows_admitted: int = 0
    rejected: int = 0
    rejected_quota: int = 0
    shed: int = 0
    deadline_missed: int = 0
    completed: int = 0
    failed: int = 0
    quarantined_rows: int = 0
    latency_ms: Dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def rejection_rate(self) -> float:
        """Rejected / (admitted + rejected) — the chaos gate's fairness axis."""
        offered = self.admitted + self.rejected
        if offered == 0:
            return 0.0
        return self.rejected / offered

    def as_dict(self) -> Dict[str, object]:
        payload = dataclasses.asdict(self)
        payload["rejection_rate"] = self.rejection_rate
        return payload


class _TenantCounters:
    """Mutable per-tenant tallies (guarded by the recorder's lock)."""

    def __init__(self, tenant: str, latency_window: int) -> None:
        self.tenant = tenant
        self.admitted = 0
        self.rows_admitted = 0
        self.rejected = 0
        self.rejected_quota = 0
        self.shed = 0
        self.deadline_missed = 0
        self.completed = 0
        self.failed = 0
        self.quarantined_rows = 0
        self._latency_window = latency_window
        self._latencies: List[float] = []
        self._latency_pos = 0

    def record_latency_ms(self, ms: float) -> None:
        if len(self._latencies) < self._latency_window:
            self._latencies.append(ms)
        else:  # bounded ring: overwrite the oldest entry
            self._latencies[self._latency_pos] = ms
            self._latency_pos = (self._latency_pos + 1) % self._latency_window

    def snapshot(self) -> TenantStats:
        return TenantStats(
            tenant=self.tenant,
            admitted=self.admitted,
            rows_admitted=self.rows_admitted,
            rejected=self.rejected,
            rejected_quota=self.rejected_quota,
            shed=self.shed,
            deadline_missed=self.deadline_missed,
            completed=self.completed,
            failed=self.failed,
            quarantined_rows=self.quarantined_rows,
            latency_ms=_percentiles(self._latencies),
        )


@dataclasses.dataclass(frozen=True)
class ServiceStats:
    """One consistent snapshot of a :class:`~repro.service.SortService`.

    Counters are lifetime totals; ``queue_depth_*`` is the instant
    backlog; ``latency_ms`` holds ``p50``/``p95``/``p99``/``mean``/
    ``max`` over the recent completed-request window (empty dict before
    the first completion).
    """

    #: Requests accepted by ``submit`` (rejected ones are not counted here).
    submitted: int
    #: Requests whose future resolved with a sorted result.
    completed: int
    #: Requests refused at submit time by admission control.
    rejected: int
    #: Requests shed in the queue because their deadline passed.
    shed: int
    #: Requests whose batch finished after their deadline (result discarded).
    deadline_missed: int
    #: Requests failed by the backend (quarantine or an execution error).
    failed: int
    #: Batches dispatched to the sorter.
    batches: int
    #: Total rows carried by dispatched batches.
    batched_rows: int
    #: Requests currently queued (not yet dispatched).
    queue_depth_requests: int
    #: Rows currently queued.
    queue_depth_rows: int
    #: Rows-per-batch histogram: power-of-two bucket label -> batch count.
    occupancy_histogram: Dict[str, int]
    #: Recent-window latency percentiles, milliseconds.
    latency_ms: Dict[str, float]
    #: Per-tenant slices of the above (tenant name -> TenantStats).
    tenants: Dict[str, TenantStats] = dataclasses.field(default_factory=dict)
    #: Planner engine-selection counts per shape class
    #: (``shape_class_key`` -> engine -> times chosen), from the
    #: backend planner's :meth:`~repro.planner.planner._PlannerBase.plan_counts`.
    #: Empty when the backend has no planner.  This is how live traffic
    #: shows *which* engine (serial/thread/process/radix) each batch
    #: shape actually dispatches to.
    planner_engine_counts: Dict[str, Dict[str, int]] = dataclasses.field(
        default_factory=dict
    )

    @property
    def mean_occupancy_rows(self) -> float:
        """Average rows per dispatched batch (0.0 before the first batch)."""
        if self.batches == 0:
            return 0.0
        return self.batched_rows / self.batches

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@_sanitizer.sanitize_guarded
class StatsRecorder:
    """Mutable accumulator behind :class:`ServiceStats`.

    Internally locked: every counter is guarded by the recorder's own
    ``_lock``, so submit-path increments (which happen under the service
    lock) and completion-path increments (worker thread) can never lose
    an update even when a caller touches the recorder outside the
    service lock.  All mutation goes through ``record_*`` methods — the
    counters themselves are an implementation detail.
    """

    def __init__(
        self,
        latency_window: int = 4096,
        tenant_latency_window: int = 1024,
    ) -> None:
        if latency_window < 1:
            raise ValueError(f"latency_window must be >= 1, got {latency_window}")
        if tenant_latency_window < 1:
            raise ValueError(
                f"tenant_latency_window must be >= 1, got {tenant_latency_window}"
            )
        self._lock = _sanitizer.make_lock("StatsRecorder._lock")
        self.submitted = 0  # guarded-by: _lock
        self.completed = 0  # guarded-by: _lock
        self.rejected = 0  # guarded-by: _lock
        self.shed = 0  # guarded-by: _lock
        self.deadline_missed = 0  # guarded-by: _lock
        self.failed = 0  # guarded-by: _lock
        self.batches = 0  # guarded-by: _lock
        self.batched_rows = 0  # guarded-by: _lock
        self.occupancy: Dict[str, int] = {}  # guarded-by: _lock
        self._latency_window = int(latency_window)
        self._latencies: List[float] = []  # guarded-by: _lock
        self._latency_pos = 0  # guarded-by: _lock
        self._tenant_latency_window = int(tenant_latency_window)
        self._tenants: Dict[str, _TenantCounters] = {}  # guarded-by: _lock
        #: EMA of delivered rows/second, the retry-after estimator's input.
        self.ema_rows_per_s: Optional[float] = None  # guarded-by: _lock

    def _tenant_locked(self, tenant: str) -> _TenantCounters:
        counters = self._tenants.get(tenant)
        if counters is None:
            counters = self._tenants[tenant] = _TenantCounters(
                tenant, self._tenant_latency_window
            )
        return counters

    # -- event hooks -------------------------------------------------------
    def record_submitted(self, *, tenant: str = "default", rows: int = 1) -> None:
        with self._lock:
            self.submitted += 1
            counters = self._tenant_locked(tenant)
            counters.admitted += 1
            counters.rows_admitted += int(rows)

    def record_rejected(
        self, *, tenant: str = "default", reason: str = "queue-full"
    ) -> None:
        with self._lock:
            self.rejected += 1
            counters = self._tenant_locked(tenant)
            counters.rejected += 1
            if reason == "tenant-quota":
                counters.rejected_quota += 1

    def record_shed(self, count: int, *, tenant: Optional[str] = None) -> None:
        with self._lock:
            self.shed += int(count)
            if tenant is not None:
                self._tenant_locked(tenant).shed += int(count)

    def record_failed(
        self, *, tenant: str = "default", quarantined_rows: int = 0
    ) -> None:
        with self._lock:
            self.failed += 1
            counters = self._tenant_locked(tenant)
            counters.failed += 1
            counters.quarantined_rows += int(quarantined_rows)

    def record_deadline_missed(self, *, tenant: str = "default") -> None:
        with self._lock:
            self.deadline_missed += 1
            self._tenant_locked(tenant).deadline_missed += 1

    def record_batch(self, rows: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_rows += int(rows)
            bucket = _occupancy_bucket(int(rows))
            self.occupancy[bucket] = self.occupancy.get(bucket, 0) + 1

    def record_latency(self, seconds: float, *, tenant: str = "default") -> None:
        ms = float(seconds) * 1e3
        with self._lock:
            if len(self._latencies) < self._latency_window:
                self._latencies.append(ms)
            else:  # bounded ring: overwrite the oldest entry
                self._latencies[self._latency_pos] = ms
                self._latency_pos = (self._latency_pos + 1) % self._latency_window
            self.completed += 1
            counters = self._tenant_locked(tenant)
            counters.completed += 1
            counters.record_latency_ms(ms)

    def record_throughput(self, rows: int, seconds: float, *, alpha: float = 0.3) -> None:
        if seconds <= 0 or rows <= 0:
            return
        rate = rows / seconds
        with self._lock:
            if self.ema_rows_per_s is None:
                self.ema_rows_per_s = rate
            else:
                self.ema_rows_per_s += alpha * (rate - self.ema_rows_per_s)

    def rows_per_s(self) -> Optional[float]:
        """Current throughput EMA (``None`` before the first batch)."""
        with self._lock:
            return self.ema_rows_per_s

    # -- snapshot ----------------------------------------------------------
    def _latency_percentiles_locked(self) -> Dict[str, float]:
        return _percentiles(self._latencies)

    def latency_percentiles(self) -> Dict[str, float]:
        with self._lock:
            return self._latency_percentiles_locked()

    def snapshot(
        self,
        *,
        queue_requests: int,
        queue_rows: int,
        planner_engine_counts: Optional[Dict[str, Dict[str, int]]] = None,
    ) -> ServiceStats:
        """One consistent snapshot: every field read under the same lock.

        ``planner_engine_counts`` is point-in-time state owned by the
        backend's planner (its own lock), passed through verbatim.
        """
        with self._lock:
            return ServiceStats(
                submitted=self.submitted,
                completed=self.completed,
                rejected=self.rejected,
                shed=self.shed,
                deadline_missed=self.deadline_missed,
                failed=self.failed,
                batches=self.batches,
                batched_rows=self.batched_rows,
                queue_depth_requests=int(queue_requests),
                queue_depth_rows=int(queue_rows),
                occupancy_histogram=dict(self.occupancy),
                latency_ms=self._latency_percentiles_locked(),
                tenants={
                    name: counters.snapshot()
                    for name, counters in sorted(self._tenants.items())
                },
                planner_engine_counts=planner_engine_counts or {},
            )
