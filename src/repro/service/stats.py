"""Observability surface of the sort service.

:class:`ServiceStats` is an immutable snapshot — counters, queue depth,
the batch-occupancy histogram, and request-latency percentiles — taken
under the service lock by :meth:`repro.service.SortService.stats`.  The
mutable accumulation lives in :class:`StatsRecorder`, which the service
owns and updates on the submit/dispatch/complete path.

Latency percentiles are computed over a bounded ring of the most recent
completed-request latencies (default 4096), so a long-running service
reports *current* behaviour rather than a lifetime average diluted by
warm-up.  Occupancy is histogrammed in power-of-two buckets of rows per
dispatched batch — the natural axis, since the planner's shape classes
quantize ``log2(N)`` the same way.
"""

from __future__ import annotations

import dataclasses
import math
import threading
from typing import Dict, List, Optional

import numpy as np

__all__ = ["ServiceStats", "StatsRecorder"]


def _occupancy_bucket(rows: int) -> str:
    """Power-of-two histogram label for a batch of ``rows`` rows."""
    if rows <= 0:
        return "[0,1)"
    lo = 1 << int(math.floor(math.log2(rows)))
    return f"[{lo},{lo * 2})"


@dataclasses.dataclass(frozen=True)
class ServiceStats:
    """One consistent snapshot of a :class:`~repro.service.SortService`.

    Counters are lifetime totals; ``queue_depth_*`` is the instant
    backlog; ``latency_ms`` holds ``p50``/``p95``/``p99``/``mean``/
    ``max`` over the recent completed-request window (empty dict before
    the first completion).
    """

    #: Requests accepted by ``submit`` (rejected ones are not counted here).
    submitted: int
    #: Requests whose future resolved with a sorted result.
    completed: int
    #: Requests refused at submit time by admission control.
    rejected: int
    #: Requests shed in the queue because their deadline passed.
    shed: int
    #: Requests whose batch finished after their deadline (result discarded).
    deadline_missed: int
    #: Requests failed by the backend (quarantine or an execution error).
    failed: int
    #: Batches dispatched to the sorter.
    batches: int
    #: Total rows carried by dispatched batches.
    batched_rows: int
    #: Requests currently queued (not yet dispatched).
    queue_depth_requests: int
    #: Rows currently queued.
    queue_depth_rows: int
    #: Rows-per-batch histogram: power-of-two bucket label -> batch count.
    occupancy_histogram: Dict[str, int]
    #: Recent-window latency percentiles, milliseconds.
    latency_ms: Dict[str, float]

    @property
    def mean_occupancy_rows(self) -> float:
        """Average rows per dispatched batch (0.0 before the first batch)."""
        if self.batches == 0:
            return 0.0
        return self.batched_rows / self.batches

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


class StatsRecorder:
    """Mutable accumulator behind :class:`ServiceStats`.

    Internally locked: every counter is guarded by the recorder's own
    ``_lock``, so submit-path increments (which happen under the service
    lock) and completion-path increments (worker thread) can never lose
    an update even when a caller touches the recorder outside the
    service lock.  All mutation goes through ``record_*`` methods — the
    counters themselves are an implementation detail.
    """

    def __init__(self, latency_window: int = 4096) -> None:
        if latency_window < 1:
            raise ValueError(f"latency_window must be >= 1, got {latency_window}")
        self._lock = threading.Lock()
        self.submitted = 0  # guarded-by: _lock
        self.completed = 0  # guarded-by: _lock
        self.rejected = 0  # guarded-by: _lock
        self.shed = 0  # guarded-by: _lock
        self.deadline_missed = 0  # guarded-by: _lock
        self.failed = 0  # guarded-by: _lock
        self.batches = 0  # guarded-by: _lock
        self.batched_rows = 0  # guarded-by: _lock
        self.occupancy: Dict[str, int] = {}  # guarded-by: _lock
        self._latency_window = int(latency_window)
        self._latencies: List[float] = []  # guarded-by: _lock
        self._latency_pos = 0  # guarded-by: _lock
        #: EMA of delivered rows/second, the retry-after estimator's input.
        self.ema_rows_per_s: Optional[float] = None  # guarded-by: _lock

    # -- event hooks -------------------------------------------------------
    def record_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_shed(self, count: int) -> None:
        with self._lock:
            self.shed += int(count)

    def record_failed(self) -> None:
        with self._lock:
            self.failed += 1

    def record_deadline_missed(self) -> None:
        with self._lock:
            self.deadline_missed += 1

    def record_batch(self, rows: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_rows += int(rows)
            bucket = _occupancy_bucket(int(rows))
            self.occupancy[bucket] = self.occupancy.get(bucket, 0) + 1

    def record_latency(self, seconds: float) -> None:
        ms = float(seconds) * 1e3
        with self._lock:
            if len(self._latencies) < self._latency_window:
                self._latencies.append(ms)
            else:  # bounded ring: overwrite the oldest entry
                self._latencies[self._latency_pos] = ms
                self._latency_pos = (self._latency_pos + 1) % self._latency_window
            self.completed += 1

    def record_throughput(self, rows: int, seconds: float, *, alpha: float = 0.3) -> None:
        if seconds <= 0 or rows <= 0:
            return
        rate = rows / seconds
        with self._lock:
            if self.ema_rows_per_s is None:
                self.ema_rows_per_s = rate
            else:
                self.ema_rows_per_s += alpha * (rate - self.ema_rows_per_s)

    def rows_per_s(self) -> Optional[float]:
        """Current throughput EMA (``None`` before the first batch)."""
        with self._lock:
            return self.ema_rows_per_s

    # -- snapshot ----------------------------------------------------------
    def _latency_percentiles_locked(self) -> Dict[str, float]:
        if not self._latencies:
            return {}
        window = np.asarray(self._latencies, dtype=np.float64)
        p50, p95, p99 = np.percentile(window, [50.0, 95.0, 99.0])
        return {
            "p50": float(p50),
            "p95": float(p95),
            "p99": float(p99),
            "mean": float(window.mean()),
            "max": float(window.max()),
        }

    def latency_percentiles(self) -> Dict[str, float]:
        with self._lock:
            return self._latency_percentiles_locked()

    def snapshot(self, *, queue_requests: int, queue_rows: int) -> ServiceStats:
        """One consistent snapshot: every field read under the same lock."""
        with self._lock:
            return ServiceStats(
                submitted=self.submitted,
                completed=self.completed,
                rejected=self.rejected,
                shed=self.shed,
                deadline_missed=self.deadline_missed,
                failed=self.failed,
                batches=self.batches,
                batched_rows=self.batched_rows,
                queue_depth_requests=int(queue_requests),
                queue_depth_rows=int(queue_rows),
                occupancy_histogram=dict(self.occupancy),
                latency_ms=self._latency_percentiles_locked(),
            )
