"""Synthetic traffic driver for the sort service.

Shared by the ``repro serve-bench`` CLI subcommand and
``benchmarks/bench_service.py``: a fleet of client threads issues
requests with a configurable **rows-per-request mix** against either the
batched :class:`~repro.service.SortService` or an **unbatched baseline**
(each request sorted directly, per-request, by its client thread — what
an adopter without the service layer would do), under one of two arrival
disciplines:

* ``closed`` — each client issues its next request only after the
  previous one resolves; offered load tracks service speed (classic
  closed-loop benchmarking, load scales with ``clients``);
* ``open`` — each client issues on a fixed schedule regardless of
  completions (``rate`` requests/s spread across clients); latency then
  includes any queueing the service cannot hide, which is what exposes
  an overloaded configuration.

Latency is measured caller-side — submit (closed) or scheduled arrival
(open) to future resolution — so the numbers include everything the
caller would experience: queueing, lingering, sorting, demux copies.
Rejected submissions are retried after the service's ``retry_after``
hint (bounded), which is exactly what a well-behaved client does with
backpressure; retries are counted, not hidden.

Multi-tenant runs (:func:`run_multi_tenant_traffic`) drive several
:class:`TenantLoad` fleets against one service concurrently, each
submitting under its own tenant name — the open-loop mixed-workload
setting the chaos harness (:mod:`repro.service.chaos`) measures SLOs
in.  A tenant may be configured to *poison* a fraction of its requests
with NaN rows (``poison_nan_rate``): under ``backend="resilient"`` and
``nan_policy="raise"`` those rows quarantine deterministically, which is
how cross-tenant blast-radius is made observable — only the poisoning
tenant's requests may fail with :class:`QuarantinedError`.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import DEFAULT_CONFIG, SortConfig
from .errors import (
    DeadlineExceededError,
    QuarantinedError,
    RejectedError,
    ServiceError,
)

__all__ = [
    "TenantLoad",
    "TrafficReport",
    "parse_size_mix",
    "run_multi_tenant_traffic",
    "run_service_traffic",
    "run_unbatched_traffic",
]

#: Bound on rejected-submit retries per request before it counts as failed.
MAX_REJECT_RETRIES = 200
#: Cap on a single backpressure sleep so a pathological hint cannot stall
#: the driver.
MAX_RETRY_SLEEP_S = 0.25


def parse_size_mix(spec: str) -> List[Tuple[int, float]]:
    """Parse ``"1:0.6,4:0.3,16:0.1"`` into ``[(rows, weight), ...]``.

    Weights are normalized; rows must be positive integers.  Raises
    ``ValueError`` on malformed specs so the CLI can report them.
    """
    entries: List[Tuple[int, float]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            rows_text, weight_text = part.split(":")
            rows, weight = int(rows_text), float(weight_text)
        except ValueError:
            raise ValueError(
                f"bad size-mix entry {part!r}; expected ROWS:WEIGHT"
            ) from None
        if rows < 1 or weight <= 0:
            raise ValueError(
                f"bad size-mix entry {part!r}; rows must be >= 1 and "
                "weight > 0"
            )
        entries.append((rows, weight))
    if not entries:
        raise ValueError(f"empty size mix {spec!r}")
    total = sum(w for _, w in entries)
    return [(rows, weight / total) for rows, weight in entries]


@dataclasses.dataclass
class TrafficReport:
    """Outcome of one traffic run, ready for tables and JSON."""

    mode: str
    clients: int
    requests_issued: int
    completed: int
    rejected_retries: int
    shed: int
    deadline_missed: int
    failed: int
    rows_completed: int
    wall_seconds: float
    latencies_ms: List[float]
    #: Requests failed specifically by quarantine (a subset of ``failed``
    #: conceptually, but counted separately so blast-radius is visible).
    quarantined: int = 0

    @property
    def throughput_rps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    @property
    def throughput_rows_per_s(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.rows_completed / self.wall_seconds

    def latency_percentiles(self) -> Dict[str, float]:
        if not self.latencies_ms:
            return {}
        window = np.asarray(self.latencies_ms, dtype=np.float64)
        p50, p95, p99 = np.percentile(window, [50.0, 95.0, 99.0])
        return {
            "p50": float(p50),
            "p95": float(p95),
            "p99": float(p99),
            "mean": float(window.mean()),
            "max": float(window.max()),
        }

    def as_dict(self) -> Dict[str, object]:
        payload = dataclasses.asdict(self)
        del payload["latencies_ms"]  # raw samples stay out of artifacts
        payload["throughput_rps"] = self.throughput_rps
        payload["throughput_rows_per_s"] = self.throughput_rows_per_s
        payload["latency_ms"] = self.latency_percentiles()
        return payload


class _Collector:
    """Thread-safe tallies shared by the client threads."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.completed = 0
        self.rejected_retries = 0
        self.shed = 0
        self.deadline_missed = 0
        self.failed = 0
        self.quarantined = 0
        self.rows_completed = 0
        self.latencies_ms: List[float] = []

    def record(self, outcome: str, rows: int, latency_s: Optional[float]) -> None:
        with self.lock:
            if outcome == "completed":
                self.completed += 1
                self.rows_completed += rows
                if latency_s is not None:
                    self.latencies_ms.append(latency_s * 1e3)
            elif outcome == "shed":
                self.shed += 1
            elif outcome == "deadline":
                self.deadline_missed += 1
            elif outcome == "quarantined":
                self.failed += 1
                self.quarantined += 1
            else:
                self.failed += 1

    def count_reject(self) -> None:
        with self.lock:
            self.rejected_retries += 1


def _make_request(rng: np.random.Generator, rows: int, array_size: int,
                  dtype: str) -> np.ndarray:
    if np.dtype(dtype).kind == "f":
        return rng.uniform(0.0, 1e6, (rows, array_size)).astype(dtype)
    return rng.integers(0, 2**30, (rows, array_size)).astype(dtype)


def _pick_rows(rng: np.random.Generator, mix: Sequence[Tuple[int, float]]) -> int:
    choice = rng.random()
    acc = 0.0
    for rows, weight in mix:
        acc += weight
        if choice <= acc:
            return rows
    return mix[-1][0]


def _run_clients(worker: Callable[[int], None], clients: int) -> float:
    """Run ``worker(client_id)`` on ``clients`` threads; return wall seconds."""
    threads = [
        threading.Thread(target=worker, args=(cid,), name=f"traffic-{cid}")
        for cid in range(clients)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - t0


def _submit_with_backpressure(service, arrays, deadline_s, collector,
                              tenant="default"):
    """Submit, honoring retry-after backpressure; None if budget exhausted."""
    for _ in range(MAX_REJECT_RETRIES):
        try:
            return service.submit(arrays, deadline=deadline_s, tenant=tenant)
        except RejectedError as exc:
            collector.count_reject()
            time.sleep(min(exc.retry_after, MAX_RETRY_SLEEP_S))
    return None


def run_service_traffic(
    service,
    *,
    mode: str = "closed",
    clients: int = 8,
    total_requests: int = 1000,
    rate_rps: float = 2000.0,
    array_size: int = 256,
    dtype: str = "float32",
    size_mix: Sequence[Tuple[int, float]] = ((1, 0.6), (4, 0.3), (16, 0.1)),
    deadline_s: Optional[float] = None,
    seed: int = 0,
    result_timeout_s: float = 60.0,
    tenant: str = "default",
    poison_nan_rate: float = 0.0,
    stagger: bool = False,
) -> TrafficReport:
    """Drive synthetic traffic through a :class:`SortService`.

    ``tenant`` tags every submission; ``poison_nan_rate`` is the
    probability a request carries one NaN row (float dtypes only) —
    under the resilient backend's ``nan_policy="raise"`` those rows
    quarantine deterministically, making this driver double as the chaos
    harness's blast-radius probe.

    ``stagger`` (open mode only) offsets each client's arrival schedule
    by ``client_id / rate_rps`` so the aggregate arrival process is
    uniform at ``rate_rps`` instead of lockstep bursts of ``clients``
    simultaneous requests — the difference between measuring a paced
    offered load and measuring self-inflicted thundering herds.
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if not 0.0 <= poison_nan_rate <= 1.0:
        raise ValueError(
            f"poison_nan_rate must be in [0, 1], got {poison_nan_rate}"
        )
    if poison_nan_rate > 0.0 and np.dtype(dtype).kind != "f":
        raise ValueError(
            f"poison_nan_rate requires a float dtype, got {dtype!r}"
        )
    per_client = max(1, total_requests // clients)
    collector = _Collector()
    interval = clients / rate_rps if rate_rps > 0 else 0.0

    def resolve(future, rows: int, t0: float,
                completed_at: Optional[float] = None) -> None:
        try:
            future.result(timeout=result_timeout_s)
        except DeadlineExceededError as exc:
            outcome = "shed" if exc.stage == "queued" else "deadline"
            collector.record(outcome, rows, None)
            return
        except QuarantinedError:
            collector.record("quarantined", rows, None)
            return
        except (ServiceError, Exception):
            collector.record("failed", rows, None)
            return
        done = completed_at if completed_at is not None else time.perf_counter()
        collector.record("completed", rows, done - t0)

    def client(client_id: int) -> None:
        rng = np.random.default_rng(seed * 7919 + client_id)
        start = time.perf_counter()
        if stagger and mode == "open" and rate_rps > 0:
            start += client_id / rate_rps
        pending: List[Tuple[object, int, float]] = []
        done_at: Dict[int, float] = {}
        for i in range(per_client):
            rows = _pick_rows(rng, size_mix)
            arrays = _make_request(rng, rows, array_size, dtype)
            if poison_nan_rate > 0.0 and rng.random() < poison_nan_rate:
                arrays[int(rng.integers(0, rows)), 0] = np.nan
            if mode == "open":
                arrival = start + i * interval
                lag = arrival - time.perf_counter()
                if lag > 0:
                    time.sleep(lag)
                t0 = min(arrival, time.perf_counter())
            else:
                t0 = time.perf_counter()
            future = _submit_with_backpressure(
                service, arrays, deadline_s, collector, tenant
            )
            if future is None:
                collector.record("failed", rows, None)
                continue
            if mode == "closed":
                resolve(future, rows, t0)
            else:
                # Stamp the completion instant from the future's own
                # done-callback (fired synchronously at set_result time),
                # not from the drain loop below — draining happens after
                # the whole issue schedule finishes, and measuring there
                # would report time-until-drain, inflating open-mode
                # latency by however long the client kept issuing.
                idx = len(pending)
                future.add_done_callback(
                    lambda _f, idx=idx: done_at.__setitem__(
                        idx, time.perf_counter()
                    )
                )
                pending.append((future, rows, t0))
        for idx, (future, rows, t0) in enumerate(pending):
            resolve(future, rows, t0, completed_at=done_at.get(idx))

    wall = _run_clients(client, clients)
    return TrafficReport(
        mode=mode,
        clients=clients,
        requests_issued=per_client * clients,
        completed=collector.completed,
        rejected_retries=collector.rejected_retries,
        shed=collector.shed,
        deadline_missed=collector.deadline_missed,
        failed=collector.failed,
        rows_completed=collector.rows_completed,
        wall_seconds=wall,
        latencies_ms=collector.latencies_ms,
        quarantined=collector.quarantined,
    )


@dataclasses.dataclass(frozen=True)
class TenantLoad:
    """One tenant's traffic shape inside a multi-tenant run.

    Weights and quotas are *service* configuration (``tenant_weights`` /
    ``tenant_quotas`` on :class:`~repro.service.SortService`); this is
    purely the offered-load side: how many clients, how many requests,
    at what rate, with what row mix, and whether the tenant poisons a
    fraction of its requests with NaN rows.
    """

    name: str
    clients: int = 2
    total_requests: int = 200
    rate_rps: float = 500.0
    size_mix: Tuple[Tuple[int, float], ...] = ((1, 0.6), (4, 0.3), (16, 0.1))
    deadline_s: Optional[float] = None
    poison_nan_rate: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.total_requests < 1:
            raise ValueError(
                f"total_requests must be >= 1, got {self.total_requests}"
            )


def run_multi_tenant_traffic(
    service,
    tenants: Sequence[TenantLoad],
    *,
    mode: str = "open",
    array_size: int = 256,
    dtype: str = "float32",
    seed: int = 0,
    result_timeout_s: float = 60.0,
) -> Dict[str, TrafficReport]:
    """Drive several tenants' fleets against one service concurrently.

    Each tenant's fleet runs on its own thread pool (inside its own
    :func:`run_service_traffic` call) so the tenants genuinely contend
    for the shared queue, which is the situation WFQ and quotas exist
    for.  Per-tenant seeds are derived deterministically from ``seed``
    and the tenant's position, so a run is reproducible end to end.
    Returns ``{tenant name: TrafficReport}``.
    """
    if not tenants:
        raise ValueError("tenants must be non-empty")
    names = [load.name for load in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names in {names}")
    reports: Dict[str, TrafficReport] = {}
    errors: List[BaseException] = []
    report_lock = threading.Lock()

    def drive(idx: int, load: TenantLoad) -> None:
        try:
            report = run_service_traffic(
                service,
                mode=mode,
                clients=load.clients,
                total_requests=load.total_requests,
                rate_rps=load.rate_rps,
                array_size=array_size,
                dtype=dtype,
                size_mix=load.size_mix,
                deadline_s=load.deadline_s,
                seed=seed * 100003 + idx,
                result_timeout_s=result_timeout_s,
                tenant=load.name,
                poison_nan_rate=load.poison_nan_rate,
            )
        except BaseException as exc:  # surfaced to the caller below
            with report_lock:
                errors.append(exc)
            return
        with report_lock:
            reports[load.name] = report

    threads = [
        threading.Thread(
            target=drive, args=(idx, load), name=f"tenant-{load.name}"
        )
        for idx, load in enumerate(tenants)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return reports


def run_unbatched_traffic(
    *,
    mode: str = "closed",
    clients: int = 8,
    total_requests: int = 1000,
    rate_rps: float = 2000.0,
    array_size: int = 256,
    dtype: str = "float32",
    size_mix: Sequence[Tuple[int, float]] = ((1, 0.6), (4, 0.3), (16, 0.1)),
    seed: int = 0,
    config: SortConfig = DEFAULT_CONFIG,
) -> TrafficReport:
    """The per-request baseline: every client sorts its own requests.

    Each client thread owns a :class:`GpuArraySort` and calls it once per
    request — no coalescing, no queueing, the paper's per-launch fixed
    cost paid on every tiny request.  This is the baseline the service's
    dynamic batching is gated against (≥ 2× at the mid load cell).
    """
    from ..core.array_sort import GpuArraySort

    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    per_client = max(1, total_requests // clients)
    collector = _Collector()
    interval = clients / rate_rps if rate_rps > 0 else 0.0

    def client(client_id: int) -> None:
        rng = np.random.default_rng(seed * 7919 + client_id)
        sorter = GpuArraySort(config)
        start = time.perf_counter()
        for i in range(per_client):
            rows = _pick_rows(rng, size_mix)
            arrays = _make_request(rng, rows, array_size, dtype)
            if mode == "open":
                arrival = start + i * interval
                lag = arrival - time.perf_counter()
                if lag > 0:
                    time.sleep(lag)
                t0 = min(arrival, time.perf_counter())
            else:
                t0 = time.perf_counter()
            try:
                sorter.sort(arrays)
            except Exception:
                collector.record("failed", rows, None)
                continue
            collector.record("completed", rows, time.perf_counter() - t0)

    wall = _run_clients(client, clients)
    return TrafficReport(
        mode=mode,
        clients=clients,
        requests_issued=per_client * clients,
        completed=collector.completed,
        rejected_retries=collector.rejected_retries,
        shed=collector.shed,
        deadline_missed=collector.deadline_missed,
        failed=collector.failed,
        rows_completed=collector.rows_completed,
        wall_seconds=wall,
        latencies_ms=collector.latencies_ms,
    )
