"""In-process async sort service: the serving front-end of the repo.

The ROADMAP's north star is a system "serving heavy traffic from
millions of users", but every existing entry point
(:class:`~repro.core.array_sort.GpuArraySort`,
:class:`~repro.core.streaming.StreamingSorter`,
:class:`~repro.resilience.ResilientSorter`) assumes one caller hands
over one pre-assembled batch.  :class:`SortService` is the missing
layer: many callers ``submit()`` small requests concurrently, a
background batcher coalesces them into planner-sized batches, one fused
sort runs per batch, and the result is demultiplexed back to each
caller's ``Future``.

Composition, not bypass:

* engine choice goes through ``planner=`` exactly like the sorters
  (``"auto"`` adaptive, ``"fused"``/``"sharded"`` static);
* the sorter keeps a :class:`~repro.core.workspace.ScratchArena`, so
  steady-state serving sorts allocation-free; demuxed results are
  copied out of the arena by default (retained-result contract), or
  handed out as zero-copy views with ``submit(copy=False)`` — valid
  until the service's next batch, the same contract as
  :class:`StreamingSorter`'s ``on_batch``;
* ``backend="resilient"`` swaps in a
  :class:`~repro.resilience.ResilientSorter` for verify/retry
  semantics; its quarantined rows fail *only* the owning request, with
  a typed :class:`~repro.service.errors.QuarantinedError`.

Overload shows up as explicit backpressure, never as silent queue
growth: a bounded queue rejects at submit time with
:class:`~repro.service.errors.RejectedError` (carrying ``retry_after``),
and requests whose deadline passes are shed with
:class:`~repro.service.errors.DeadlineExceededError` — late data is
discarded, not delivered stale.

Multi-tenant QoS: every ``submit`` carries a ``tenant`` name.  Admission
enforces per-tenant quotas (:class:`TenantQuota`) *before* the shared
queue bound, so one tenant exhausting its quota is rejected with
``reason="tenant-quota"`` while everyone else keeps being admitted; the
batcher's weighted-fair-queuing layer (see
:mod:`repro.service.batcher`) then keeps a flooding tenant's backlog
from starving other tenants' dispatch.  All counters — admitted,
rejected, shed, quarantined rows, latency percentiles — are kept per
tenant and exported by :mod:`repro.service.metrics`.
"""

from __future__ import annotations

import dataclasses
import math
import threading
import time
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from ..core.config import DEFAULT_CONFIG, SortConfig
from ..parallel.plan import DEFAULT_MIN_ROWS_PER_WORKER
from ..statan import runtime as _sanitizer
from .batcher import DynamicBatcher, QueuedRequest
from .errors import (
    DeadlineExceededError,
    QuarantinedError,
    RejectedError,
    ServiceClosedError,
    ServiceError,
)
from .stats import ServiceStats, StatsRecorder

__all__ = ["SortService", "TenantQuota", "derive_batch_target"]

#: Default bounded jitter fraction on ``retry_after`` hints: rejected
#: clients resubmit spread over ``[hint, hint * (1 + jitter)]`` instead
#: of stampeding back in lockstep at the same instant.
DEFAULT_RETRY_JITTER = 0.25


@dataclasses.dataclass(frozen=True)
class TenantQuota:
    """Admission bounds for one tenant.

    ``max_queued_rows`` / ``max_queued_requests`` cap what the tenant
    may have *waiting* in the service queue at once (``None`` = no
    per-tenant cap on that axis).  A submit that would exceed either cap
    is refused with :class:`RejectedError` (``reason="tenant-quota"``)
    without touching other tenants' headroom.
    """

    max_queued_rows: Optional[int] = None
    max_queued_requests: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("max_queued_rows", "max_queued_requests"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 or None, got {value}")


def derive_batch_target(planner) -> int:
    """Batch size target from the planner's preferred shape class.

    The planner's fan-out guard (``min_rows_per_worker``, default
    :data:`~repro.parallel.plan.DEFAULT_MIN_ROWS_PER_WORKER`) is the
    batch scale at which its sharded engines become eligible at all —
    below it every plan collapses to serial — so it is the natural "big
    enough to be worth a launch" target.  The result is clamped to a
    serviceable range and rounded down to a power of two, so consecutive
    full batches land in the *same* quantized planner shape class
    (``shape_class_key`` rounds ``log2 N``) and the planner's learned
    timings actually accumulate.
    """
    preferred = getattr(planner, "min_rows_per_worker", None)
    if not isinstance(preferred, int) or preferred < 1:
        preferred = DEFAULT_MIN_ROWS_PER_WORKER
    clamped = max(256, min(8192, preferred))
    return 1 << int(math.floor(math.log2(clamped)))


@_sanitizer.sanitize_guarded
class SortService:
    """Async sort front-end with dynamic batching and admission control.

    Example::

        with SortService(batch_target_rows=512, linger_ms=2.0) as svc:
            futures = [svc.submit(arrays) for arrays in requests]
            results = [f.result() for f in futures]

    Parameters
    ----------
    config:
        :class:`SortConfig` forwarded to the execution backend.
    planner:
        Engine choice for the backend sorter, same vocabulary as
        :class:`GpuArraySort(planner=...) <repro.core.array_sort.GpuArraySort>`
        (``None``, ``"auto"``, ``"fused"``, ``"sharded"``, or an
        instance).  Also feeds the default batch size target.
    backend:
        ``None`` (a :class:`GpuArraySort` with a scratch arena — the
        default), ``"resilient"`` (a :class:`ResilientSorter` for
        verify/retry/quarantine semantics), or any object whose
        ``sort(batch)`` returns a result with a ``batch`` attribute.
    batch_target_rows:
        Queued rows that trigger a dispatch; default derived from the
        planner via :func:`derive_batch_target`.
    max_batch_rows:
        Hard per-batch cap (default ``4 * batch_target_rows``).
    linger_ms:
        Longest a request waits for co-batching before its lane
        dispatches below target (default 2 ms).
    max_queue_rows:
        Admission bound: total queued rows beyond which ``submit``
        raises :class:`RejectedError` (default ``8 * batch_target_rows``).
    default_deadline_ms:
        Deadline applied to requests submitted without one (``None`` =
        no deadline).
    latency_window:
        Completed-request latencies retained for the percentile
        snapshot.
    tenant_quotas:
        Per-tenant admission bounds: tenant name -> :class:`TenantQuota`
        (or a plain int, shorthand for ``TenantQuota(max_queued_rows=n)``).
    default_tenant_quota:
        Quota applied to tenants absent from ``tenant_quotas`` (``None``
        = unlisted tenants are bounded only by the shared queue).
    tenant_weights:
        WFQ weight per tenant for the batcher's fairness layer (default
        weight 1.0 for unlisted tenants).
    retry_jitter:
        Bounded jitter fraction on ``retry_after`` hints (0 disables;
        default :data:`DEFAULT_RETRY_JITTER`).
    retry_jitter_seed:
        Seed for the jitter RNG, for reproducible backpressure tests.
    clock:
        Monotonic clock, injectable for tests.
    """

    def __init__(
        self,
        *,
        config: SortConfig = DEFAULT_CONFIG,
        planner=None,
        backend=None,
        batch_target_rows: Optional[int] = None,
        max_batch_rows: Optional[int] = None,
        linger_ms: float = 2.0,
        max_queue_rows: Optional[int] = None,
        default_deadline_ms: Optional[float] = None,
        latency_window: int = 4096,
        tenant_quotas: Optional[Dict[str, Union["TenantQuota", int]]] = None,
        default_tenant_quota: Optional[Union["TenantQuota", int]] = None,
        tenant_weights: Optional[Dict[str, float]] = None,
        retry_jitter: float = DEFAULT_RETRY_JITTER,
        retry_jitter_seed: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self._clock = clock
        resolved_planner = None
        if planner is not None:
            from ..planner import resolve_planner  # local: optional subsystem

            resolved_planner = resolve_planner(planner)
        self._sorter = self._make_backend(backend, config, resolved_planner)
        if batch_target_rows is None:
            batch_target_rows = derive_batch_target(resolved_planner)
        if batch_target_rows < 1:
            raise ValueError(
                f"batch_target_rows must be >= 1, got {batch_target_rows}"
            )
        if max_batch_rows is None:
            max_batch_rows = 4 * batch_target_rows
        if max_queue_rows is None:
            max_queue_rows = 8 * batch_target_rows
        if max_queue_rows < batch_target_rows:
            raise ValueError(
                f"max_queue_rows ({max_queue_rows}) must be >= "
                f"batch_target_rows ({batch_target_rows})"
            )
        if linger_ms < 0:
            raise ValueError(f"linger_ms must be >= 0, got {linger_ms}")
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be > 0, got {default_deadline_ms}"
            )
        if retry_jitter < 0:
            raise ValueError(f"retry_jitter must be >= 0, got {retry_jitter}")
        self.batch_target_rows = int(batch_target_rows)
        self.max_batch_rows = int(max_batch_rows)
        self.linger_ms = float(linger_ms)
        self.max_queue_rows = int(max_queue_rows)
        self.default_deadline_ms = default_deadline_ms
        self.retry_jitter = float(retry_jitter)
        self.tenant_quotas: Dict[str, TenantQuota] = {
            name: self._as_quota(quota)
            for name, quota in (tenant_quotas or {}).items()
        }
        self.default_tenant_quota: Optional[TenantQuota] = (
            self._as_quota(default_tenant_quota)
            if default_tenant_quota is not None
            else None
        )

        # _wakeup shares _lock's mutex (Condition(self._lock)), so holding
        # either name satisfies the guarded-by contract below.
        self._lock = _sanitizer.make_lock("SortService._lock")
        self._wakeup = threading.Condition(self._lock)
        self._batcher = DynamicBatcher(  # guarded-by: _wakeup, _lock
            target_rows=self.batch_target_rows,
            max_batch_rows=self.max_batch_rows,
            linger_s=self.linger_ms / 1e3,
            tenant_weights=tenant_weights,
        )
        self._recorder = StatsRecorder(latency_window=latency_window)
        # Jitter draws happen under the service lock (submit path only).
        self._retry_rng = np.random.default_rng(retry_jitter_seed)
        self._seq = 0  # guarded-by: _wakeup, _lock
        self._closed = False  # guarded-by: _wakeup, _lock
        self._draining = False  # guarded-by: _wakeup, _lock
        self._flushing = 0  # guarded-by: _wakeup, _lock  (pending flush() calls)
        self._inflight = False  # guarded-by: _wakeup, _lock  (batch being sorted)
        self._worker = threading.Thread(
            target=self._run, name="repro-sort-service", daemon=True
        )
        self._worker.start()

    @staticmethod
    def _as_quota(quota: Union["TenantQuota", int]) -> "TenantQuota":
        if isinstance(quota, TenantQuota):
            return quota
        if isinstance(quota, int):
            return TenantQuota(max_queued_rows=quota)
        raise TypeError(
            f"tenant quota must be a TenantQuota or an int (max queued "
            f"rows); got {quota!r}"
        )

    def tenant_quota(self, tenant: str) -> Optional["TenantQuota"]:
        """The admission quota applied to ``tenant`` (``None`` = shared
        queue bound only)."""
        return self.tenant_quotas.get(tenant, self.default_tenant_quota)

    @staticmethod
    def _make_backend(backend, config: SortConfig, planner):
        if backend is None:
            from ..core.array_sort import GpuArraySort

            return GpuArraySort(config, planner=planner, workspace=True)
        if backend == "resilient":
            from ..resilience import ResilientSorter

            return ResilientSorter(config, planner=planner, sleep=None)
        if hasattr(backend, "sort"):
            return backend
        raise TypeError(
            "backend must be None, 'resilient', or an object with a "
            f"sort() method; got {backend!r}"
        )

    # -- public API --------------------------------------------------------
    def submit(
        self,
        arrays: np.ndarray,
        *,
        deadline: Optional[float] = None,
        priority: int = 0,
        copy: bool = True,
        tenant: str = "default",
    ) -> "Future[np.ndarray]":
        """Queue ``arrays`` for sorting; returns a ``Future``.

        ``arrays`` is one array (1-D, length n) or a stack of same-length
        arrays (2-D, ``(k, n)``); the future resolves to the same shape,
        every row sorted.  Do not mutate the submitted storage until the
        future resolves — the batcher stages it at dispatch time.

        ``deadline`` is seconds from now; a request that cannot be
        delivered by then fails with :class:`DeadlineExceededError`.
        ``priority`` breaks ties between equal deadlines (smaller wins).
        ``copy=False`` trades safety for speed: the future resolves to a
        zero-copy view into the service's batch buffer, valid only until
        the service dispatches its next batch.  ``tenant`` names the
        submitting tenant for quota accounting, WFQ fairness, and
        per-tenant stats; callers that never set it share the
        ``"default"`` tenant.

        Raises :class:`RejectedError` when the shared queue is full or
        the tenant's quota is exhausted (the backpressure signal — sleep
        ``retry_after`` and resubmit; ``exc.reason`` tells which bound
        was hit) and :class:`ServiceClosedError` after :meth:`close`.
        """
        staged = np.asarray(arrays)
        single = staged.ndim == 1
        if single:
            staged = staged.reshape(1, -1)
        if staged.ndim != 2:
            raise ValueError(
                f"expected one array or a (k, n) stack, got shape "
                f"{np.asarray(arrays).shape}"
            )
        if staged.shape[0] == 0 or staged.shape[1] == 0:
            raise ValueError(
                f"arrays must be non-empty, got shape {staged.shape}"
            )
        if staged.dtype.kind not in "biuf":
            raise ValueError(
                f"arrays dtype must be numeric, got {staged.dtype!r}"
            )
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be >= 0 seconds, got {deadline}")
        if not isinstance(tenant, str) or not tenant:
            raise ValueError(f"tenant must be a non-empty string, got {tenant!r}")
        if deadline is None and self.default_deadline_ms is not None:
            deadline = self.default_deadline_ms / 1e3

        future: "Future[np.ndarray]" = Future()
        with self._wakeup:
            if self._closed:
                raise ServiceClosedError("service is closed")
            rows = staged.shape[0]
            backlog = self._batcher.total_rows
            if backlog + rows > self.max_queue_rows:
                self._recorder.record_rejected(tenant=tenant, reason="queue-full")
                retry_after = self._retry_after(backlog)
                raise RejectedError(
                    f"queue full ({backlog} rows queued, limit "
                    f"{self.max_queue_rows}); retry after "
                    f"{retry_after:.3f}s",
                    retry_after=retry_after,
                    tenant=tenant,
                    reason="queue-full",
                )
            quota = self.tenant_quota(tenant)
            if quota is not None:
                tenant_rows = self._batcher.tenant_queue_rows(tenant)
                tenant_requests = self._batcher.tenant_queue_requests(tenant)
                over_rows = (
                    quota.max_queued_rows is not None
                    and tenant_rows + rows > quota.max_queued_rows
                )
                over_requests = (
                    quota.max_queued_requests is not None
                    and tenant_requests + 1 > quota.max_queued_requests
                )
                if over_rows or over_requests:
                    self._recorder.record_rejected(
                        tenant=tenant, reason="tenant-quota"
                    )
                    retry_after = self._retry_after(tenant_rows)
                    raise RejectedError(
                        f"tenant {tenant!r} quota exhausted "
                        f"({tenant_rows} rows / {tenant_requests} requests "
                        f"queued, quota {quota}); retry after "
                        f"{retry_after:.3f}s",
                        retry_after=retry_after,
                        tenant=tenant,
                        reason="tenant-quota",
                    )
            now = self._clock()
            request = QueuedRequest(
                seq=self._seq,
                arrays=staged,
                deadline=now + deadline if deadline is not None else None,
                priority=int(priority),
                enqueued_at=now,
                future=future,
                copy=bool(copy),
                single=single,
                tenant=tenant,
            )
            self._seq += 1
            self._batcher.add(request)
            self._recorder.record_submitted(tenant=tenant, rows=rows)
            self._wakeup.notify_all()
        return future

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Dispatch everything queued, below target if needed; block until
        the queue is empty and no batch is in flight.  Returns ``False``
        on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._wakeup:
            self._flushing += 1
            self._wakeup.notify_all()
            try:
                while self._batcher.total_requests or self._inflight:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            return False
                    self._wakeup.wait(remaining)
                return True
            finally:
                self._flushing -= 1

    def close(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting work and shut the worker down.

        ``drain=True`` (default) sorts and delivers everything already
        queued first; ``drain=False`` fails queued requests with
        :class:`ServiceClosedError`.  Idempotent.
        """
        with self._wakeup:
            if not self._closed:
                self._closed = True
                self._draining = bool(drain)
                dropped = [] if drain else self._batcher.drop_all()
                self._wakeup.notify_all()
            else:
                dropped = []
        for request in dropped:
            if request.future.set_running_or_notify_cancel():
                request.future.set_exception(
                    ServiceClosedError("service closed before dispatch")
                )
        self._worker.join(timeout)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def sorter(self):
        """The execution backend (single-owner: the batcher thread)."""
        return self._sorter

    def stats(self) -> ServiceStats:
        """One consistent :class:`ServiceStats` snapshot."""
        # Read the planner's decision counts outside the service lock:
        # the planner has its own lock, and nesting them here would pin
        # a lock order the sort path doesn't share.
        planner_engine_counts = self.planner_engine_counts()
        with self._lock:
            return self._recorder.snapshot(
                queue_requests=self._batcher.total_requests,
                queue_rows=self._batcher.total_rows,
                planner_engine_counts=planner_engine_counts,
            )

    def planner_engine_counts(self) -> Dict[str, Dict[str, int]]:
        """Engine-selection counts per shape class from the backend planner.

        Empty when the backend runs without a planner.  Both backends
        expose the resolved planner as ``.planner`` (``GpuArraySort``
        and ``ResilientSorter``), and every planner — adaptive or
        static — counts its ``plan()`` decisions, so this shows e.g.
        the radix engine being chosen for large-row lanes under live
        traffic.
        """
        planner = getattr(self._sorter, "planner", None)
        counts = getattr(planner, "plan_counts", None)
        if not callable(counts):
            return {}
        return counts()

    def tenant_backlog(self) -> Dict[str, int]:
        """Rows currently queued per tenant (the metrics surface)."""
        with self._lock:
            return self._batcher.tenant_backlog()

    def __enter__(self) -> "SortService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # -- internals ---------------------------------------------------------
    def _retry_after(self, backlog_rows: int) -> float:
        """Backpressure hint: seconds for the backlog to drain.

        The estimate is floored (a hint of ~0 would tell clients to spin
        on ``submit``) and stretched by a bounded random jitter so a
        fleet of simultaneously rejected clients disperses its
        resubmissions instead of stampeding back in the same tick — the
        thundering-herd failure mode of deterministic backoff hints.
        """
        floor = max(self.linger_ms / 1e3, 1e-3)
        rate = self._recorder.rows_per_s()
        if not rate or rate <= 0:
            base = 2 * floor
        else:
            base = max(floor, backlog_rows / rate)
        if self.retry_jitter > 0:
            base *= 1.0 + float(self._retry_rng.random()) * self.retry_jitter
        return base

    def _run(self) -> None:
        """Batcher thread: shed, pick a ready lane, dispatch, repeat."""
        while True:
            with self._wakeup:
                self._inflight = False
                self._wakeup.notify_all()
                now = self._clock()
                shed = self._batcher.shed_expired(now)
                for request in shed:
                    self._recorder.record_shed(1, tenant=request.tenant)
                drain = self._closed or self._flushing > 0
                lane = self._batcher.ready_lane(now, drain=drain)
                if lane is None and not shed:
                    if self._closed:
                        break
                    event_at = self._batcher.next_event_at(now)
                    timeout = None if event_at is None else max(0.0, event_at - now)
                    self._wakeup.wait(timeout)
                    continue
                requests = self._batcher.pop_batch(lane, now) if lane else []
                if requests:
                    self._inflight = True
            # Futures resolve outside the lock: a done-callback may call
            # straight back into submit()/stats().
            for request in shed:
                self._fail_shed(request, now)
            if requests:
                self._dispatch(requests)
        with self._wakeup:
            self._wakeup.notify_all()

    def _fail_shed(self, request: QueuedRequest, now: float) -> None:
        if not request.future.set_running_or_notify_cancel():
            return  # caller cancelled first; nothing to deliver
        request.future.set_exception(
            DeadlineExceededError(
                f"deadline passed after {now - request.enqueued_at:.3f}s in "
                "queue (request shed before dispatch)",
                waited=now - request.enqueued_at,
                stage="queued",
            )
        )

    def _dispatch(self, requests: List[QueuedRequest]) -> None:
        """Sort one coalesced batch and demux results to each request."""
        live = [r for r in requests if r.future.set_running_or_notify_cancel()]
        if not live:
            return
        if _sanitizer.enabled():
            # A new dispatch reuses the batch staging: every copy=False
            # view handed out by the previous dispatch is now stale.
            _sanitizer.new_epoch(("SortService.demux", id(self)))
        batch = np.concatenate([r.arrays for r in live], axis=0)
        t0 = self._clock()
        try:
            result = self._sorter.sort(batch)
        except Exception as exc:  # noqa: BLE001 - isolate, then re-raise per request
            self._isolate_failure(live, exc)
            return
        elapsed = self._clock() - t0
        self._demux(live, result, batch.shape[0])
        with self._lock:
            self._recorder.record_batch(batch.shape[0])
            self._recorder.record_throughput(batch.shape[0], elapsed)

    def _isolate_failure(self, live: List[QueuedRequest], exc: Exception) -> None:
        """A batch-level failure must only hurt the culprit request(s).

        One poisoned request (e.g. NaN rows under ``nan_policy="raise"``)
        fails the whole coalesced batch, so re-run each request alone:
        innocents get their results, culprits get the real exception.
        """
        if len(live) == 1:
            with self._lock:
                self._recorder.record_failed(tenant=live[0].tenant)
            live[0].future.set_exception(exc)
            return
        for request in live:
            try:
                result = self._sorter.sort(request.arrays)
            except Exception as isolated:  # noqa: BLE001 - delivered via the future
                with self._lock:
                    self._recorder.record_failed(tenant=request.tenant)
                request.future.set_exception(isolated)
            else:
                self._deliver(request, result.batch, result, offset=0)

    def _demux(self, live: List[QueuedRequest], result, total_rows: int) -> None:
        """Slice the fused batch result back to each caller, in order."""
        out = result.batch  # statan: scratch-view
        offset = 0
        for request in live:
            rows = out[offset : offset + request.rows]
            self._deliver(request, rows, result, offset=offset)
            offset += request.rows

    def _deliver(self, request: QueuedRequest, rows, result, *, offset: int) -> None:
        now = self._clock()
        if request.deadline is not None and now > request.deadline:
            with self._lock:
                self._recorder.record_deadline_missed(tenant=request.tenant)
            request.future.set_exception(
                DeadlineExceededError(
                    f"batch finished {now - request.deadline:.3f}s past the "
                    "deadline; result discarded",
                    waited=now - request.enqueued_at,
                    stage="sorted",
                )
            )
            return
        quarantined = np.asarray(
            getattr(result, "quarantined", ()), dtype=np.int64
        )
        if quarantined.size:
            mine = quarantined[
                (quarantined >= offset) & (quarantined < offset + request.rows)
            ]
            if mine.size:
                reasons = getattr(result, "quarantine_reasons", None) or {}
                relative = {
                    int(row - offset): reasons.get(int(row), "validation-failed")
                    for row in mine
                }
                with self._lock:
                    self._recorder.record_failed(
                        tenant=request.tenant,
                        quarantined_rows=int(mine.size),
                    )
                request.future.set_exception(
                    QuarantinedError(
                        f"{mine.size} of {request.rows} rows quarantined "
                        "by the resilient backend",
                        rows=sorted(relative),
                        reasons=relative,
                        tenant=request.tenant,
                    )
                )
                return
        # Retained results are copied out of the batch: whether or not
        # the sorter's arena backs it (result.scratch), the batch buffer
        # is serving-side staging the next dispatch will reuse.
        # copy=False callers keep the zero-copy view, valid until the
        # service's next dispatch — the StreamingSorter on_batch contract.
        payload = np.array(rows, copy=True) if request.copy else rows  # statan: scratch-view
        if not request.copy and _sanitizer.enabled():
            payload = _sanitizer.track_view(
                payload, ("SortService.demux", id(self)),
                label="SortService.submit(copy=False) result",
            )
        if request.single:
            payload = payload.reshape(-1)
        with self._lock:
            self._recorder.record_latency(
                now - request.enqueued_at, tenant=request.tenant
            )
        request.future.set_result(payload)
