"""Sort-as-a-service: async request front-end over the batch sorter.

The subsystem that connects the fused/sharded/planner machinery to real
traffic: many callers :meth:`~repro.service.SortService.submit` small
requests concurrently; a dynamic batcher coalesces them into
planner-sized ``(N, n)`` batches; one fused sort runs per batch; results
are demultiplexed back to per-caller futures.  Overload is explicit
(bounded queue + :class:`RejectedError` backpressure), lateness is
explicit (EDF scheduling + :class:`DeadlineExceededError` shedding), and
:meth:`~repro.service.SortService.stats` exposes the serving health
surface.  See ``docs/service.md``.
"""

from .batcher import DynamicBatcher, Lane, QueuedRequest
from .errors import (
    DeadlineExceededError,
    QuarantinedError,
    RejectedError,
    ServiceClosedError,
    ServiceError,
)
from .service import SortService, derive_batch_target
from .stats import ServiceStats, StatsRecorder
from .traffic import (
    TrafficReport,
    parse_size_mix,
    run_service_traffic,
    run_unbatched_traffic,
)

__all__ = [
    "DeadlineExceededError",
    "DynamicBatcher",
    "Lane",
    "QuarantinedError",
    "QueuedRequest",
    "RejectedError",
    "ServiceClosedError",
    "ServiceError",
    "ServiceStats",
    "SortService",
    "StatsRecorder",
    "TrafficReport",
    "derive_batch_target",
    "parse_size_mix",
    "run_service_traffic",
    "run_unbatched_traffic",
]
