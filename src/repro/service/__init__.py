"""Sort-as-a-service: async request front-end over the batch sorter.

The subsystem that connects the fused/sharded/planner machinery to real
traffic: many callers :meth:`~repro.service.SortService.submit` small
requests concurrently; a dynamic batcher coalesces them into
planner-sized ``(N, n)`` batches; one fused sort runs per batch; results
are demultiplexed back to per-caller futures.  Overload is explicit
(bounded queue + :class:`RejectedError` backpressure), lateness is
explicit (EDF scheduling + :class:`DeadlineExceededError` shedding), and
:meth:`~repro.service.SortService.stats` exposes the serving health
surface.  See ``docs/service.md``.

Multi-tenant QoS rides on top: per-tenant admission quotas
(:class:`TenantQuota`), weighted fair queuing in the batcher, per-tenant
counters (:class:`TenantStats`), a scrape-ready metrics surface
(:func:`collect_metrics` / :func:`render_prometheus`), and a live chaos
harness (:func:`run_scenario`) that proves the SLOs hold while a seeded
:class:`~repro.gpusim.faults.FaultPlan` injects device faults.
"""

from .batcher import DynamicBatcher, Lane, QueuedRequest
from .chaos import (
    ChaosReport,
    ChaosScenario,
    ChaosTenant,
    evaluate_slos,
    run_scenario,
)
from .errors import (
    DeadlineExceededError,
    QuarantinedError,
    RejectedError,
    ServiceClosedError,
    ServiceError,
)
from .metrics import METRICS_SCHEMA, collect_metrics, render_prometheus
from .service import SortService, TenantQuota, derive_batch_target
from .stats import ServiceStats, StatsRecorder, TenantStats
from .traffic import (
    TenantLoad,
    TrafficReport,
    parse_size_mix,
    run_multi_tenant_traffic,
    run_service_traffic,
    run_unbatched_traffic,
)

__all__ = [
    "ChaosReport",
    "ChaosScenario",
    "ChaosTenant",
    "DeadlineExceededError",
    "DynamicBatcher",
    "Lane",
    "METRICS_SCHEMA",
    "QuarantinedError",
    "QueuedRequest",
    "RejectedError",
    "ServiceClosedError",
    "ServiceError",
    "ServiceStats",
    "SortService",
    "StatsRecorder",
    "TenantLoad",
    "TenantQuota",
    "TenantStats",
    "TrafficReport",
    "collect_metrics",
    "derive_batch_target",
    "evaluate_slos",
    "parse_size_mix",
    "render_prometheus",
    "run_multi_tenant_traffic",
    "run_scenario",
    "run_service_traffic",
    "run_unbatched_traffic",
]
