"""Metrics export surface: the sort service as a scrape target.

A production SLO story needs numbers an operator can scrape, diff, and
alert on — not a Python object behind a REPL.  This module turns a
:class:`~repro.service.SortService`'s :class:`~repro.service.stats.ServiceStats`
(plus the per-tenant QoS counters, the queue's per-tenant backlog, the
backend planner's per-shape engine-selection counts, and — when the
backend is a :class:`~repro.resilience.ResilientSorter` — the
resilience roll-up and fault-injection counters) into two structured
forms:

* :func:`collect_metrics` — one JSON-ready dict (schema
  ``repro-service-metrics/v1``), what ``repro serve-bench
  --metrics-json`` dumps and what ``BENCH_chaos.json`` embeds;
* :func:`render_prometheus` — the same snapshot as Prometheus
  text-exposition lines (``repro_service_submitted_total 42``,
  per-tenant series labelled ``{tenant="alpha"}``), so the service can
  sit behind any standard scrape pipeline without new dependencies.

Collection is read-only and lock-consistent: everything is derived from
one ``service.stats()`` snapshot plus point-in-time queue/backend reads,
so scraping never perturbs serving beyond one lock acquisition.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = [
    "METRICS_SCHEMA",
    "collect_metrics",
    "escape_label_value",
    "render_prometheus",
]

METRICS_SCHEMA = "repro-service-metrics/v1"

#: Service-level counter fields exported 1:1 from ServiceStats.
_SERVICE_COUNTERS = (
    "submitted",
    "completed",
    "rejected",
    "shed",
    "deadline_missed",
    "failed",
    "batches",
    "batched_rows",
)

#: Per-tenant counter fields exported 1:1 from TenantStats.
_TENANT_COUNTERS = (
    "admitted",
    "rows_admitted",
    "rejected",
    "rejected_quota",
    "shed",
    "deadline_missed",
    "completed",
    "failed",
    "quarantined_rows",
)

#: Capacity-tier fields exported as monotonically increasing counters
#: (``_total`` suffix in the Prometheus render); the remaining
#: CapacityStats fields render as plain gauges.
_CAPACITY_TOTALS = (
    "spill_bytes_written",
    "chunks_committed",
    "chunks_resumed",
)


def collect_metrics(service, *, capacity=None) -> Dict[str, object]:
    """One structured, JSON-ready snapshot of a :class:`SortService`.

    The returned dict is self-describing (``schema`` key) and contains
    only plain JSON types, so it can be written verbatim to disk,
    embedded in a benchmark artifact, or rendered to Prometheus text
    with :func:`render_prometheus`.

    ``capacity`` optionally attaches an out-of-core capacity run to the
    snapshot — a :class:`~repro.outofcore.CapacityStats`, or anything
    carrying one on a ``stats`` attribute (a
    :class:`~repro.outofcore.CapacitySorter` or
    :class:`~repro.outofcore.CapacityResult`).  Its counters
    (``spill_bytes_written``, ``chunks_committed``, ``chunks_resumed``,
    the degradation events, …) land under a ``"capacity"`` key and in
    the Prometheus render as ``<prefix>_capacity_*`` series.
    """
    stats = service.stats()
    payload: Dict[str, object] = {
        "schema": METRICS_SCHEMA,
        "service": {name: getattr(stats, name) for name in _SERVICE_COUNTERS},
        "queue": {
            "depth_requests": stats.queue_depth_requests,
            "depth_rows": stats.queue_depth_rows,
            "max_queue_rows": service.max_queue_rows,
            "tenant_backlog_rows": service.tenant_backlog(),
        },
        "latency_ms": dict(stats.latency_ms),
        "occupancy_histogram": dict(stats.occupancy_histogram),
        "mean_occupancy_rows": stats.mean_occupancy_rows,
        "tenants": {
            name: tenant.as_dict() for name, tenant in stats.tenants.items()
        },
        "planner": {
            "engine_counts": {
                shape: dict(engines)
                for shape, engines in stats.planner_engine_counts.items()
            },
        },
    }
    backend = _describe_backend(service)
    if backend is not None:
        payload["backend"] = backend
    capacity_block = _describe_capacity(capacity)
    if capacity_block is not None:
        payload["capacity"] = capacity_block
    return payload


def _describe_capacity(capacity) -> Optional[Dict[str, object]]:
    """Normalize a capacity run (stats / sorter / result) to a dict."""
    if capacity is None:
        return None
    stats = getattr(capacity, "stats", capacity)
    as_dict = getattr(stats, "as_dict", None)
    block = as_dict() if callable(as_dict) else dict(stats)
    return {key: value for key, value in block.items()
            if isinstance(value, (int, float))}


def _describe_backend(service) -> Optional[Dict[str, object]]:
    """Resilience/fault counters when the backend exposes them."""
    sorter = getattr(service, "sorter", None)
    if sorter is None:
        return None
    info: Dict[str, object] = {"type": type(sorter).__name__}
    resilience = getattr(sorter, "stats", None)
    if resilience is not None and hasattr(resilience, "as_dict"):
        info["resilience"] = resilience.as_dict()
    plan = getattr(sorter, "fault_plan", None)
    if plan is not None and hasattr(plan, "stats"):
        info["fault_plan"] = {
            "seed": plan.seed,
            "kernel_fault_rate": plan.kernel_fault_rate,
            "corruption_rate": plan.corruption_rate,
            "oom_windows": [list(window) for window in plan.oom_windows],
            "injected": plan.stats.as_dict(),
        }
    if len(info) == 1:
        return None  # a bare GpuArraySort: nothing beyond the type name
    return info


def escape_label_value(value: str) -> str:
    """Escape one Prometheus label value for text exposition.

    The text format allows any UTF-8 inside ``label="..."`` except that
    backslash, double-quote, and line-feed must be escaped as ``\\\\``,
    ``\\"``, and ``\\n`` — in that order, backslash first, or an input
    like ``a"b`` would double-escape.  Tenant names are caller-supplied
    strings, so every interpolated label value in this module (and in
    :mod:`repro.fleet.metrics`) goes through here; the property tests in
    ``tests/test_metrics_escaping.py`` feed quotes/newlines/backslashes
    through a real render and assert the exposition stays parseable and
    the value round-trips.
    """
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


# Internal alias, kept short at the many interpolation sites below.
_label = escape_label_value


def _flatten(payload: object, prefix: str, lines: List[str],
             labels: str = "") -> None:
    """Emit ``prefix{labels} value`` lines for every numeric leaf."""
    if isinstance(payload, dict):
        for key in sorted(payload):
            _flatten(payload[key], f"{prefix}_{key}", lines, labels)
    elif isinstance(payload, bool):
        lines.append(f"{prefix}{labels} {int(payload)}")
    elif isinstance(payload, (int, float)):
        lines.append(f"{prefix}{labels} {payload}")
    # strings / lists are descriptive, not scrapeable — skipped


def render_prometheus(metrics: Dict[str, object],
                      prefix: str = "repro_service") -> str:
    """Render a :func:`collect_metrics` snapshot as Prometheus text.

    Scalar counters become ``<prefix>_<path> value`` lines; per-tenant
    counters carry a ``tenant`` label; latency percentiles carry a
    ``quantile`` label.  The output ends with a newline, ready to serve
    from a ``/metrics`` endpoint or write to a textfile-collector drop
    directory.
    """
    lines: List[str] = []
    service = metrics.get("service", {})
    if isinstance(service, dict):
        for name in sorted(service):
            lines.append(f"{prefix}_{name}_total {service[name]}")
    queue = metrics.get("queue", {})
    if isinstance(queue, dict):
        for name in ("depth_requests", "depth_rows", "max_queue_rows"):
            if name in queue:
                lines.append(f"{prefix}_queue_{name} {queue[name]}")
        backlog = queue.get("tenant_backlog_rows", {})
        if isinstance(backlog, dict):
            for tenant in sorted(backlog):
                lines.append(
                    f'{prefix}_queue_tenant_backlog_rows'
                    f'{{tenant="{_label(tenant)}"}} {backlog[tenant]}'
                )
    latency = metrics.get("latency_ms", {})
    if isinstance(latency, dict):
        for quantile in sorted(latency):
            lines.append(
                f'{prefix}_latency_ms{{quantile="{_label(quantile)}"}} '
                f"{latency[quantile]}"
            )
    tenants = metrics.get("tenants", {})
    if isinstance(tenants, dict):
        for tenant in sorted(tenants):
            block = tenants[tenant]
            if not isinstance(block, dict):
                continue
            label = f'{{tenant="{_label(tenant)}"}}'
            for name in _TENANT_COUNTERS:
                if name in block:
                    lines.append(
                        f"{prefix}_tenant_{name}_total{label} {block[name]}"
                    )
            if "rejection_rate" in block:
                lines.append(
                    f"{prefix}_tenant_rejection_rate{label} "
                    f"{block['rejection_rate']}"
                )
            tenant_latency = block.get("latency_ms", {})
            if isinstance(tenant_latency, dict):
                for quantile in sorted(tenant_latency):
                    lines.append(
                        f'{prefix}_tenant_latency_ms{{tenant='
                        f'"{_label(tenant)}",quantile="{_label(quantile)}"}} '
                        f"{tenant_latency[quantile]}"
                    )
    planner = metrics.get("planner", {})
    if isinstance(planner, dict):
        engine_counts = planner.get("engine_counts", {})
        if isinstance(engine_counts, dict):
            for shape in sorted(engine_counts):
                engines = engine_counts[shape]
                if not isinstance(engines, dict):
                    continue
                for engine in sorted(engines):
                    lines.append(
                        f'{prefix}_planner_selected_total'
                        f'{{shape_class="{_label(shape)}",'
                        f'engine="{_label(engine)}"}} {engines[engine]}'
                    )
    backend = metrics.get("backend")
    if isinstance(backend, dict):
        _flatten(backend.get("resilience", {}), f"{prefix}_resilience", lines)
        fault_plan = backend.get("fault_plan")
        if isinstance(fault_plan, dict):
            _flatten(fault_plan.get("injected", {}),
                     f"{prefix}_faults_injected", lines)
    capacity = metrics.get("capacity")
    if isinstance(capacity, dict):
        for name in sorted(capacity):
            value = capacity[name]
            if not isinstance(value, (int, float)):
                continue
            suffix = "_total" if name in _CAPACITY_TOTALS else ""
            lines.append(f"{prefix}_capacity_{name}{suffix} {value}")
    return "\n".join(lines) + "\n"
