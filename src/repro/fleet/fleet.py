"""`SortFleet`: the multi-process serving tier.

One :class:`~repro.service.SortService` tops out at one Python process —
one GIL, one planner, one arena.  :class:`SortFleet` keeps the service's
entire caller contract (``submit(arrays, deadline=, priority=, tenant=)
-> Future``, typed errors, ``flush``/``close``/context manager) and puts
**N worker processes** behind it, each owning a full planner +
``ScratchArena`` + ``SortService`` stack, the way the paper's multi-GPU
relatives partition arrays across devices.

Request path::

    submit ──> FleetRouter (lane affinity + least-outstanding-rows)
           ──> two-region shm slab [input | output], input staged once
           ──> worker process: local SortService batches, sorts, writes
               the output half, answers on the shared response queue
           ──> collector thread: copy-out, resolve the caller's Future

Design points, each load-bearing:

* **Lane-affinity routing.**  Requests are bucketed by the same
  ``(row_len, dtype)`` lane key the in-process batcher uses, and a lane
  sticks to one worker while load allows — so a worker's batcher sees
  full lanes and its planner keeps hitting one calibrated shape class.
  Load wins when they conflict (least-outstanding-rows spill).
* **Backpressure.**  When no worker can admit a request, ``submit``
  raises :class:`~repro.service.errors.RejectedError` whose
  ``retry_after`` is the **most-loaded** worker's drain estimate,
  stretched by the router's seeded jitter — deterministic under test,
  dispersed in production.
* **Two-region slabs + failover.**  The worker never writes the input
  half of a request's shm slab, so the parent always holds a pristine
  copy of every in-flight request.  A worker that dies (process exit
  *or* heartbeat silence past the liveness deadline) is drained: its
  pending requests are re-dispatched to survivors — never dropped — and
  if **no** worker survives, the parent itself sorts them through the
  resilience layer (:class:`~repro.resilience.ResilientSorter`).
* **Shared calibration.**  The parent pre-warms the planner calibration
  cache once before forking, so N workers load one host profile instead
  of racing N redundant micro-calibrations.

Like the service, the fleet is clock-injectable only where it matters
for tests (the router is fully clock-free); process liveness necessarily
reads the real monotonic clock.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import threading
import time
from concurrent.futures import Future
from multiprocessing import shared_memory
from typing import Dict, List, Optional

import numpy as np

from ..core.config import DEFAULT_CONFIG, SortConfig
from ..statan import runtime as _sanitizer
from ..service.errors import (
    DeadlineExceededError,
    RejectedError,
    ServiceClosedError,
)
from ..service.service import DEFAULT_RETRY_JITTER, derive_batch_target
from ..service.stats import StatsRecorder
from .router import (
    DEFAULT_SPILL_FACTOR,
    DEFAULT_SPILL_SLACK_ROWS,
    FleetRouter,
)
from .stats import FleetStats, WorkerState
from .worker import WorkerConfig, rebuild_error, worker_main

__all__ = ["SortFleet", "DEFAULT_WORKERS", "DEFAULT_MAX_WORKER_QUEUE_ROWS"]

#: Worker processes when the caller does not choose.
DEFAULT_WORKERS = 2

#: Per-worker outstanding-rows admission bound (router-side).
DEFAULT_MAX_WORKER_QUEUE_ROWS = 8192

#: Re-dispatch attempts per request before the fleet gives up and
#: surfaces the underlying error (a backstop against dispatch loops,
#: far above anything a healthy fleet hits).
MAX_REDISPATCHES = 16


class _PendingRequest:
    """Parent-side record of one in-flight request (fields guarded by
    the fleet lock until the record is popped from ``_pending``; the
    popping thread then owns it exclusively)."""

    __slots__ = (
        "req_id", "future", "worker_id", "shm", "rows", "row_len",
        "dtype", "deadline_abs", "priority", "tenant", "single",
        "submitted_at", "redispatches",
    )

    def __init__(
        self, *, req_id, future, worker_id, shm, rows, row_len, dtype,
        deadline_abs, priority, tenant, single, submitted_at,
    ) -> None:
        self.req_id = req_id
        self.future = future
        self.worker_id = worker_id
        self.shm = shm
        self.rows = rows
        self.row_len = row_len
        self.dtype = dtype
        self.deadline_abs = deadline_abs
        self.priority = priority
        self.tenant = tenant
        self.single = single
        self.submitted_at = submitted_at
        self.redispatches = 0

    def input_view(self) -> np.ndarray:
        return np.ndarray(
            (self.rows, self.row_len), dtype=self.dtype, buffer=self.shm.buf
        )

    def output_view(self) -> np.ndarray:
        offset = self.rows * self.row_len * self.dtype.itemsize
        return np.ndarray(
            (self.rows, self.row_len), dtype=self.dtype,
            buffer=self.shm.buf, offset=offset,
        )

    def release_slab(self) -> None:
        self.shm.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:  # already reaped
            pass


class _WorkerHandle:
    """Parent-side bookkeeping for one worker process (all mutable
    fields guarded by the owning fleet's lock)."""

    __slots__ = (
        "worker_id", "process", "request_q", "alive", "stopped",
        "last_hb", "last_stats", "dispatched", "completed", "failed",
        "redispatched",
    )

    def __init__(self, worker_id, process, request_q) -> None:
        self.worker_id = worker_id
        self.process = process
        self.request_q = request_q
        self.alive = True
        self.stopped = False
        self.last_hb: Optional[float] = None
        self.last_stats: Dict[str, object] = {}
        self.dispatched = 0
        self.completed = 0
        self.failed = 0
        self.redispatched = 0


@_sanitizer.sanitize_guarded
class SortFleet:
    """Sharded, failover-capable front-end over N sort-service processes.

    Parameters
    ----------
    workers:
        Worker processes to fork (default :data:`DEFAULT_WORKERS`).
    config / planner / backend:
        Passed to each worker's local :class:`~repro.service.SortService`
        (``planner`` as a *spec* string — each worker resolves its own
        instance from the shared pre-warmed calibration cache).
    batch_target_rows / max_batch_rows / linger_ms / worker_max_queue_rows:
        Per-worker service batching knobs.  ``worker_max_queue_rows``
        defaults to ``4 * max_worker_queue_rows`` so a healthy worker
        never rejects what the router admitted (failover re-dispatch
        included).
    max_worker_queue_rows:
        The router's per-worker outstanding-rows admission bound — the
        fleet's capacity knob.  Requests beyond it are rejected with a
        backpressure hint.
    default_deadline_ms:
        Deadline applied to requests submitted without one.
    heartbeat_s / liveness_s:
        Worker heartbeat cadence and the silence threshold past which a
        live-looking process is declared dead and drained.
    retry_jitter / retry_jitter_seed:
        Jitter fraction and RNG seed for ``retry_after`` hints (seeded =
        deterministic backpressure under test, as in ``SortService``).
    """

    def __init__(
        self,
        *,
        workers: int = DEFAULT_WORKERS,
        config: SortConfig = DEFAULT_CONFIG,
        planner: Optional[str] = None,
        backend: Optional[str] = None,
        batch_target_rows: Optional[int] = None,
        max_batch_rows: Optional[int] = None,
        linger_ms: float = 2.0,
        worker_max_queue_rows: Optional[int] = None,
        max_worker_queue_rows: int = DEFAULT_MAX_WORKER_QUEUE_ROWS,
        default_deadline_ms: Optional[float] = None,
        latency_window: int = 4096,
        heartbeat_s: float = 0.05,
        liveness_s: float = 1.0,
        retry_jitter: float = DEFAULT_RETRY_JITTER,
        retry_jitter_seed: Optional[int] = None,
        spill_factor: float = DEFAULT_SPILL_FACTOR,
        spill_slack_rows: int = DEFAULT_SPILL_SLACK_ROWS,
        start_timeout_s: float = 30.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be > 0, got {heartbeat_s}")
        if liveness_s <= heartbeat_s:
            raise ValueError(
                f"liveness_s ({liveness_s}) must exceed heartbeat_s "
                f"({heartbeat_s}) or every worker looks dead"
            )
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be > 0, got {default_deadline_ms}"
            )
        self.workers_total = int(workers)
        self.config = config
        self.default_deadline_ms = default_deadline_ms
        self.heartbeat_s = float(heartbeat_s)
        self.liveness_s = float(liveness_s)
        self.max_worker_queue_rows = int(max_worker_queue_rows)
        if worker_max_queue_rows is None:
            worker_max_queue_rows = 4 * self.max_worker_queue_rows
        self._planner_spec = planner
        self._backend_spec = backend

        # Shared calibration: warm the on-disk profile once, pre-fork,
        # so every worker's planner loads it instead of re-calibrating.
        if planner is not None:
            self._prewarm_calibration()

        self._router = FleetRouter(
            max_worker_queue_rows=self.max_worker_queue_rows,
            spill_factor=spill_factor,
            spill_slack_rows=spill_slack_rows,
            linger_s=float(linger_ms) / 1e3,
            retry_jitter=retry_jitter,
            retry_jitter_seed=retry_jitter_seed,
        )
        self._recorder = StatsRecorder(latency_window=latency_window)
        # The worker's service requires max_queue_rows >= its batch
        # target; with a small router bound (hence a small derived
        # worker queue) the service-side default target (up to 8192)
        # would fail that check *inside the child*.  Resolve the target
        # here and clamp it to the worker queue so every worker config
        # we ship is constructible.
        if batch_target_rows is None:
            batch_target_rows = derive_batch_target(None)
        batch_target_rows = max(
            1, min(int(batch_target_rows), int(worker_max_queue_rows))
        )
        worker_cfg = WorkerConfig(
            config=config,
            planner=planner,
            backend=backend,
            batch_target_rows=batch_target_rows,
            max_batch_rows=max_batch_rows,
            linger_ms=float(linger_ms),
            max_queue_rows=int(worker_max_queue_rows),
            latency_window=latency_window,
            heartbeat_s=float(heartbeat_s),
        )

        # Fork before any parent thread starts: a forked child must not
        # inherit a half-held lock from a running collector.
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        # Spawn the shm resource tracker *before* forking so every
        # worker inherits the parent's tracker instead of starting its
        # own; a worker-private tracker would warn about (and try to
        # unlink) slab names the parent already reaped.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except (ImportError, AttributeError, OSError):
            pass  # best-effort: without it teardown is noisier, not wrong
        self._response_q = self._ctx.Queue()

        # _wakeup shares _lock's mutex (Condition(self._lock)), so
        # holding either name satisfies the guarded-by contract below.
        self._lock = _sanitizer.make_lock("SortFleet._lock")
        self._wakeup = threading.Condition(self._lock)
        self._handles: Dict[int, _WorkerHandle] = {}  # guarded-by: _wakeup, _lock
        self._pending: Dict[int, _PendingRequest] = {}  # guarded-by: _wakeup, _lock
        self._seq = 0  # guarded-by: _wakeup, _lock
        self._closed = False  # guarded-by: _wakeup, _lock
        self._stop_collector = False  # guarded-by: _wakeup, _lock
        self._failovers = 0  # guarded-by: _wakeup, _lock
        self._redispatched = 0  # guarded-by: _wakeup, _lock
        self._parent_fallbacks = 0  # guarded-by: _wakeup, _lock
        self._fallback_sorter = None  # lazy ResilientSorter (collector-only)

        for worker_id in range(self.workers_total):
            request_q = self._ctx.SimpleQueue()
            process = self._ctx.Process(
                target=worker_main,
                args=(worker_id, request_q, self._response_q, worker_cfg),
                name=f"repro-fleet-worker-{worker_id}",
                daemon=True,
            )
            process.start()
            self._handles[worker_id] = _WorkerHandle(
                worker_id, process, request_q
            )
        self._await_ready(start_timeout_s)
        for worker_id in self._handles:
            self._router.add_worker(worker_id)

        self._collector = threading.Thread(
            target=self._collect, name="repro-fleet-collector", daemon=True
        )
        self._collector.start()

    @staticmethod
    def _prewarm_calibration() -> None:
        try:
            from ..planner.calibrate import load_or_calibrate

            load_or_calibrate()
        except Exception:
            # Calibration is an optimization; workers that miss the
            # cache calibrate themselves (slower first batch, still
            # correct).  Count nothing: there is no recorder yet.
            return

    def _await_ready(self, timeout_s: float) -> None:
        """Block until every worker posts ``("ready", id)``.

        Runs pre-collector (single-threaded), so guarded state is still
        private to the constructor; early heartbeats that interleave are
        folded in rather than dropped.
        """
        ready: set = set()
        deadline = time.monotonic() + timeout_s
        while len(ready) < self.workers_total:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._abort_start()
                raise TimeoutError(
                    f"fleet start timed out: {len(ready)} of "
                    f"{self.workers_total} workers ready after {timeout_s}s"
                )
            try:
                msg = self._response_q.get(timeout=min(remaining, 0.2))
            except queue_mod.Empty:
                with self._lock:
                    dead = [
                        h.worker_id for h in self._handles.values()
                        if h.worker_id not in ready
                        and not h.process.is_alive()
                    ]
                if dead:
                    self._abort_start()
                    raise RuntimeError(
                        f"fleet worker(s) {dead} died during startup "
                        "(see the worker traceback above)"
                    )
                continue
            with self._lock:
                if msg[0] == "ready":
                    ready.add(msg[1])
                    self._handles[msg[1]].last_hb = time.monotonic()
                elif msg[0] == "hb":
                    handle = self._handles.get(msg[1])
                    if handle is not None:
                        handle.last_hb = time.monotonic()
                        handle.last_stats = msg[3]

    def _abort_start(self) -> None:
        with self._lock:
            handles = list(self._handles.values())
        for handle in handles:
            if handle.process.is_alive():
                handle.process.kill()

    # -- public API --------------------------------------------------------
    def submit(
        self,
        arrays: np.ndarray,
        *,
        deadline: Optional[float] = None,
        priority: int = 0,
        copy: bool = True,
        tenant: str = "default",
    ) -> "Future[np.ndarray]":
        """Queue ``arrays`` for sorting on some worker; returns a Future.

        The contract is :meth:`repro.service.SortService.submit`'s —
        same shapes, same deadline/priority/tenant semantics, same typed
        errors — so anything written against the service (including
        :mod:`repro.service.traffic`'s load generators) drives a fleet
        unchanged.  One difference: results are always owned copies
        (``copy`` is accepted for signature parity and ignored), because
        every request round-trips through a per-request shared-memory
        slab rather than a shared batch buffer.

        Raises :class:`RejectedError` when no worker can admit the
        request — ``retry_after`` is the most-loaded worker's jittered
        drain estimate — and :class:`ServiceClosedError` after
        :meth:`close`.  A fleet whose workers have *all* died rejects
        with ``reason="no-workers"`` (the page-an-operator signal).
        """
        staged = np.asarray(arrays)
        single = staged.ndim == 1
        if single:
            staged = staged.reshape(1, -1)
        if staged.ndim != 2:
            raise ValueError(
                f"expected one array or a (k, n) stack, got shape "
                f"{np.asarray(arrays).shape}"
            )
        if staged.shape[0] == 0 or staged.shape[1] == 0:
            raise ValueError(
                f"arrays must be non-empty, got shape {staged.shape}"
            )
        if staged.dtype.kind not in "biuf":
            raise ValueError(
                f"arrays dtype must be numeric, got {staged.dtype!r}"
            )
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be >= 0 seconds, got {deadline}")
        if not isinstance(tenant, str) or not tenant:
            raise ValueError(f"tenant must be a non-empty string, got {tenant!r}")
        if deadline is None and self.default_deadline_ms is not None:
            deadline = self.default_deadline_ms / 1e3

        rows, row_len = staged.shape
        lane_key = (row_len, staged.dtype.str)
        future: "Future[np.ndarray]" = Future()
        with self._wakeup:
            if self._closed:
                raise ServiceClosedError("fleet is closed")
            worker_id = self._router.route(lane_key, rows)
            if worker_id is None:
                self._recorder.record_rejected(tenant=tenant)
                alive = self._router.alive_workers()
                retry_after = self._router.retry_after(
                    self._recorder.rows_per_s()
                )
                if not alive:
                    raise RejectedError(
                        "no live workers in the fleet; retry after "
                        f"{retry_after:.3f}s",
                        retry_after=retry_after,
                        tenant=tenant,
                        reason="no-workers",
                    )
                raise RejectedError(
                    f"fleet saturated ({self._router.outstanding_rows()} "
                    f"rows outstanding over {len(alive)} workers, "
                    f"{self.max_worker_queue_rows} rows/worker bound); "
                    f"retry after {retry_after:.3f}s",
                    retry_after=retry_after,
                    tenant=tenant,
                    reason="queue-full",
                )
            req_id = self._seq
            self._seq += 1
            handle = self._handles[worker_id]
            now = time.monotonic()
            shm = shared_memory.SharedMemory(
                create=True, size=2 * staged.nbytes
            )
            record = _PendingRequest(
                req_id=req_id,
                future=future,
                worker_id=worker_id,
                shm=shm,
                rows=rows,
                row_len=row_len,
                dtype=staged.dtype,
                deadline_abs=now + deadline if deadline is not None else None,
                priority=int(priority),
                tenant=tenant,
                single=single,
                submitted_at=now,
            )
            record.input_view()[:] = staged
            self._pending[req_id] = record
            handle.dispatched += 1
            self._recorder.record_submitted(tenant=tenant, rows=rows)
        try:
            handle.request_q.put((
                "sort", req_id, shm.name, rows, row_len, staged.dtype.str,
                deadline, int(priority), tenant,
            ))
        except (OSError, ValueError):
            # The chosen worker died between routing and dispatch (its
            # queue pipe is gone).  Liveness will reap it; this request
            # fails over right now instead of waiting for that tick.
            with self._wakeup:
                self._pending.pop(req_id, None)
            self._router.record_done(worker_id, rows)
            self._dispatch_failover([record], from_worker=worker_id)
        return future

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Block until nothing is in flight anywhere in the fleet.
        Returns ``False`` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._wakeup:
            while self._pending:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._wakeup.wait(remaining)
            return True

    def close(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting work, stop the workers, reap everything.

        ``drain=True`` (default) waits for in-flight requests to finish
        first; ``drain=False`` fails them with
        :class:`ServiceClosedError`.  Idempotent.
        """
        with self._wakeup:
            if self._closed:
                already = True
            else:
                already = False
                self._closed = True
            handles = list(self._handles.values())
        if already:
            return
        if drain:
            self.flush(timeout)
        dropped: List[_PendingRequest] = []
        with self._wakeup:
            if self._pending:
                dropped = list(self._pending.values())
                self._pending.clear()
            for handle in handles:
                if handle.alive:
                    try:
                        handle.request_q.put(("stop",))
                    except (OSError, ValueError):  # worker already gone
                        handle.alive = False
        for record in dropped:
            self._router.record_done(record.worker_id, record.rows)
            record.release_slab()
            if record.future.set_running_or_notify_cancel():
                record.future.set_exception(
                    ServiceClosedError("fleet closed before completion")
                )
        for handle in handles:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=5.0)
        with self._wakeup:
            self._stop_collector = True
            for handle in handles:
                handle.alive = False
            self._wakeup.notify_all()
        self._collector.join(timeout=5.0)
        self._response_q.close()
        self._response_q.join_thread()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def worker_ids(self) -> List[int]:
        with self._lock:
            return sorted(self._handles)

    def workers_alive(self) -> List[int]:
        """Ids of workers currently alive and routable."""
        return self._router.alive_workers()

    def kill_worker(self, worker_id: int) -> None:
        """SIGKILL one worker — the chaos/failover test hook.

        The collector notices the death on its next liveness tick and
        drains the worker's in-flight requests to survivors.
        """
        with self._lock:
            handle = self._handles.get(worker_id)
        if handle is None:
            raise KeyError(f"no such worker: {worker_id}")
        handle.process.kill()

    def stats(self) -> FleetStats:
        """One consistent :class:`FleetStats` snapshot."""
        now = time.monotonic()
        router_view = self._router.snapshot()
        with self._lock:
            frontend = self._recorder.snapshot(
                queue_requests=len(self._pending),
                queue_rows=sum(r.rows for r in self._pending.values()),
                planner_engine_counts=self._merged_planner_counts_locked(),
            )
            workers: Dict[int, WorkerState] = {}
            for worker_id, handle in sorted(self._handles.items()):
                alive, out_rows, out_reqs = router_view.get(
                    worker_id, (False, 0, 0)
                )
                workers[worker_id] = WorkerState(
                    worker_id=worker_id,
                    pid=handle.process.pid,
                    alive=handle.alive and alive,
                    outstanding_rows=out_rows,
                    outstanding_requests=out_reqs,
                    dispatched=handle.dispatched,
                    completed=handle.completed,
                    failed=handle.failed,
                    redispatched=handle.redispatched,
                    heartbeat_age_s=(
                        now - handle.last_hb
                        if handle.last_hb is not None
                        else None
                    ),
                    service=dict(handle.last_stats),
                )
            return FleetStats(
                frontend=frontend,
                workers=workers,
                workers_total=self.workers_total,
                workers_alive=sum(1 for w in workers.values() if w.alive),
                failovers=self._failovers,
                redispatched=self._redispatched,
                parent_fallbacks=self._parent_fallbacks,
            )

    def _merged_planner_counts_locked(self) -> Dict[str, Dict[str, int]]:
        """Sum the per-worker planner engine counts from heartbeats."""
        merged: Dict[str, Dict[str, int]] = {}
        for handle in self._handles.values():
            counts = handle.last_stats.get("planner_engine_counts", {})
            if not isinstance(counts, dict):
                continue
            for shape, engines in counts.items():
                if not isinstance(engines, dict):
                    continue
                into = merged.setdefault(str(shape), {})
                for engine, n in engines.items():
                    into[str(engine)] = into.get(str(engine), 0) + int(n)
        return merged

    def __enter__(self) -> "SortFleet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # -- collector thread --------------------------------------------------
    def _collect(self) -> None:
        """Resolve futures, track heartbeats, detect and drain deaths."""
        tick = self.heartbeat_s
        while True:
            with self._lock:
                if self._stop_collector:
                    return
            try:
                msg = self._response_q.get(timeout=tick)
            except queue_mod.Empty:
                msg = None
            except (OSError, ValueError):
                return  # queue torn down under us: close() is reaping
            if msg is not None:
                kind = msg[0]
                if kind == "done":
                    self._complete(msg[1], msg[2])
                elif kind == "error":
                    self._fail(msg[1], msg[2], msg[3], msg[4], msg[5])
                elif kind == "hb":
                    self._note_heartbeat(msg[1], msg[3])
                elif kind == "stopped":
                    self._note_stopped(msg[1])
                # "ready" duplicates are ignored
            self._check_liveness()

    def _pop_pending(self, req_id: int, worker_id: int) -> Optional[_PendingRequest]:
        """Claim a pending record for delivery (None = already handled,
        e.g. completed by a survivor after a stale double-dispatch)."""
        with self._wakeup:
            record = self._pending.get(req_id)
            if record is None or record.worker_id != worker_id:
                return None
            del self._pending[req_id]
            self._wakeup.notify_all()
            return record

    def _complete(self, req_id: int, worker_id: int) -> None:
        record = self._pop_pending(req_id, worker_id)
        if record is None:
            return
        with self._lock:
            handle = self._handles.get(worker_id)
            if handle is not None:
                handle.completed += 1
        self._router.record_done(worker_id, record.rows)
        payload = np.array(record.output_view(), copy=True)
        record.release_slab()
        elapsed = time.monotonic() - record.submitted_at
        self._recorder.record_latency(elapsed, tenant=record.tenant)
        self._recorder.record_throughput(record.rows, elapsed)
        if record.future.set_running_or_notify_cancel():
            record.future.set_result(
                payload[0] if record.single else payload
            )

    def _fail(
        self, req_id: int, worker_id: int, kind: str, message: str, fields
    ) -> None:
        if kind == "rejected":
            # A healthy worker refusing router-admitted work means the
            # failover path overfilled it; requeue rather than surface —
            # the input slab is pristine by construction.
            if self._requeue_rejected(req_id, worker_id):
                return
        record = self._pop_pending(req_id, worker_id)
        if record is None:
            return
        with self._lock:
            handle = self._handles.get(worker_id)
            if handle is not None:
                handle.failed += 1
        self._router.record_done(worker_id, record.rows)
        record.release_slab()
        if kind == "deadline" and str(fields.get("stage", "")) == "queued":
            self._recorder.record_shed(1, tenant=record.tenant)
        elif kind == "deadline":
            self._recorder.record_deadline_missed(tenant=record.tenant)
        elif kind == "quarantined":
            self._recorder.record_failed(
                tenant=record.tenant,
                quarantined_rows=len(fields.get("rows", ())),
            )
        else:
            self._recorder.record_failed(tenant=record.tenant)
        if record.future.set_running_or_notify_cancel():
            record.future.set_exception(rebuild_error(kind, message, fields))

    def _requeue_rejected(self, req_id: int, worker_id: int) -> bool:
        """Re-dispatch a worker-side rejection; False = give up (caps)."""
        with self._wakeup:
            record = self._pending.get(req_id)
            if record is None or record.worker_id != worker_id:
                return True  # raced with failover; nothing to do here
            if record.redispatches >= MAX_REDISPATCHES:
                return False
            del self._pending[req_id]
        self._router.record_done(worker_id, record.rows)
        self._dispatch_failover([record], from_worker=worker_id)
        return True

    def _note_heartbeat(self, worker_id: int, stats: Dict[str, object]) -> None:
        with self._lock:
            handle = self._handles.get(worker_id)
            if handle is not None:
                handle.last_hb = time.monotonic()
                handle.last_stats = stats

    def _note_stopped(self, worker_id: int) -> None:
        with self._wakeup:
            handle = self._handles.get(worker_id)
            if handle is not None:
                handle.stopped = True
                handle.alive = False
            self._wakeup.notify_all()

    def _check_liveness(self) -> None:
        """Declare dead any worker whose process exited or whose
        heartbeat is older than the liveness deadline; drain each."""
        now = time.monotonic()
        suspects: List[_WorkerHandle] = []
        with self._lock:
            if self._closed:
                return  # close() owns worker teardown
            for handle in self._handles.values():
                if not handle.alive:
                    continue
                if not handle.process.is_alive():
                    suspects.append(handle)
                elif (
                    handle.last_hb is not None
                    and now - handle.last_hb > self.liveness_s
                ):
                    suspects.append(handle)
        for handle in suspects:
            self._fail_over(handle)

    def _fail_over(self, handle: _WorkerHandle) -> None:
        """Drain a dead worker: re-dispatch its in-flight requests."""
        with self._wakeup:
            if not handle.alive:
                return
            handle.alive = False
            self._failovers += 1
            victims = [
                record for record in self._pending.values()
                if record.worker_id == handle.worker_id
            ]
            for record in victims:
                del self._pending[record.req_id]
        self._router.mark_dead(handle.worker_id)
        self._router.forget_outstanding(handle.worker_id)
        # A stalled-but-running process (liveness expiry) is killed so it
        # cannot later double-complete a request a survivor re-sorts.
        if handle.process.is_alive():
            handle.process.kill()
        if victims:
            self._dispatch_failover(victims, from_worker=handle.worker_id)

    def _dispatch_failover(
        self, records: List[_PendingRequest], *, from_worker: int
    ) -> None:
        """Land orphaned requests on survivors (or sort them here)."""
        now = time.monotonic()
        for record in records:
            if record.deadline_abs is not None and now >= record.deadline_abs:
                record.release_slab()
                self._recorder.record_shed(1, tenant=record.tenant)
                if record.future.set_running_or_notify_cancel():
                    record.future.set_exception(DeadlineExceededError(
                        "deadline passed while failing over from worker "
                        f"{from_worker}",
                        waited=now - record.submitted_at,
                        stage="queued",
                    ))
                continue
            lane_key = (record.row_len, record.dtype.str)
            target = self._router.route_failover(lane_key, record.rows)
            if target is None:
                self._parent_sort(record)
                continue
            remaining = (
                record.deadline_abs - now
                if record.deadline_abs is not None
                else None
            )
            with self._wakeup:
                handle = self._handles.get(target)
                if handle is None:
                    put_failed = True
                else:
                    record.worker_id = target
                    record.redispatches += 1
                    self._redispatched += 1
                    self._pending[record.req_id] = record
                    handle.dispatched += 1
                    victim_handle = self._handles.get(from_worker)
                    if victim_handle is not None:
                        victim_handle.redispatched += 1
                    try:
                        handle.request_q.put((
                            "sort", record.req_id, record.shm.name,
                            record.rows, record.row_len, record.dtype.str,
                            remaining, record.priority, record.tenant,
                        ))
                        put_failed = False
                    except (OSError, ValueError):  # target died under us
                        del self._pending[record.req_id]
                        put_failed = True
            if put_failed:
                self._router.record_done(target, record.rows)
                self._parent_sort(record)

    def _parent_sort(self, record: _PendingRequest) -> None:
        """Last resort — no surviving worker: sort in the parent through
        the resilience layer so accepted work is still never dropped."""
        with self._lock:
            self._parent_fallbacks += 1
        if self._fallback_sorter is None:
            from ..resilience import ResilientSorter

            self._fallback_sorter = ResilientSorter(self.config, sleep=None)
        batch = np.array(record.input_view(), copy=True)
        record.release_slab()
        try:
            result = self._fallback_sorter.sort(batch)
            payload = np.array(result.batch, copy=True)
        except Exception as exc:
            self._recorder.record_failed(tenant=record.tenant)
            if record.future.set_running_or_notify_cancel():
                record.future.set_exception(
                    RuntimeError(f"parent fallback sort failed: {exc}")
                )
            return
        elapsed = time.monotonic() - record.submitted_at
        self._recorder.record_latency(elapsed, tenant=record.tenant)
        self._recorder.record_throughput(record.rows, elapsed)
        if record.future.set_running_or_notify_cancel():
            record.future.set_result(
                payload[0] if record.single else payload
            )
