"""Observability surface of the sort fleet.

Two layers, mirroring the tentpole's two tiers:

* the **front-end** — admission, routing, completion, and latency as
  seen by callers of :meth:`~repro.fleet.SortFleet.submit`.  The fleet
  reuses the service's :class:`~repro.service.stats.StatsRecorder`
  wholesale for this (same counters, same bounded latency ring, same
  per-tenant slices), so fleet-level and service-level snapshots stay
  directly comparable;
* the **workers** — one :class:`WorkerState` per worker process:
  liveness, outstanding work, dispatch/completion/failover tallies, and
  the worker's own last-heartbeat :class:`~repro.service.stats.ServiceStats`
  snapshot as a plain dict (it crossed the process boundary as data).

:class:`FleetStats` is the immutable roll-up of both, what
:meth:`SortFleet.stats` returns and what :mod:`repro.fleet.metrics`
exports as JSON and Prometheus text.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..service.stats import ServiceStats

__all__ = ["FleetStats", "WorkerState"]


@dataclasses.dataclass(frozen=True)
class WorkerState:
    """One worker process as the parent sees it."""

    worker_id: int
    pid: Optional[int]
    alive: bool
    #: Rows dispatched to this worker and not yet completed/failed.
    outstanding_rows: int
    #: Requests dispatched and not yet completed/failed.
    outstanding_requests: int
    #: Requests ever dispatched to this worker (including re-dispatches
    #: *onto* it from a dead peer).
    dispatched: int
    #: Requests this worker completed successfully.
    completed: int
    #: Requests this worker failed with a typed error.
    failed: int
    #: Requests taken *from* this worker when it died and re-dispatched.
    redispatched: int
    #: Seconds since the last heartbeat (None before the first one).
    heartbeat_age_s: Optional[float]
    #: The worker's own ServiceStats from its last heartbeat, as a dict
    #: (empty before the first heartbeat).
    service: Dict[str, object] = dataclasses.field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class FleetStats:
    """One consistent snapshot of a :class:`~repro.fleet.SortFleet`."""

    #: Caller-facing counters/latency, service-shaped (queue depth here
    #: means rows/requests in flight across all workers).
    frontend: ServiceStats
    #: Per-worker states keyed by worker id.
    workers: Dict[int, WorkerState]
    #: Workers configured at construction.
    workers_total: int
    #: Workers currently alive and routable.
    workers_alive: int
    #: Dead-worker events handled (each may re-dispatch many requests).
    failovers: int
    #: Requests re-dispatched off dead workers onto survivors.
    redispatched: int
    #: Requests sorted in the parent itself because no worker survived
    #: (the resilience backstop).
    parent_fallbacks: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "frontend": self.frontend.as_dict(),
            "workers": {
                str(worker_id): state.as_dict()
                for worker_id, state in sorted(self.workers.items())
            },
            "workers_total": self.workers_total,
            "workers_alive": self.workers_alive,
            "failovers": self.failovers,
            "redispatched": self.redispatched,
            "parent_fallbacks": self.parent_fallbacks,
        }
