"""Fleet metrics export: per-worker and aggregate, JSON + Prometheus.

The fleet's scrape surface follows the service's
(:mod:`repro.service.metrics`) shape exactly, one level up:

* :func:`collect_fleet_metrics` — one JSON-ready dict (schema
  ``repro-fleet-metrics/v1``) with three views:

  - ``fleet`` — the aggregate caller-facing counters (admission,
    completion, failover tallies, in-flight depth, latency
    percentiles, per-tenant slices) from the fleet's own recorder;
  - ``workers`` — one block per worker process: liveness, outstanding
    work, dispatch/failover counters, and the worker's *own*
    ``ServiceStats`` snapshot from its last heartbeat (so operators can
    see inside each process: its batch occupancy, its queue, its
    planner's engine picks);
  - ``aggregate`` — the workers' service counters summed, the "what is
    the whole fleet's sort plane doing" view.

* :func:`render_fleet_prometheus` — the same snapshot as text
  exposition under the ``repro_fleet_*`` families.  Per-worker series
  carry a ``worker="N"`` label; tenant series carry ``tenant=``; every
  interpolated label value goes through the shared
  :func:`~repro.service.metrics.escape_label_value`, so hostile tenant
  names (quotes, newlines, backslashes) cannot corrupt the exposition.
"""

from __future__ import annotations

from typing import Dict, List

from ..service.metrics import escape_label_value

__all__ = [
    "FLEET_METRICS_SCHEMA",
    "collect_fleet_metrics",
    "render_fleet_prometheus",
]

FLEET_METRICS_SCHEMA = "repro-fleet-metrics/v1"

#: Fleet-level counters exported 1:1 from the frontend ServiceStats.
_FRONTEND_COUNTERS = (
    "submitted",
    "completed",
    "rejected",
    "shed",
    "deadline_missed",
    "failed",
)

#: Worker-service counters summed into the aggregate view.
_WORKER_SERVICE_COUNTERS = (
    "submitted",
    "completed",
    "rejected",
    "shed",
    "deadline_missed",
    "failed",
    "batches",
    "batched_rows",
)


def collect_fleet_metrics(fleet) -> Dict[str, object]:
    """One structured, JSON-ready snapshot of a :class:`~repro.fleet.SortFleet`."""
    stats = fleet.stats()
    frontend = stats.frontend
    workers: Dict[str, object] = {}
    aggregate: Dict[str, int] = {
        name: 0 for name in _WORKER_SERVICE_COUNTERS
    }
    for worker_id, state in sorted(stats.workers.items()):
        service = state.service or {}
        for name in _WORKER_SERVICE_COUNTERS:
            value = service.get(name)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                aggregate[name] += int(value)
        workers[str(worker_id)] = {
            "pid": state.pid,
            "alive": state.alive,
            "outstanding_rows": state.outstanding_rows,
            "outstanding_requests": state.outstanding_requests,
            "dispatched": state.dispatched,
            "completed": state.completed,
            "failed": state.failed,
            "redispatched": state.redispatched,
            "heartbeat_age_s": state.heartbeat_age_s,
            "service": dict(service),
        }
    return {
        "schema": FLEET_METRICS_SCHEMA,
        "fleet": {
            **{name: getattr(frontend, name) for name in _FRONTEND_COUNTERS},
            "workers_total": stats.workers_total,
            "workers_alive": stats.workers_alive,
            "failovers": stats.failovers,
            "redispatched": stats.redispatched,
            "parent_fallbacks": stats.parent_fallbacks,
            "inflight_requests": frontend.queue_depth_requests,
            "inflight_rows": frontend.queue_depth_rows,
        },
        "latency_ms": dict(frontend.latency_ms),
        "tenants": {
            name: tenant.as_dict()
            for name, tenant in frontend.tenants.items()
        },
        "planner": {
            "engine_counts": {
                shape: dict(engines)
                for shape, engines in frontend.planner_engine_counts.items()
            },
        },
        "workers": workers,
        "aggregate": aggregate,
    }


def render_fleet_prometheus(
    metrics: Dict[str, object], prefix: str = "repro_fleet"
) -> str:
    """Render a :func:`collect_fleet_metrics` snapshot as Prometheus text.

    Families: ``repro_fleet_<counter>_total`` (aggregate front-end),
    ``repro_fleet_workers_alive``/``_total`` and ``repro_fleet_inflight_*``
    gauges, ``repro_fleet_latency_ms{quantile=}``, per-tenant
    ``repro_fleet_tenant_*_total{tenant=}``, per-worker
    ``repro_fleet_worker_*{worker="N"}`` (including the worker's own
    service counters as ``repro_fleet_worker_service_*``), and the
    summed ``repro_fleet_aggregate_*_total`` families.
    """
    lines: List[str] = []
    fleet = metrics.get("fleet", {})
    if isinstance(fleet, dict):
        for name in _FRONTEND_COUNTERS + (
            "failovers", "redispatched", "parent_fallbacks",
        ):
            if name in fleet:
                lines.append(f"{prefix}_{name}_total {fleet[name]}")
        for name in (
            "workers_total", "workers_alive",
            "inflight_requests", "inflight_rows",
        ):
            if name in fleet:
                lines.append(f"{prefix}_{name} {fleet[name]}")
    latency = metrics.get("latency_ms", {})
    if isinstance(latency, dict):
        for quantile in sorted(latency):
            lines.append(
                f'{prefix}_latency_ms'
                f'{{quantile="{escape_label_value(quantile)}"}} '
                f"{latency[quantile]}"
            )
    tenants = metrics.get("tenants", {})
    if isinstance(tenants, dict):
        for tenant in sorted(tenants):
            block = tenants[tenant]
            if not isinstance(block, dict):
                continue
            label = f'{{tenant="{escape_label_value(tenant)}"}}'
            for name in (
                "admitted", "rows_admitted", "rejected", "shed",
                "deadline_missed", "completed", "failed",
            ):
                if name in block:
                    lines.append(
                        f"{prefix}_tenant_{name}_total{label} {block[name]}"
                    )
    workers = metrics.get("workers", {})
    if isinstance(workers, dict):
        for worker_id in sorted(workers, key=str):
            block = workers[worker_id]
            if not isinstance(block, dict):
                continue
            label = f'{{worker="{escape_label_value(worker_id)}"}}'
            alive = block.get("alive")
            if alive is not None:
                lines.append(f"{prefix}_worker_alive{label} {int(bool(alive))}")
            for name in ("outstanding_rows", "outstanding_requests"):
                if name in block:
                    lines.append(f"{prefix}_worker_{name}{label} {block[name]}")
            for name in ("dispatched", "completed", "failed", "redispatched"):
                if name in block:
                    lines.append(
                        f"{prefix}_worker_{name}_total{label} {block[name]}"
                    )
            age = block.get("heartbeat_age_s")
            if isinstance(age, (int, float)) and not isinstance(age, bool):
                lines.append(f"{prefix}_worker_heartbeat_age_s{label} {age}")
            service = block.get("service", {})
            if isinstance(service, dict):
                for name in _WORKER_SERVICE_COUNTERS:
                    value = service.get(name)
                    if isinstance(value, (int, float)) and not isinstance(
                        value, bool
                    ):
                        lines.append(
                            f"{prefix}_worker_service_{name}_total{label} "
                            f"{value}"
                        )
    aggregate = metrics.get("aggregate", {})
    if isinstance(aggregate, dict):
        for name in sorted(aggregate):
            lines.append(f"{prefix}_aggregate_{name}_total {aggregate[name]}")
    planner = metrics.get("planner", {})
    if isinstance(planner, dict):
        engine_counts = planner.get("engine_counts", {})
        if isinstance(engine_counts, dict):
            for shape in sorted(engine_counts):
                engines = engine_counts[shape]
                if not isinstance(engines, dict):
                    continue
                for engine in sorted(engines):
                    lines.append(
                        f'{prefix}_planner_selected_total'
                        f'{{shape_class="{escape_label_value(shape)}",'
                        f'engine="{escape_label_value(engine)}"}} '
                        f"{engines[engine]}"
                    )
    return "\n".join(lines) + "\n"
