"""``repro.fleet`` — the sharded, multi-process sort serving tier.

One :class:`~repro.service.SortService` is bounded by one Python
process; the fleet scales the same contract across **N** worker
processes, each owning a full planner + ``ScratchArena`` +
``SortService`` stack — the host-side analogue of partitioning arrays
across GPUs.  See :mod:`repro.fleet.fleet` for the architecture
(lane-affinity load-aware routing, two-region shared-memory handoff,
heartbeat/liveness failover that drains a dead worker's in-flight
requests to survivors).

Entry points:

* :class:`SortFleet` — ``submit(arrays, deadline=, priority=, tenant=)
  -> Future``, drop-in for ``SortService`` (the
  :mod:`repro.service.traffic` generators drive either);
* :class:`FleetRouter` — the clock-free routing/backpressure policy,
  unit-testable in isolation;
* :func:`collect_fleet_metrics` / :func:`render_fleet_prometheus` —
  JSON and Prometheus ``repro_fleet_*`` export with per-worker and
  aggregate views.
"""

from .fleet import (
    DEFAULT_MAX_WORKER_QUEUE_ROWS,
    DEFAULT_WORKERS,
    SortFleet,
)
from .metrics import (
    FLEET_METRICS_SCHEMA,
    collect_fleet_metrics,
    render_fleet_prometheus,
)
from .router import FleetRouter
from .stats import FleetStats, WorkerState
from .worker import WorkerConfig

__all__ = [
    "DEFAULT_MAX_WORKER_QUEUE_ROWS",
    "DEFAULT_WORKERS",
    "FLEET_METRICS_SCHEMA",
    "FleetRouter",
    "FleetStats",
    "SortFleet",
    "WorkerConfig",
    "WorkerState",
    "collect_fleet_metrics",
    "render_fleet_prometheus",
]
