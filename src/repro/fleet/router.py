"""Load-aware request routing for the sort fleet.

:class:`FleetRouter` is the fleet's pure decision core: given the lane a
request belongs to (the same ``(row_len, dtype.str)`` lane key the
in-process :class:`~repro.service.batcher.DynamicBatcher` batches by)
and the request's row count, it picks the worker process the request
should run on — or declines, which the fleet surfaces as a
:class:`~repro.service.errors.RejectedError`.

The policy is **least-outstanding-rows with lane affinity**:

* Each lane remembers the worker it last dispatched to.  Requests from
  one lane keep landing on one worker while that worker is healthy and
  not pulling far ahead of the least-loaded worker, so a worker's
  batcher sees full lanes and its planner keeps hitting one shape
  class — the whole point of batching by ``(row_len, dtype)``.
* When the affinity worker is saturated (its outstanding rows exceed
  ``spill_factor`` times the least-loaded worker's, beyond a small slack
  allowance), the lane *spills*: the request goes to the worker with the
  fewest outstanding rows, and the lane's affinity follows it.  Load
  balance beats affinity — affinity is a tiebreak, not a pin.
* Admission is bounded per worker (``max_worker_queue_rows``).  A
  request no worker can take is declined; the fleet's backpressure hint
  then derives from :meth:`retry_after`, which estimates how long the
  **most-loaded** worker needs to drain (the conservative bound — by the
  time the deepest queue has drained, every queue has) and stretches it
  by a bounded, **seedable** jitter so a herd of rejected clients
  disperses instead of stampeding back in one tick.  Seeding the RNG
  (``retry_jitter_seed``) keeps rejected-client dispersal deterministic
  under test, exactly like ``SortService(retry_jitter_seed=)``.

Failover uses a separate door: :meth:`route_failover` ignores the
admission bound and returns the least-loaded surviving worker, because a
dead worker's in-flight requests must land *somewhere* — re-queueing
pressure is survivable, dropping accepted work is not.

The router is clock-free and process-free: it never spawns anything and
never reads time, so every policy decision is unit-testable with plain
integers.  All mutable state is guarded by one lock.
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..statan import runtime as _sanitizer

__all__ = ["FleetRouter", "DEFAULT_SPILL_FACTOR", "DEFAULT_SPILL_SLACK_ROWS"]

#: Affinity holds until the lane's worker carries more than
#: ``spill_factor`` x the least-loaded worker's outstanding rows.
DEFAULT_SPILL_FACTOR = 2.0

#: Absolute slack under which affinity always holds (so a worker at 10
#: rows vs an idle one at 0 does not count as "2x ahead").
DEFAULT_SPILL_SLACK_ROWS = 64


@_sanitizer.sanitize_guarded
class FleetRouter:
    """Lane-affinity, least-outstanding-rows router over fleet workers.

    Parameters
    ----------
    max_worker_queue_rows:
        Per-worker admission bound on outstanding (dispatched, not yet
        completed) rows.  A request that would push every worker past
        this bound is declined.  A single request larger than the bound
        is still admitted onto an idle worker — otherwise it could never
        run at all.
    spill_factor / spill_slack_rows:
        When the affinity worker's outstanding rows exceed
        ``spill_factor * least_loaded + spill_slack_rows``, the lane
        spills to the least-loaded worker.
    linger_s:
        The workers' batching linger, used as the floor of
        :meth:`retry_after` hints (a hint below one batching cycle would
        tell clients to spin).
    retry_jitter:
        Bounded jitter fraction stretching :meth:`retry_after` hints
        (0 disables).
    retry_jitter_seed:
        Seed for the jitter RNG — deterministic backpressure under test.
    """

    def __init__(
        self,
        *,
        max_worker_queue_rows: int,
        spill_factor: float = DEFAULT_SPILL_FACTOR,
        spill_slack_rows: int = DEFAULT_SPILL_SLACK_ROWS,
        linger_s: float = 0.002,
        retry_jitter: float = 0.25,
        retry_jitter_seed: Optional[int] = None,
    ) -> None:
        if max_worker_queue_rows < 1:
            raise ValueError(
                f"max_worker_queue_rows must be >= 1, got {max_worker_queue_rows}"
            )
        if spill_factor < 1.0:
            raise ValueError(f"spill_factor must be >= 1.0, got {spill_factor}")
        if spill_slack_rows < 0:
            raise ValueError(
                f"spill_slack_rows must be >= 0, got {spill_slack_rows}"
            )
        if retry_jitter < 0:
            raise ValueError(f"retry_jitter must be >= 0, got {retry_jitter}")
        self.max_worker_queue_rows = int(max_worker_queue_rows)
        self.spill_factor = float(spill_factor)
        self.spill_slack_rows = int(spill_slack_rows)
        self.linger_s = float(linger_s)
        self.retry_jitter = float(retry_jitter)
        self._lock = _sanitizer.make_lock("FleetRouter._lock")
        # Jitter draws happen under the router lock (decline path only).
        self._retry_rng = np.random.default_rng(retry_jitter_seed)  # guarded-by: _lock
        self._outstanding_rows: Dict[int, int] = {}  # guarded-by: _lock
        self._outstanding_requests: Dict[int, int] = {}  # guarded-by: _lock
        self._alive: Dict[int, bool] = {}  # guarded-by: _lock
        self._affinity: Dict[Hashable, int] = {}  # guarded-by: _lock

    # -- membership --------------------------------------------------------
    def add_worker(self, worker_id: int) -> None:
        """Register a worker as routable."""
        with self._lock:
            self._alive[int(worker_id)] = True
            self._outstanding_rows.setdefault(int(worker_id), 0)
            self._outstanding_requests.setdefault(int(worker_id), 0)

    def mark_dead(self, worker_id: int) -> None:
        """Remove a worker from routing (its accounting is retained so
        the fleet can enumerate what must fail over)."""
        with self._lock:
            if worker_id in self._alive:
                self._alive[worker_id] = False
            for lane, owner in list(self._affinity.items()):
                if owner == worker_id:
                    del self._affinity[lane]

    def alive_workers(self) -> List[int]:
        with self._lock:
            return sorted(w for w, ok in self._alive.items() if ok)

    # -- routing -----------------------------------------------------------
    def _fits_locked(self, worker_id: int, rows: int) -> bool:
        load = self._outstanding_rows[worker_id]
        if rows > self.max_worker_queue_rows:
            # An oversized request is admissible only onto an idle
            # worker; bounding it out entirely would make it unservable.
            return load == 0
        return load + rows <= self.max_worker_queue_rows

    def _least_loaded_locked(self) -> Optional[int]:
        best: Optional[int] = None
        best_load = -1
        for worker_id in sorted(self._alive):
            if not self._alive[worker_id]:
                continue
            load = self._outstanding_rows[worker_id]
            if best is None or load < best_load:
                best, best_load = worker_id, load
        return best

    def route(self, lane_key: Hashable, rows: int) -> Optional[int]:
        """Pick a worker for ``rows`` rows on ``lane_key``; record the
        dispatch; ``None`` when no worker can admit the request."""
        rows = int(rows)
        with self._lock:
            least = self._least_loaded_locked()
            if least is None:
                return None  # no alive workers at all
            chosen: Optional[int] = None
            affinity = self._affinity.get(lane_key)
            if affinity is not None and self._alive.get(affinity, False):
                least_load = self._outstanding_rows[least]
                bound = (
                    self.spill_factor * least_load + self.spill_slack_rows
                )
                if (
                    self._fits_locked(affinity, rows)
                    and self._outstanding_rows[affinity] <= bound
                ):
                    chosen = affinity
            if chosen is None and self._fits_locked(least, rows):
                chosen = least
            if chosen is None:
                return None
            self._affinity[lane_key] = chosen
            self._outstanding_rows[chosen] += rows
            self._outstanding_requests[chosen] += 1
            return chosen

    def route_failover(
        self, lane_key: Hashable, rows: int
    ) -> Optional[int]:
        """Least-loaded surviving worker, **ignoring** the admission
        bound — failed-over requests are never dropped for capacity.
        Returns ``None`` only when no worker survives."""
        rows = int(rows)
        with self._lock:
            least = self._least_loaded_locked()
            if least is None:
                return None
            self._affinity[lane_key] = least
            self._outstanding_rows[least] += rows
            self._outstanding_requests[least] += 1
            return least

    def record_done(self, worker_id: int, rows: int) -> None:
        """A dispatched request completed (or failed terminally)."""
        with self._lock:
            if worker_id in self._outstanding_rows:
                self._outstanding_rows[worker_id] = max(
                    0, self._outstanding_rows[worker_id] - int(rows)
                )
                self._outstanding_requests[worker_id] = max(
                    0, self._outstanding_requests[worker_id] - 1
                )

    def forget_outstanding(self, worker_id: int) -> None:
        """Zero a dead worker's accounting once its pending work has
        been re-dispatched elsewhere."""
        with self._lock:
            if worker_id in self._outstanding_rows:
                self._outstanding_rows[worker_id] = 0
                self._outstanding_requests[worker_id] = 0

    # -- observability / backpressure --------------------------------------
    def outstanding_rows(self, worker_id: Optional[int] = None) -> int:
        with self._lock:
            if worker_id is not None:
                return self._outstanding_rows.get(worker_id, 0)
            return sum(self._outstanding_rows.values())

    def snapshot(self) -> Dict[int, Tuple[bool, int, int]]:
        """``worker_id -> (alive, outstanding_rows, outstanding_requests)``."""
        with self._lock:
            return {
                worker_id: (
                    self._alive.get(worker_id, False),
                    self._outstanding_rows.get(worker_id, 0),
                    self._outstanding_requests.get(worker_id, 0),
                )
                for worker_id in sorted(self._outstanding_rows)
            }

    def retry_after(self, rows_per_s: Optional[float]) -> float:
        """Backpressure hint: seconds for the **most-loaded** worker to
        drain at the observed per-worker completion rate.

        Conservative by construction — once the deepest queue has
        drained, every queue has, so a client that sleeps this long
        re-arrives at a fleet with admission headroom.  Floored at one
        batching linger (a ~0 hint says "spin on submit") and stretched
        by the seeded bounded jitter so simultaneously rejected clients
        disperse their resubmissions (satellite of PR 7's service-side
        anti-stampede hints; same formula, fleet-level inputs).
        """
        with self._lock:
            deepest = max(
                (
                    self._outstanding_rows[w]
                    for w, ok in self._alive.items()
                    if ok
                ),
                default=0,
            )
            floor = max(self.linger_s, 1e-3)
            if not rows_per_s or rows_per_s <= 0:
                base = 2 * floor
            else:
                base = max(floor, deepest / rows_per_s)
            if self.retry_jitter > 0:
                base *= 1.0 + float(self._retry_rng.random()) * self.retry_jitter
            return base
