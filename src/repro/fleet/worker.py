"""The fleet worker process: one full sort stack behind a queue.

Each worker the :class:`~repro.fleet.SortFleet` forks runs
:func:`worker_main`: it builds its *own* planner + ``ScratchArena`` +
:class:`~repro.service.SortService` (one GIL per worker — that is the
whole reason the fleet exists), then loops on a request queue of
shared-memory descriptors.

**Zero-copy handoff, two-region slabs.**  The parent stages each
request into one ``multiprocessing.shared_memory`` segment laid out as
``[input | output]`` — two equal halves.  The worker attaches the
segment with the same :func:`repro.parallel.attach_shm_view` primitive
the process-pool shard workers use, submits the *input* view to its
local service, and writes the sorted result only into the *output*
half.  The input half is never mutated by the worker, which is the
failover invariant: if this process dies mid-sort — even mid-memcpy of
a result — the parent still holds a pristine copy of the request and
can re-dispatch it to a surviving worker with no risk of re-sorting a
half-written buffer.

**Typed errors cross the boundary as data.**  A worker cannot pickle a
live exception usefully, so every service failure is flattened to
``(kind, message, fields)`` and rebuilt into the same
:mod:`repro.service.errors` type on the parent side — callers of
``SortFleet.submit`` see exactly the error vocabulary of the in-process
service.

**Heartbeats.**  A daemon thread posts ``("hb", worker_id, seq,
stats_dict)`` every ``heartbeat_s`` seconds, carrying the worker's full
:class:`~repro.service.stats.ServiceStats` snapshot; the parent uses the
cadence for liveness (a worker silent past the liveness deadline is
declared dead and drained) and the payload for the fleet's aggregate
metrics.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.config import DEFAULT_CONFIG, SortConfig
from ..parallel import attach_shm_view
from ..service.errors import (
    DeadlineExceededError,
    QuarantinedError,
    RejectedError,
    ServiceClosedError,
)
from ..statan import runtime as _sanitizer

__all__ = ["WorkerConfig", "worker_main", "rebuild_error"]


@dataclasses.dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to build its local sort stack.

    A plain frozen dataclass so it crosses ``fork``/``spawn`` start
    methods alike.  ``planner`` is a *spec* (name or ``None``), resolved
    inside the worker — each worker owns its planner instance and
    arena; only the calibration cache on disk is shared (the parent
    pre-warms it once before forking, so N workers read one profile
    instead of racing N redundant calibrations).
    """

    config: SortConfig = DEFAULT_CONFIG
    planner: Optional[str] = None
    backend: Optional[str] = None
    batch_target_rows: Optional[int] = None
    max_batch_rows: Optional[int] = None
    linger_ms: float = 2.0
    max_queue_rows: Optional[int] = None
    latency_window: int = 4096
    heartbeat_s: float = 0.05


def describe_error(exc: BaseException) -> Tuple[str, str, Dict[str, object]]:
    """Flatten a service exception into picklable ``(kind, message, fields)``."""
    if isinstance(exc, RejectedError):
        return (
            "rejected",
            str(exc),
            {
                "retry_after": exc.retry_after,
                "tenant": exc.tenant,
                "reason": exc.reason,
            },
        )
    if isinstance(exc, DeadlineExceededError):
        return (
            "deadline",
            str(exc),
            {"waited": exc.waited, "stage": exc.stage},
        )
    if isinstance(exc, QuarantinedError):
        return (
            "quarantined",
            str(exc),
            {
                "rows": list(exc.rows),
                "reasons": {int(k): str(v) for k, v in exc.reasons.items()},
                "tenant": exc.tenant,
            },
        )
    if isinstance(exc, ServiceClosedError):
        return ("closed", str(exc), {})
    if isinstance(exc, _sanitizer.SanitizerError):
        # A checked-build violation inside the worker must reach the
        # parent as a sanitizer report (check + both stacks), not a
        # generic worker failure — the report IS the diagnosis.
        return (
            "sanitizer",
            str(exc),
            {"report": {str(k): str(v) for k, v in exc.report.items()}},
        )
    return ("failed", f"{type(exc).__name__}: {exc}", {})


def rebuild_error(
    kind: str, message: str, fields: Dict[str, object]
) -> Exception:
    """Parent-side inverse of :func:`describe_error`."""
    if kind == "rejected":
        return RejectedError(
            message,
            retry_after=float(fields.get("retry_after", 0.0)),
            tenant=fields.get("tenant"),  # type: ignore[arg-type]
            reason=str(fields.get("reason", "queue-full")),
        )
    if kind == "deadline":
        return DeadlineExceededError(
            message,
            waited=float(fields.get("waited", 0.0)),
            stage=str(fields.get("stage", "queued")),
        )
    if kind == "quarantined":
        return QuarantinedError(
            message,
            rows=[int(r) for r in fields.get("rows", ())],  # type: ignore[union-attr]
            reasons={
                int(k): str(v)
                for k, v in dict(fields.get("reasons", {})).items()  # type: ignore[arg-type]
            },
            tenant=fields.get("tenant"),  # type: ignore[arg-type]
        )
    if kind == "closed":
        return ServiceClosedError(message)
    if kind == "sanitizer":
        return _sanitizer.SanitizerError(
            message, report=dict(fields.get("report", {}))  # type: ignore[arg-type]
        )
    return RuntimeError(message)


def _heartbeat_loop(
    worker_id: int, service, response_q, interval_s: float, stop: threading.Event
) -> None:
    """Post liveness + a ServiceStats snapshot until told to stop."""
    seq = 0
    while not stop.wait(interval_s):
        seq += 1
        try:
            stats = service.stats().as_dict()
        except Exception:
            stats = {}
        try:
            response_q.put(("hb", worker_id, seq, stats))
        except Exception:
            return  # parent gone; nothing left to report to


def worker_main(worker_id: int, request_q, response_q, cfg: WorkerConfig) -> None:
    """Process entry point: serve sort requests until the stop sentinel.

    Request messages (from the parent):

    ``("sort", req_id, shm_name, rows, row_len, dtype_str, deadline_s,
    priority, tenant)`` — attach the two-region segment, submit the
    input half to the local service, write the sorted rows into the
    output half, answer ``("done", req_id, worker_id)`` or ``("error",
    req_id, worker_id, kind, message, fields)``.

    ``("stop",)`` — drain the local service and exit (answering
    ``("stopped", worker_id)``).
    """
    from ..service import SortService

    service = SortService(
        config=cfg.config,
        planner=cfg.planner,
        backend=cfg.backend,
        batch_target_rows=cfg.batch_target_rows,
        max_batch_rows=cfg.max_batch_rows,
        linger_ms=cfg.linger_ms,
        max_queue_rows=cfg.max_queue_rows,
        latency_window=cfg.latency_window,
    )
    stop = threading.Event()
    heartbeat = threading.Thread(
        target=_heartbeat_loop,
        args=(worker_id, service, response_q, cfg.heartbeat_s, stop),
        name=f"repro-fleet-hb-{worker_id}",
        daemon=True,
    )
    heartbeat.start()
    response_q.put(("ready", worker_id))

    def _serve_one(msg) -> None:
        (_, req_id, shm_name, rows, row_len, dtype_str, deadline_s,
         priority, tenant) = msg
        shm, full = attach_shm_view(
            shm_name, (2 * rows, row_len), dtype_str, 0
        )
        work = full[:rows]
        out = full[rows:]
        if _sanitizer.enabled():
            # Checked build: enforce the failover invariant mechanically —
            # the worker must never write the input half.
            work = _sanitizer.guard_readonly(
                work, f"fleet-input-slab:req{req_id}"
            )

        def _deliver(future) -> None:
            try:
                try:
                    payload = future.result()
                except Exception as exc:  # typed service errors -> data
                    kind, message, fields = describe_error(exc)
                    response_q.put(
                        ("error", req_id, worker_id, kind, message, fields)
                    )
                else:
                    out[:] = payload
                    response_q.put(("done", req_id, worker_id))
            finally:
                shm.close()

        try:
            # copy=True: the service's demux copy-out is what we memcpy
            # into the output half; the input half stays untouched, which
            # is the fleet's failover invariant (see module docstring).
            future = service.submit(
                work,
                deadline=deadline_s,
                priority=priority,
                copy=True,
                tenant=tenant,
            )
        except Exception as exc:
            kind, message, fields = describe_error(exc)
            response_q.put(("error", req_id, worker_id, kind, message, fields))
            shm.close()
            return
        future.add_done_callback(_deliver)

    try:
        while True:
            msg = request_q.get()
            if msg is None or msg[0] == "stop":
                break
            if msg[0] == "sort":
                _serve_one(msg)
    finally:
        stop.set()
        try:
            service.close(drain=True)
        finally:
            try:
                response_q.put(("stopped", worker_id))
            except (OSError, ValueError):  # parent-side queue already gone
                pass


def nbytes_for(rows: int, row_len: int, dtype: np.dtype) -> int:
    """Byte size of one two-region request slab (input + output halves)."""
    return 2 * int(rows) * int(row_len) * int(np.dtype(dtype).itemsize)
