"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so the
PEP 517 editable-install path (which builds a wheel) is unavailable.  This
shim lets ``pip install -e . --no-use-pep517`` (or plain ``pip install -e .``
with pip configured for legacy installs) fall back to ``setup.py develop``.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
