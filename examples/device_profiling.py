#!/usr/bin/env python
"""Profile the three GPU-ArraySort kernels on the simulated device.

Runs the actual per-thread kernels (Algorithms 1-3 of the paper) on the
lock-step SIMT simulator and prints the hardware behaviour the paper's
Section 3 design rules are about:

* memory-coalescing efficiency of each kernel's global accesses,
* warp branch-divergence fractions (the sentinel-splitter trick),
* shared- vs global-memory traffic,
* occupancy and modeled milliseconds per phase.

Also demonstrates a *bad* kernel (strided accesses, divergent branches)
next to a good one, quantifying Sections 3.1-3.2 directly.

Run:  python examples/device_profiling.py
"""

from __future__ import annotations

import numpy as np

from repro.core import GpuArraySort
from repro.gpusim import GpuDevice
from repro.workloads import uniform_arrays


def profile_arraysort() -> None:
    gpu = GpuDevice.micro()
    batch = uniform_arrays(6, 128, seed=1)
    print(f"Running GPU-ArraySort (sim engine) on {batch.shape} "
          f"using device '{gpu.spec.name}'...\n")
    result = GpuArraySort(engine="sim", device=gpu, verify=True).sort(batch)

    header = (f"{'kernel':<28}{'ms':>8}{'coalesce':>10}"
              f"{'diverge':>9}{'smem':>8}{'gmem_tx':>9}{'waves':>7}")
    print(header)
    print("-" * len(header))
    for launch in result.reports.launches:
        print(f"{launch.kernel_name:<28}"
              f"{launch.milliseconds:>8.3f}"
              f"{launch.coalescing_efficiency:>10.2f}"
              f"{launch.divergence_fraction:>9.2f}"
              f"{launch.total_shared_accesses:>8}"
              f"{launch.total_global_transactions:>9}"
              f"{launch.timing.waves:>7}")
    print(f"\npipeline total: {result.reports.milliseconds:.3f} modeled ms")
    print(f"device peak memory: {gpu.memory.stats.peak_bytes} bytes "
          f"(payload: {batch.nbytes} bytes -> in-place, ~1x)\n")


def good_vs_bad_kernel() -> None:
    """Sections 3.1-3.2 quantified: coalescing and divergence matter."""
    gpu = GpuDevice.micro()
    n = 1024
    data = gpu.memory.alloc_like(np.arange(n, dtype=np.float32))
    out = gpu.memory.alloc(n, np.float32)

    def coalesced_uniform(ctx, shared, src, dst):
        tid = ctx.block_idx.x * ctx.block_dim.x + ctx.thread_idx.x
        x = yield ctx.gload(src, tid)
        yield ctx.alu(1)
        yield ctx.gstore(dst, tid, x + 1.0)

    def strided_divergent(ctx, shared, src, dst):
        tid = ctx.block_idx.x * ctx.block_dim.x + ctx.thread_idx.x
        lane = ctx.thread_idx.x
        # 128-byte stride: every lane its own transaction (Section 3.1).
        x = yield ctx.gload(src, (tid * 32) % n)
        # Odd/even lanes take different paths (Section 3.2).
        if lane % 2 == 0:
            yield ctx.alu(4)
        else:
            x = yield ctx.gload(src, (tid * 32 + 1) % n)
        yield ctx.gstore(dst, tid, x + 1.0)

    rep_good = gpu.launch(coalesced_uniform, grid=4, block=64, args=(data, out))
    rep_bad = gpu.launch(strided_divergent, grid=4, block=64, args=(data, out))

    print("Design-rule demo (same work, different memory/branch habits):")
    for name, rep in (("coalesced+uniform", rep_good),
                      ("strided+divergent", rep_bad)):
        print(f"  {name:<20} {rep.milliseconds:8.4f} ms   "
              f"coalescing={rep.coalescing_efficiency:.2f}  "
              f"divergence={rep.divergence_fraction:.2f}  "
              f"transactions={rep.total_global_transactions}")
    slowdown = rep_bad.milliseconds / rep_good.milliseconds
    print(f"  -> the careless kernel is {slowdown:.1f}x slower on the "
          "same data\n")


def main() -> None:
    profile_arraysort()
    good_vs_bad_kernel()


if __name__ == "__main__":
    main()
