#!/usr/bin/env python
"""Fused fast path + multicore row sharding, end to end.

The paper scales GPU-ArraySort by giving every array its own thread
block; ``repro.parallel`` applies the same per-row decomposition to host
cores.  This example demonstrates the three properties that make the
combination safe to adopt:

1. the fused engine (``SortConfig.fuse_phases``, the default) produces
   byte-identical results to the paper-faithful three-phase pipeline;
2. sharded execution is deterministic — any worker count, thread or
   process pool, same bytes out;
3. a crashed worker degrades to a serial re-sort of the untouched
   input, never a corrupted batch.

Run:  python examples/parallel_sharding.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import GpuArraySort, SortConfig
from repro.parallel import ProcessPoolEngine, ThreadPoolEngine, plan_shards
from repro.workloads import uniform_arrays


def main() -> None:
    num_arrays, array_size = 20_000, 500
    batch = uniform_arrays(num_arrays, array_size, seed=7)
    print(f"Batch: {num_arrays} arrays x {array_size} float32 "
          f"({batch.nbytes / 1e6:.0f} MB)\n")

    # 1. Fused vs unfused: same bytes, fewer passes. ----------------------
    t0 = time.perf_counter()
    fused = GpuArraySort(SortConfig(fuse_phases=True)).sort(batch)
    fused_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    unfused = GpuArraySort(SortConfig(fuse_phases=False)).sort(batch)
    unfused_s = time.perf_counter() - t0
    assert fused.batch.tobytes() == unfused.batch.tobytes()
    assert np.array_equal(fused.buckets.offsets, unfused.buckets.offsets)
    print(f"fused   {fused_s * 1e3:8.1f} ms   {dict(fused.phase_seconds)}")
    print(f"unfused {unfused_s * 1e3:8.1f} ms   "
          f"(identical output, {unfused_s / fused_s:.1f}x slower)\n")

    # 2. The shard plan is explicit and inspectable. ----------------------
    plan = plan_shards(num_arrays, workers=4)
    print("Shard plan for 4 workers:",
          [(s.start, s.stop) for s in plan])

    # 3. Worker sweep: every count gives the same bytes. ------------------
    reference = fused.batch.tobytes()
    for workers in (1, 2, 4):
        engine = ThreadPoolEngine(workers=workers)
        result = GpuArraySort(parallel=engine).sort(batch)
        info = result.parallel_info
        assert result.batch.tobytes() == reference
        print(f"threads={workers}: shards={info['shards']} -> identical bytes")
    result = GpuArraySort(parallel="process", workers=2).sort(batch)
    assert result.batch.tobytes() == reference
    print(f"process pool: shards={result.parallel_info['shards']} "
          f"-> identical bytes\n")

    # 4. Crash fallback: break the worker entry point on purpose. ---------
    from repro.parallel import executors

    engine = ProcessPoolEngine(workers=2)
    original = executors._sort_shard_shm
    executors._sort_shard_shm = None  # unpicklable -> pool submission fails
    try:
        result = GpuArraySort(parallel=engine).sort(batch)
    finally:
        executors._sort_shard_shm = original
    assert result.batch.tobytes() == reference
    print(f"worker crash: fell_back_to_serial="
          f"{result.parallel_info['fell_back_to_serial']}, "
          f"fallbacks={engine.fallbacks}, output still identical")


if __name__ == "__main__":
    main()
