#!/usr/bin/env python
"""Streaming acquisition: sorting spectra as the instrument produces them.

Paper Section 8: "modern scientific equipment is capable of generating
GBs of data per second" — in production, spectra arrive as a stream.
This example drives :class:`repro.core.StreamingSorter` like an
acquisition loop would:

1. an "instrument" emits spectra in bursts of varying size,
2. the sorter accumulates them into device-sized batches, sorts each,
   and hands the sorted batch to a downstream consumer (here: a running
   top-K reducer),
3. at end of run, throughput accounting answers the adoption question:
   does the (modeled) device keep up with the instrument?

Run:  python examples/streaming_acquisition.py
"""

from __future__ import annotations

import numpy as np

from repro.core import StreamingSorter
from repro.gpusim.device import K40C
from repro.workloads import generate_spectra


def main() -> None:
    peaks = 1000
    keep = 100
    rng = np.random.default_rng(2016)

    # Downstream consumer: accumulate each batch's top-K peak intensities.
    reduced_batches = []

    def consume(sorted_batch: np.ndarray) -> None:
        reduced_batches.append(sorted_batch[:, -keep:])

    sorter = StreamingSorter(
        peaks, device=K40C, batch_arrays=2048, on_batch=consume
    )
    print(f"Session: spectra of {peaks} peaks, batch = "
          f"{sorter.batch_arrays} spectra, keep top {keep} peaks/spectrum\n")

    # The "instrument": 12 acquisition bursts of 300-900 spectra each.
    total_emitted = 0
    for burst_idx in range(12):
        burst_size = int(rng.integers(300, 900))
        burst = generate_spectra(burst_size, peaks, seed=burst_idx).intensity
        batches = sorter.push_slab(burst)
        total_emitted += burst_size
        print(f"  burst {burst_idx:2d}: +{burst_size:4d} spectra "
              f"-> {batches} batch(es) sorted, "
              f"{sorter.stats.arrays_pending:4d} pending")
    sorter.flush()

    s = sorter.stats
    print(f"\nSession totals: {s.arrays_in} spectra in, "
          f"{s.batches_out} batches sorted, {s.arrays_out} spectra out")
    print(f"  host wall time sorting : {s.wall_seconds_sorting:.2f} s")
    print(f"  modeled K40c time      : {s.modeled_device_ms / 1e3:.2f} s")
    print(f"  modeled throughput     : "
          f"{s.modeled_throughput_arrays_per_s:,.0f} spectra/s")

    data_rate = s.arrays_in * peaks * 4 / (s.modeled_device_ms / 1e3) / 1e9
    print(f"  sustained data rate    : {data_rate:.2f} GB/s sorted "
          "(vs the paper's 'GBs of data per second' instruments)")

    reduced = np.vstack(reduced_batches)
    assert reduced.shape == (total_emitted, keep)
    assert np.all(np.diff(reduced, axis=1) >= 0)
    print(f"\nDownstream consumer holds {reduced.shape[0]} x {keep} "
          "top-intensity matrices — pipeline verified end to end.")


if __name__ == "__main__":
    main()
