#!/usr/bin/env python
"""Adaptive sampling: the paper's Section 9 multi-sampling plan, working.

The published algorithm uses 10 % *regular* sampling, tuned for the
uniformly distributed evaluation data.  Section 9 promises "multiple
sampling techniques in accordance with the distribution of the dataset".
This example runs that extension:

1. probes three datasets (uniform / clustered / duplicate-heavy) with
   the cheap skew probe,
2. shows which sampling strategy the probe selects,
3. measures what each strategy does to bucket balance — the quantity
   phase 3's load balance (and hence the algorithm's scalability claim)
   rides on,
4. sorts through the auto-adaptive sampler end to end.

Run:  python examples/adaptive_sampling.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import bucket_balance
from repro.core import GpuArraySort
from repro.core.adaptive import (
    SAMPLING_STRATEGIES,
    AdaptiveSampler,
    probe_skew,
    select_splitters_adaptive,
)
from repro.core.bucketing import bucketize
from repro.workloads import (
    clustered_arrays,
    duplicate_heavy_arrays,
    uniform_arrays,
)


def balance_for(batch: np.ndarray, strategy: str) -> float:
    spl = select_splitters_adaptive(batch, strategy=strategy, seed=7)
    res = bucketize(batch.copy(), spl.splitters)
    return bucket_balance(res.sizes).std


def main() -> None:
    datasets = {
        "uniform (paper's eval data)": uniform_arrays(60, 1000, seed=5),
        "clustered (3 tight modes)": clustered_arrays(
            60, 1000, num_clusters=3, seed=5
        ),
        "duplicate-heavy (6 values)": duplicate_heavy_arrays(
            60, 1000, distinct_values=6, seed=5
        ),
    }

    print("Skew probe and strategy choice:")
    sampler = AdaptiveSampler("auto", seed=7)
    for name, batch in datasets.items():
        probe = probe_skew(batch, seed=7)
        choice = sampler.resolve_strategy(batch)
        print(f"  {name:<30} dup={probe.duplicate_mass:.2f} "
              f"gapCV={probe.gap_dispersion:5.2f}  -> {choice}")

    print("\nBucket-size std per strategy (lower = better phase-3 balance):")
    header = f"  {'dataset':<30}" + "".join(f"{s:>12}" for s in SAMPLING_STRATEGIES)
    print(header)
    for name, batch in datasets.items():
        row = f"  {name:<30}"
        for strategy in SAMPLING_STRATEGIES:
            row += f"{balance_for(batch, strategy):12.1f}"
        print(row)

    print("\nEnd-to-end sort through the auto sampler (verified):")
    for name, batch in datasets.items():
        sorter = GpuArraySort(sampler=sampler, verify=True)
        result = sorter.sort(batch)
        assert np.array_equal(result.batch, np.sort(batch, axis=1))
        print(f"  {name:<30} OK "
              f"({result.total_seconds * 1e3:.0f} ms, "
              f"max bucket {result.buckets.max_bucket_size()})")

    print("\nNote the duplicate-heavy row: no splitter set can balance 6")
    print("distinct values across 50 buckets — the probe correctly keeps")
    print("the cheap regular sampling there instead of paying for more.")


if __name__ == "__main__":
    main()
