#!/usr/bin/env python
"""Out-of-core sorting: datasets bigger than device memory (paper §9).

The paper's future-work section promises an out-of-core array sorter
that "hides data transfer latencies in runtime".  This example drives
the implemented extension:

1. plans device-sized chunks for a host batch that exceeds the (scaled)
   device's global memory,
2. sorts it chunk by chunk,
3. compares the modeled timeline with and without transfer/compute
   overlap, showing the latency hiding the paper aimed for.

A scaled-down device spec keeps the demo fast; swap in
``repro.gpusim.device.K40C`` and millions of arrays for the real thing.

Run:  python examples/out_of_core_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import OutOfCoreSorter, plan_chunks
from repro.gpusim.device import DeviceSpec
from repro.workloads import uniform_arrays


def main() -> None:
    # A device with ~8 MB of usable memory: big enough to be honest,
    # small enough that a 40 MB host batch needs many chunks.
    device = DeviceSpec(
        name="demo-gpu",
        sm_count=8,
        cores_per_sm=64,
        global_mem_bytes=8 * 1024 * 1024,
        shared_mem_per_block=48 * 1024,
        usable_mem_fraction=1.0,
    )

    num_arrays, array_size = 10_000, 1000  # 40 MB of float32
    batch = uniform_arrays(num_arrays, array_size, seed=99)
    print(f"Host batch: {num_arrays} x {array_size} floats "
          f"({batch.nbytes / 1e6:.0f} MB); device holds "
          f"{device.usable_global_mem_bytes / 1e6:.0f} MB")

    plan = plan_chunks(num_arrays, array_size, device=device)
    print(f"Chunk plan: {plan.num_chunks} chunks of "
          f"{plan.arrays_per_chunk} arrays "
          f"({plan.chunk_bytes / 1e6:.1f} MB each, double-buffered)\n")

    # Two transfer regimes over the SAME chunk plan:
    #  - pinned PCIe 3.0 (12 GB/s): compute-bound, little to hide;
    #  - a constrained link (0.05 GB/s, e.g. remote/virtualized GPU):
    #    transfer-bound, where Section 9's latency hiding pays off.
    for label, gbps in (("pinned PCIe 3.0 (12 GB/s)", 12.0),
                        ("constrained link (0.05 GB/s)", 0.05)):
        res = OutOfCoreSorter(device=device, overlap=True, pcie_gbps=gbps).sort(batch)
        assert np.array_equal(res.batch, np.sort(batch, axis=1))

        up = sum(res.per_chunk["upload_ms"])
        comp = sum(res.per_chunk["compute_ms"])
        down = sum(res.per_chunk["download_ms"])
        print(f"--- {label} ---")
        print(f"  stage totals: H2D {up:.1f} ms | compute {comp:.1f} ms | "
              f"D2H {down:.1f} ms")
        print(f"  serialized timeline  : {res.modeled_ms_no_overlap:8.2f} ms")
        print(f"  dual-buffer overlap  : {res.modeled_ms:8.2f} ms")
        print(f"  latency hidden       : {res.overlap_speedup:.2f}x speedup\n")

    print("Verified: out-of-core results match the np.sort oracle.")
    print("Takeaway: overlap approaches max(transfer, compute) — exactly the")
    print("'hides data transfer latencies in runtime' behaviour of paper §9.")


if __name__ == "__main__":
    main()
