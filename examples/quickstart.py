#!/usr/bin/env python
"""Quickstart: sort a large batch of arrays with GPU-ArraySort.

Generates the paper's evaluation workload (uniform float32 arrays in
[0, 2^31 - 1]), sorts it through the three-phase algorithm, verifies the
result, and prints per-phase timings plus the modeled time the same batch
would take on the paper's Tesla K40c.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import GpuArraySort, SortConfig
from repro.analysis.perfmodel import model_arraysort_breakdown
from repro.core.validation import assert_batch_sorted
from repro.gpusim.device import K40C
from repro.workloads import uniform_arrays


def main() -> None:
    # 10 000 arrays of 1000 elements — the paper's Fig. 4 shape, scaled
    # to run in about a second on a laptop CPU.
    num_arrays, array_size = 10_000, 1000
    batch = uniform_arrays(num_arrays, array_size, seed=0)
    print(f"Sorting {num_arrays} arrays of {array_size} float32 elements "
          f"({batch.nbytes / 1e6:.0f} MB)...")

    # Default config = the paper's published tuning: >= 20 elements per
    # bucket, 10 % regular sampling.
    sorter = GpuArraySort(SortConfig())
    result = sorter.sort(batch)

    assert_batch_sorted(result.batch, batch)
    print("Verified: every row sorted, every row a permutation of its input.\n")

    print("Wall-clock per phase (vectorized engine):")
    for phase, seconds in result.phase_seconds.items():
        print(f"  {phase:<20} {seconds * 1e3:8.1f} ms")
    print(f"  {'total':<20} {result.total_seconds * 1e3:8.1f} ms\n")

    # What the same batch costs on the paper's hardware, per the
    # calibrated model (see repro.analysis.perfmodel).
    breakdown = model_arraysort_breakdown(K40C, num_arrays, array_size)
    print("Modeled time on a Tesla K40c (the paper's device):")
    for phase, ms in breakdown.phases.items():
        print(f"  {phase:<20} {ms:8.1f} ms")
    print(f"  {'total':<20} {breakdown.total_ms:8.1f} ms")

    # Phase-2 artifacts are exposed for inspection.
    sizes = result.buckets.sizes
    print(f"\nBucket stats: {sizes.shape[1]} buckets/array, "
          f"mean size {sizes.mean():.1f}, max {sizes.max()}")


if __name__ == "__main__":
    main()
