#!/usr/bin/env python
"""Capacity planning: how many arrays fit on your GPU? (Table 1 scenario)

The paper's Table 1 answers "how many arrays of size n can each
technique sort before running out of device memory?".  This example
turns that into a planning tool:

1. prints the Table 1 reproduction (paper vs analytic vs measured),
2. answers an arbitrary planning query (device, n, technique),
3. shows what happens at the boundary: the exact allocation sequence
   succeeding at capacity and OOM-ing one step beyond.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.analysis.memory_model import (
    arraysort_bytes_per_array,
    capacity_analytic,
    measure_capacity,
    sta_bytes_per_array,
    table1_rows,
)
from repro.analysis.reporting import render_table
from repro.gpusim.device import DEVICE_CATALOG, K40C
from repro.gpusim.errors import DeviceOutOfMemoryError
from repro.gpusim.executor import GpuDevice


def print_table1() -> None:
    rows = table1_rows(measure=True)
    print(render_table(
        ["n", "paper GAS", "model GAS", "paper STA", "model STA", "advantage"],
        [[r.array_size, r.paper_arraysort, r.model_arraysort,
          r.paper_sta, r.model_sta, f"{r.model_advantage:.2f}x"]
         for r in rows],
        title="Table 1 reproduction — Tesla K40c, 11520 MB",
    ))
    print()


def plan(device_key: str, n: int) -> None:
    spec = DEVICE_CATALOG[device_key]
    gas_cap = capacity_analytic(n, arraysort_bytes_per_array(n), spec)
    sta_cap = capacity_analytic(n, sta_bytes_per_array(n), spec)
    print(f"Planning for {spec.name} "
          f"({spec.usable_global_mem_bytes / 1e9:.1f} GB usable), n={n}:")
    print(f"  GPU-ArraySort : up to {gas_cap:>12,} arrays "
          f"({gas_cap * n / 1e9:.2f} G elements)")
    print(f"  STA (tagged)  : up to {sta_cap:>12,} arrays "
          f"({sta_cap * n / 1e9:.2f} G elements)")
    print(f"  -> in-place advantage: {gas_cap / max(1, sta_cap):.2f}x\n")


def boundary_demo() -> None:
    """Watch the OOM boundary with a real (simulated) allocator."""
    n = 1000
    cap = measure_capacity("arraysort", n)
    print(f"Empirical K40c capacity for GPU-ArraySort at n={n}: {cap:,} arrays")

    from repro.analysis.memory_model import _alloc_arraysort
    from repro.core.config import DEFAULT_CONFIG

    device = GpuDevice(K40C)
    allocs = _alloc_arraysort(device, cap, n, DEFAULT_CONFIG)
    print(f"  allocating at capacity: OK "
          f"({device.memory.stats.allocated_bytes / 1e9:.2f} GB committed)")
    for a in allocs:
        device.memory.free(a)

    try:
        _alloc_arraysort(GpuDevice(K40C), cap + 10_000, n, DEFAULT_CONFIG)
    except DeviceOutOfMemoryError as exc:
        print(f"  +10k arrays: {exc}")


def main() -> None:
    print_table1()
    plan("k40c", 1000)
    plan("k40c", 4000)
    plan("c2050", 1000)  # the Fermi-generation card for contrast
    boundary_demo()


if __name__ == "__main__":
    main()
