#!/usr/bin/env python
"""Mass-spectrometry scenario: the paper's motivating workload.

Proteomics pipelines (MS-REDUCE and friends — the paper's Section 1)
need every spectrum's peaks sorted by intensity or by mass-to-charge
ratio before reduction/scoring.  This example:

1. generates a batch of synthetic tandem-MS spectra (fragment peaks +
   impurities + noise, in acquisition order — see
   ``repro.workloads.spectra`` for the recipe and the substitution note
   in DESIGN.md);
2. sorts all spectra by intensity with GPU-ArraySort and with the STA
   baseline, comparing wall time;
3. runs a tiny downstream "MS-REDUCE-like" step (keep the top-K most
   intense peaks per spectrum) that *requires* the sorted order.

Run:  python examples/mass_spec_sorting.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import GpuArraySort
from repro.baselines.sta import StaSorter
from repro.workloads import generate_spectra


def top_k_reduction(sorted_intensities: np.ndarray, k: int) -> np.ndarray:
    """Keep each spectrum's K most intense peaks (they sort to the tail).

    When only the reduction is needed (no fully sorted spectra), use
    ``repro.top_k`` instead — it reuses phases 1-2 and skips sorting the
    discarded buckets; demonstrated at the end of this example.
    """
    return sorted_intensities[:, -k:]


def main() -> None:
    num_spectra, peaks = 5_000, 2_000
    print(f"Generating {num_spectra} spectra x {peaks} peaks "
          "(fragment ladder + impurities + noise)...")
    spectra = generate_spectra(num_spectra, peaks, seed=2016)

    # -- sort by intensity: GPU-ArraySort vs the tagged approach ---------
    intensities = spectra.intensity
    t0 = time.perf_counter()
    gas_result = GpuArraySort().sort(intensities)
    gas_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    sta_result = StaSorter().sort(intensities)
    sta_seconds = time.perf_counter() - t0

    assert np.array_equal(gas_result.batch, sta_result.batch)
    print(f"\nSort {num_spectra} spectra by intensity:")
    print(f"  GPU-ArraySort : {gas_seconds * 1e3:8.1f} ms")
    print(f"  STA (tagged)  : {sta_seconds * 1e3:8.1f} ms "
          f"({sta_seconds / gas_seconds:.2f}x slower)")

    # -- sort by m/z too (the other order downstream tools want) ---------
    t0 = time.perf_counter()
    by_mz = GpuArraySort().sort(spectra.mz)
    print(f"\nSort by m/z    : {(time.perf_counter() - t0) * 1e3:8.1f} ms")
    assert np.all(np.diff(by_mz.batch, axis=1) >= 0)

    # -- a downstream step that needs sorted input ------------------------
    k = 200
    reduced = top_k_reduction(gas_result.batch, k)
    kept_fraction = reduced.sum() / gas_result.batch.sum()
    print(f"\nMS-REDUCE-like step: keep top {k} peaks per spectrum")
    print(f"  data volume   : {peaks} -> {k} peaks per spectrum "
          f"({k / peaks:.0%})")
    print(f"  signal kept   : {kept_fraction:.0%} of total ion intensity")

    # The top-K slice is only valid because rows are sorted; demonstrate
    # by checking against a per-row partial sort oracle.
    oracle = np.sort(intensities, axis=1)[:, -k:]
    assert np.array_equal(reduced, oracle)
    print("  verified against np.sort oracle")

    # When the pipeline only needs the reduction, skip the full sort:
    # repro.top_k reuses phases 1-2 and never sorts the discarded buckets.
    from repro import top_k

    t0 = time.perf_counter()
    direct = top_k(intensities, k)
    print(f"\nDirect top-{k} via bucket selection (no full sort): "
          f"{(time.perf_counter() - t0) * 1e3:.0f} ms")
    assert np.array_equal(direct, oracle)
    print("  identical peaks kept")


if __name__ == "__main__":
    main()
