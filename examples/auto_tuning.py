#!/usr/bin/env python
"""Auto-tuning: let the model pick the paper's constants for you.

The paper fixed bucket size 20 and 10 % sampling by manual experiments
on one GPU.  ``repro.core.tune_config`` redoes that search per (device,
array size, pilot data):

1. sweeps bucket sizes through the calibrated cost model (no sorting),
2. refines the sampling rate against a pilot batch's bucket balance,
3. hands back a ready SortConfig — compared here against the paper's
   defaults on several devices and distributions.

Run:  python examples/auto_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro.core import GpuArraySort, tune_config
from repro.gpusim.device import C2050, K40C, P100
from repro.workloads import clustered_arrays, uniform_arrays


def main() -> None:
    n = 1000
    print(f"Tuning for arrays of n = {n} elements\n")

    print(f"{'device':<14}{'best bucket':>12}{'modeled ms (N=100k)':>22}"
          f"{'paper default ms':>18}")
    for device in (K40C, C2050, P100):
        result = tune_config(n, device=device)
        paper_ms = next(
            ms for bucket, ms in result.candidates if bucket == 20
        ) if any(b == 20 for b, _ in result.candidates) else float("nan")
        print(f"{device.name:<14}{result.bucket_size:>12}"
              f"{result.modeled_ms:>22.0f}{paper_ms:>18.0f}")

    print("\nSampling-rate refinement against pilot data (K40c, bucket 20):")
    pilots = {
        "uniform (paper's data)": uniform_arrays(60, n, seed=1),
        "clustered": clustered_arrays(60, n, seed=1),
    }
    for name, pilot in pilots.items():
        result = tune_config(n, pilot=pilot, bucket_candidates=(20,))
        print(f"  {name:<24} -> sampling rate "
              f"{result.config.sampling_rate:.0%} "
              f"(paper used 10% on uniform data)")

    # Use the tuned config end to end.
    batch = uniform_arrays(5000, n, seed=7)
    tuned = tune_config(n, pilot=batch[:100], bucket_candidates=(20,)).config
    result = GpuArraySort(tuned, verify=True).sort(batch)
    assert np.all(np.diff(result.batch, axis=1) >= 0)
    print(f"\nSorted {batch.shape[0]} arrays with the tuned config "
          f"(bucket={tuned.bucket_size}, rate={tuned.sampling_rate:.0%}): "
          f"{result.total_seconds * 1e3:.0f} ms, verified.")


if __name__ == "__main__":
    main()
